"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment of DESIGN.md's
per-experiment index (E1-E10).  Every benchmark asserts the qualitative
outcome the paper predicts (who wins, which verdicts hold) in addition to
timing the operation, so running ``pytest benchmarks/ --benchmark-only``
doubles as a coarse end-to-end correctness check.

The session hook below persists one machine-readable ``BENCH_E*.json``
record per executed ``bench_e*`` module (see ``benchmarks/record.py``), so
pytest-benchmark runs feed the same perf-trajectory files the standalone
benchmark mains write.
"""

import re
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402


@pytest.fixture(scope="session")
def experiment_log():
    """A session-wide dictionary benches can use to accumulate report rows."""
    rows: dict[str, list[tuple]] = {}
    yield rows


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_E*.json`` per bench module that ran under pytest.

    With ``--benchmark-disable`` (the CI smoke configuration) no statistics
    exist, so the record documents which benchmarks ran; with timing
    enabled it carries the per-benchmark mean/rounds.
    """
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None or not benchmark_session.benchmarks:
        return
    by_experiment: dict[str, list] = {}
    for bench in benchmark_session.benchmarks:
        match = re.search(r"bench_(e\d+)", bench.fullname or "")
        if match is None:
            continue
        stats = getattr(bench, "stats", None)
        entry = {"name": bench.name, "rounds": getattr(stats, "rounds", None)}
        try:
            entry["mean_seconds"] = round(stats.mean, 6)
            entry["min_seconds"] = round(stats.min, 6)
        except Exception:  # pragma: no cover - timing disabled or no rounds
            pass
        by_experiment.setdefault(match.group(1), []).append(entry)
    for experiment, entries in by_experiment.items():
        write_record(
            experiment,
            {
                "source": "pytest-benchmark",
                "case_count": len(entries),
                "benchmarks": entries,
                "metrics": {},
                "thresholds": {},
            },
        )
