"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment of DESIGN.md's
per-experiment index (E1-E10).  Every benchmark asserts the qualitative
outcome the paper predicts (who wins, which verdicts hold) in addition to
timing the operation, so running ``pytest benchmarks/ --benchmark-only``
doubles as a coarse end-to-end correctness check.
"""

import pytest


@pytest.fixture(scope="session")
def experiment_log():
    """A session-wide dictionary benches can use to accumulate report rows."""
    rows: dict[str, list[tuple]] = {}
    yield rows
