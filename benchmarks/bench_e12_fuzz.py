"""E12 — fuzz-campaign throughput: oracle cost breakdown and worker scaling.

The differential-verification subsystem is only useful if a meaningful
campaign fits in a CI minute, so this experiment measures

* the per-combination cost of the oracle axes (strategy × Diophantine
  path) on the built-in corpus — showing where a campaign's budget goes
  (the bounded-guess enumeration dominates, which is why its candidate cap
  is part of :class:`~repro.verify.oracles.OracleConfig`);
* end-to-end campaign throughput (cases/second) inline vs. on a
  2-worker pool, including shrink-free failure handling.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_e12_fuzz.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402

from repro.verify.corpus import builtin_pairs
from repro.verify.oracles import OracleConfig, run_differential_oracle
from repro.verify.runner import CampaignConfig, run_campaign

#: Cases for the throughput sweep — small enough for a CI smoke run.
CAMPAIGN_CASES = 40


def bench_oracle_axis_breakdown() -> dict[str, float]:
    """Seconds per oracle run, per (strategy, path) axis, on the built-in corpus."""
    pairs = builtin_pairs()
    timings: dict[str, float] = {}
    for strategy in ("most-general", "all-probes", "bounded-guess"):
        paths = ("exact", "lp") if strategy != "bounded-guess" else ("exact",)
        for path in paths:
            config = OracleConfig(
                strategies=(strategy,),
                diophantine_paths=(path,),
                refuter_trials=0,
                refuter_max_multiplicity=0,
                check_set_semantics=False,
            )
            for containee, containing in pairs:  # warm plan caches
                run_differential_oracle(containee, containing, config)
            start = time.perf_counter()
            for containee, containing in pairs:
                report = run_differential_oracle(containee, containing, config)
                assert report.ok, report.describe()
            timings[f"{strategy}/{path}"] = (time.perf_counter() - start) / len(pairs)
    return timings


def bench_campaign_throughput() -> dict[int, float]:
    """Cases per second for inline and 2-worker campaigns over the same seed."""
    rates: dict[int, float] = {}
    for jobs in (1, 2):
        config = CampaignConfig(cases=CAMPAIGN_CASES, seed=0, jobs=jobs, chunk_size=10)
        start = time.perf_counter()
        report = run_campaign(config)
        elapsed = time.perf_counter() - start
        assert report.ok, report.describe()
        assert report.cases_run == CAMPAIGN_CASES
        rates[jobs] = report.cases_run / elapsed
    return rates


def main() -> None:
    print("E12 — fuzz-campaign throughput")
    print()
    print("oracle cost per pair, by axis (built-in corpus):")
    axis_timings = bench_oracle_axis_breakdown()
    for axis, seconds in sorted(axis_timings.items(), key=lambda kv: kv[1]):
        print(f"  {axis:<24} {seconds * 1000:8.2f} ms")
    print()
    print(f"campaign throughput ({CAMPAIGN_CASES} cases, full oracle axes):")
    rates = bench_campaign_throughput()
    for jobs, rate in rates.items():
        print(f"  jobs={jobs}: {rate:6.1f} cases/s")
    path = write_record(
        "e12",
        {
            "source": "bench_e12_fuzz",
            "case_count": CAMPAIGN_CASES,
            "axis_seconds_per_pair": {k: round(v, 6) for k, v in axis_timings.items()},
            "metrics": {
                f"cases_per_second_jobs{jobs}": round(rate, 2) for jobs, rate in rates.items()
            },
            "thresholds": {},
        },
    )
    print(f"json record written to {path}")


if __name__ == "__main__":
    main()
