"""E5 — Section 4 worked example: deciding the 3-MPI.

Reproduces every step of the Section 4 walk-through:

* the 3-MPI ``u1^7 + u1^5·u2^2 + u1^3·u3^4 < u1^2·u2·u3^3`` has no solution
  with a zero component or at the all-ones point (Proposition 4.1);
* its homogeneous linear system is feasible, e.g. at ``ε = (0, 2, 1)``;
* the decision procedure finds a verified Diophantine witness, and the
  paper's solutions (1,4,3) and (1,9,3) check out.

The timings compare the exact Fourier-Motzkin path against the scipy-LP
fast path on the same inequality.
"""

from __future__ import annotations

from repro.diophantine.inequalities import MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.diophantine.solver import decide_mpi, decide_mpi_via_lp
from repro.linalg.fourier_motzkin import solve_strict_system
from repro.linalg.lp_scipy import lp_feasibility


def section4_inequality() -> MonomialPolynomialInequality:
    polynomial = Polynomial.from_terms([(1, (7, 0, 0)), (1, (5, 2, 0)), (1, (3, 0, 4))])
    return MonomialPolynomialInequality(polynomial, Monomial(1, (2, 1, 3)))


def bench_e5_exact_decision(benchmark):
    inequality = section4_inequality()
    decision = benchmark(decide_mpi, inequality)
    assert decision.solvable
    assert inequality.is_solution(decision.witness)
    assert inequality.is_solution((1, 4, 3))
    assert inequality.is_solution((1, 9, 3))
    assert not inequality.is_solution((1, 1, 1))
    assert not inequality.is_solution((0, 4, 3))


def bench_e5_lp_decision(benchmark):
    inequality = section4_inequality()
    decision = benchmark(decide_mpi_via_lp, inequality)
    assert decision.solvable
    assert inequality.is_solution(decision.witness)


def bench_e5_linear_system_exact_feasibility(benchmark):
    system = section4_inequality().to_linear_system()
    result = benchmark(solve_strict_system, system, True)
    assert result.feasible
    assert system.is_solution((0, 2, 1))


def bench_e5_linear_system_lp_feasibility(benchmark):
    system = section4_inequality().to_linear_system()
    outcome = benchmark(lp_feasibility, system, True)
    assert outcome.feasible
