"""E7 — Theorems 5.2/5.3: scaling of the bag-containment decider.

Three sweeps, matching the complexity statement of the paper:

* containing-query size (number of containment mappings) via the star
  family — the dominant, potentially exponential factor;
* containee-query size via the chain family — the polynomial factor;
* most-general-probe-tuple path (Theorem 5.3) vs. the all-probe-tuple path
  (Corollary 3.1) on queries with constants, where the number of probe
  tuples grows quickly while the single-probe path stays flat.
"""

from __future__ import annotations

import pytest

from repro.core.decision import decide_via_all_probes, decide_via_most_general_probe
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable
from repro.workloads.structured import (
    amplified_query,
    chain_containment_pair,
    projection_free_chain,
    star_containment_pair,
)


@pytest.mark.parametrize("rays", [2, 3, 4])
def bench_e7_containing_query_size(benchmark, rays):
    """Mappings grow as rays^rays; the verdict stays positive throughout."""
    containee, containing = star_containment_pair(rays)
    result = benchmark(decide_via_most_general_probe, containee, containing)
    assert result.contained


@pytest.mark.parametrize("length", [2, 4, 8, 16])
def bench_e7_containee_query_size(benchmark, length):
    """Chain containees: the unknown count grows linearly, the decision stays cheap."""
    containee, containing = chain_containment_pair(length)
    result = benchmark(decide_via_most_general_probe, containee, containing)
    assert result.contained


@pytest.mark.parametrize("length", [2, 4, 8])
def bench_e7_negative_instances(benchmark, length):
    """Amplified containee vs. plain containing query: always refuted, with a certificate."""
    chain = projection_free_chain(length)
    amplified = amplified_query(chain, 2)
    result = benchmark(decide_via_most_general_probe, amplified, chain)
    assert not result.contained
    assert result.counterexample is not None


def _query_with_constants(constants: int) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """A self-containment pair whose probe-tuple count grows with the constants.

    Using the query against itself keeps the verdict trivially positive, so
    the two probe strategies do the same logical work and the measurement
    isolates the cost of enumerating and encoding every probe tuple.
    """
    x, y = Variable("x"), Variable("y")
    body: dict[Atom, int] = {Atom("R", (x, y)): 1}
    for index in range(constants):
        body[Atom("R", (x, Constant(f"c{index}")))] = 1
    containee = ConjunctiveQuery((x, y), body, name="q1")
    return containee, containee.with_name("q2")


@pytest.mark.parametrize("constants", [1, 2, 3])
def bench_e7_most_general_probe_path(benchmark, constants):
    containee, containing = _query_with_constants(constants)
    result = benchmark(decide_via_most_general_probe, containee, containing)
    assert result.contained


@pytest.mark.parametrize("constants", [1, 2, 3])
def bench_e7_all_probes_path(benchmark, constants):
    """(constants + 2)^2 probe tuples, one MPI each: the cost the single-probe
    characterisation of Theorem 5.3 avoids."""
    containee, containing = _query_with_constants(constants)
    result = benchmark(decide_via_all_probes, containee, containing)
    assert result.contained
    assert len(result.encodings) == (constants + 2) ** 2
