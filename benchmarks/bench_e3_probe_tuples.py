"""E3 — Section 3 probe-tuple example.

Reproduces the 16 probe tuples (10 up to canonical-constant renaming) of
``q(x1,x2) ← R(x1,x2), R(c1,x2), R(x1,c2)`` and measures how probe-tuple
enumeration blows up with the query's arity and constant count — the reason
Theorem 5.3's single most-general probe tuple matters in practice.
"""

from __future__ import annotations

import pytest

from repro.core.probe_tuples import most_general_probe_tuple, probe_tuples, reduced_probe_tuples
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable
from repro.workloads.paper_examples import section3_probe_example_query


def wide_query(arity: int, constants: int) -> ConjunctiveQuery:
    """A projection-free query with the given arity and number of constants."""
    variables = [Variable(f"x{i}") for i in range(arity)]
    body: dict[Atom, int] = {}
    for index, variable in enumerate(variables):
        body[Atom("R", (variable, variables[(index + 1) % arity]))] = 1
    for index in range(constants):
        body[Atom("R", (variables[0], Constant(f"c{index}")))] = 1
    return ConjunctiveQuery(tuple(variables), body, name="wide")


def bench_e3_paper_probe_tuples(benchmark):
    query = section3_probe_example_query()
    tuples = benchmark(probe_tuples, query)
    assert len(tuples) == 16


def bench_e3_paper_reduced_probe_tuples(benchmark):
    query = section3_probe_example_query()
    reduced = benchmark(reduced_probe_tuples, query)
    assert len(reduced) == 10


@pytest.mark.parametrize("arity", [2, 3, 4])
def bench_e3_enumeration_grows_with_arity(benchmark, arity):
    """|probe tuples| = (arity + #constants)^arity: exponential in the arity."""
    query = wide_query(arity, constants=2)
    tuples = benchmark(probe_tuples, query)
    assert len(tuples) == (arity + 2) ** arity


def bench_e3_most_general_probe_is_constant_time(benchmark):
    """The Theorem 5.3 path touches a single tuple regardless of the domain size."""
    query = wide_query(4, constants=3)
    probe = benchmark(most_general_probe_tuple, query)
    assert len(probe) == 4
