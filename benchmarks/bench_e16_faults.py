"""E16 — dormant fault hooks: the hardened runtime must cost nothing off.

The fault-injection plane (``repro.faults``) places named sites on the
engine hot path: ``tick_handle()`` at the start of every driver-loop
execution, the countdown tick every 64 rows, and the admission check in
``Session._execute``.  All of them compile down to ContextVar reads when
nothing is armed.  This bench pins that claim on the E11 hot-path
workloads (the E7 chain/star containment-mapping families on the interned
backend):

* **baseline** — the workload as production runs it: no plan armed, no
  deadline (the sites still execute; they are part of the code path);
* **armed elsewhere** — a plan is armed but none of its rules watch the
  executor sites (a chaos campaign's worker/persist rules): the hot-path
  hooks stay dormant and must still cost < 2%;
* **armed on executor sites** (context, ungated) — rules watch
  ``executor.start``/``executor.tick`` but are keyed to an index that
  never occurs: the driver loops now poll every 64 rows and scan the
  rule list.  That is the price of *actually injecting* engine faults,
  reported for visibility, not budgeted.

The headline assertion: armed-elsewhere adds **< 2%** wall clock over
baseline.  Timing is paired: each round measures the three conditions
back to back and records the *ratios*, and the median paired ratio over
N rounds is compared — absolute times drift by tens of percent on shared
hardware, adjacent-pair ratios do not.  The JSON
record (``BENCH_E16.json``) carries ``dormant_ratio`` =
baseline/armed-elsewhere (≥ 0.98 committed) as the gated metric; with
``$BENCH_SMOKE=1`` the strict inline assertion is deferred to
``report.py --check``'s tolerance gate, like the other smoke runs.

Run standalone (``PYTHONPATH=src python benchmarks/bench_e16_faults.py``)
or through pytest with the bench collection options.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402

from repro.core.probe_tuples import most_general_probe_tuple
from repro.engine import use_backend
from repro.evaluation.homomorphisms import containment_mappings_to_ground
from repro.faults import FaultPlan, FaultRule, use_faults
from repro.workloads.structured import chain_containment_pair, star_containment_pair

#: Maximum tolerated slowdown of the armed-never-firing run over baseline.
MAX_OVERHEAD = 0.02

#: The committed minimum of the gated ``dormant_ratio`` metric.
REQUIRED_RATIO = 1.0 - MAX_OVERHEAD

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

CHAIN_LENGTH = 8 if SMOKE else 16
STAR_RAYS = 3 if SMOKE else 4
ROUNDS = 9 if SMOKE else 25

#: A request key no workload ever binds: the rules below can never fire.
_NEVER = 1 << 30


def _armed_elsewhere_plan() -> FaultPlan:
    """A realistic chaos plan whose rules never touch the executor sites."""
    return FaultPlan(
        seed=0,
        rules=(
            FaultRule("parallel.request", "crash", keys=(_NEVER,)),
            FaultRule("persist.store", "busy", probability=0.1),
            FaultRule("persist.load", "error", probability=0.05),
            FaultRule("session.execute", "latency", keys=(_NEVER,), delay_ms=1.0),
        ),
    )


def _executor_armed_plan() -> FaultPlan:
    """Rules watching the executor sites, keyed so they can never fire."""
    return FaultPlan(
        seed=0,
        rules=(
            FaultRule("executor.start", "latency", keys=(_NEVER,), delay_ms=1.0),
            FaultRule("executor.tick", "latency", keys=(_NEVER,), delay_ms=1.0),
        ),
    )


def _mapping_workload(family: str) -> Callable[[], int]:
    # Inner repetitions lift each timed sample into the milliseconds —
    # a 2% budget is not measurable on a sub-100µs sample.
    if family == "chain":
        containee, containing = chain_containment_pair(CHAIN_LENGTH)
        reps = 100 if SMOKE else 400
    else:
        containee, containing = star_containment_pair(STAR_RAYS)
        reps = 10 if SMOKE else 20
    probe = most_general_probe_tuple(containee)
    grounded = containee.ground(probe)

    def run() -> int:
        total = 0
        for _ in range(reps):
            total += sum(
                1 for _ in containment_mappings_to_ground(containing, grounded, probe)
            )
        return total

    return run


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _paired_ratios(
    fn: Callable[[], int], dormant: FaultPlan, executor: FaultPlan
) -> tuple[float, float, float]:
    """(median baseline seconds, dormant ratio, executor ratio), paired.

    Each round times the three conditions back to back and records the
    armed/baseline ratios; slow drift moves all three together and cancels
    in the ratio, so the median over rounds isolates the hook cost.
    """
    plans = (None, dormant, executor)
    for plan in plans:  # warm the plan caches; steady state is under test
        with use_faults(plan):
            fn()
    baselines: list[float] = []
    ratios: tuple[list[float], list[float]] = ([], [])
    for _ in range(ROUNDS):
        samples = []
        for plan in plans:
            with use_faults(plan):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
        baselines.append(samples[0])
        ratios[0].append(samples[1] / samples[0])
        ratios[1].append(samples[2] / samples[0])
    return _median(baselines), _median(ratios[0]), _median(ratios[1])


def bench_e16_dormant_hooks() -> None:
    print(
        f"E16 — dormant fault hooks on the E11 hot path "
        f"(chain length {CHAIN_LENGTH}, star rays {STAR_RAYS}, "
        f"median of {ROUNDS} paired rounds)"
    )
    dormant = _armed_elsewhere_plan()
    executor = _executor_armed_plan()
    per_family = {}
    with use_backend("interned"):
        for family in ("chain", "star"):
            baseline, dormant_ratio, executor_ratio = _paired_ratios(
                _mapping_workload(family), dormant, executor
            )
            per_family[family] = (baseline, dormant_ratio, executor_ratio)
            print(
                f"{family:<6} baseline {baseline * 1000:.2f}ms, "
                f"armed-elsewhere {(dormant_ratio - 1.0) * 100:+.2f}%, "
                f"executor-armed {(executor_ratio - 1.0) * 100:+.2f}%"
            )

    # Aggregate: baseline-time-weighted mean of the per-family paired
    # ratios — "how much slower is the whole hot-path mix".
    weight = sum(b for b, _, _ in per_family.values())
    overhead = (
        sum(b * r for b, r, _ in per_family.values()) / weight - 1.0
    )
    executor_overhead = (
        sum(b * r for b, _, r in per_family.values()) / weight - 1.0
    )
    ratio = 1.0 / (1.0 + overhead)
    print(
        f"aggregate dormant overhead: {overhead * 100:+.2f}% "
        f"(ratio {ratio:.3f}); executor-armed context: "
        f"{executor_overhead * 100:+.2f}%"
    )

    json_path = write_record(
        "e16",
        {
            "source": "bench_e16_faults",
            "backend": "interned",
            "chain_length": CHAIN_LENGTH,
            "star_rays": STAR_RAYS,
            "rounds": ROUNDS,
            "per_family": {
                family: {
                    "baseline_seconds": round(b, 6),
                    "armed_elsewhere_ratio": round(r, 4),
                    "executor_armed_ratio": round(e, 4),
                }
                for family, (b, r, e) in per_family.items()
            },
            "executor_armed_overhead": round(executor_overhead, 4),
            "metrics": {"dormant_ratio": round(ratio, 4)},
            "thresholds": {"dormant_ratio": REQUIRED_RATIO},
        },
    )
    print(f"json record written to {json_path}")

    if not SMOKE:
        assert overhead < MAX_OVERHEAD, (
            f"dormant fault hooks cost {overhead * 100:.2f}% on the engine hot "
            f"path (budget {MAX_OVERHEAD * 100:.0f}%)"
        )


if __name__ == "__main__":
    bench_e16_dormant_hooks()
