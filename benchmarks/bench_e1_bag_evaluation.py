"""E1 — Section 2 worked example: bag-semantics evaluation.

Reproduces the answer bag ``{(c1,c2)^10, (c1,c5)^30}`` of the running query
on the running bag instance, and times bag evaluation on scaled-up versions
of the same instance (more constants, higher multiplicities) to show the
evaluation engine's cost profile.
"""

from __future__ import annotations

import pytest

from repro.evaluation.bag_evaluation import evaluate_bag
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant
from repro.workloads.paper_examples import (
    section2_bag,
    section2_expected_answers,
    section2_query,
)


def scaled_instance(copies: int, multiplicity: int) -> BagInstance:
    """`copies` disjoint copies of the Section 2 instance with scaled multiplicities."""
    counts = {}
    for copy in range(copies):
        c = {i: Constant(f"c{i}_{copy}") for i in range(1, 6)}
        counts[Atom("R", (c[1], c[2]))] = 2 * multiplicity
        counts[Atom("R", (c[1], c[3]))] = multiplicity
        counts[Atom("P", (c[2], c[4]))] = multiplicity
        counts[Atom("P", (c[5], c[4]))] = 3 * multiplicity
    return BagInstance(counts)


def bench_e1_paper_example(benchmark):
    """The exact worked example: multiplicities 10 and 30."""
    query, bag = section2_query(), section2_bag()
    answers = benchmark(evaluate_bag, query, bag)
    expected = section2_expected_answers()
    for answer, count in expected.items():
        assert answers[answer] == count
    assert len(answers) == len(expected)


@pytest.mark.parametrize("copies", [1, 2, 4, 8])
def bench_e1_scaling_with_database_size(benchmark, copies):
    """Evaluation time vs. number of disjoint copies of the instance."""
    query = section2_query()
    bag = scaled_instance(copies, multiplicity=1)
    answers = benchmark(evaluate_bag, query, bag)
    # The free variable x2 only occurs in the last atom, so answers combine
    # the R-side of one copy with the P-side of any copy: 2·copies² answers,
    # each pair carrying the paper's 10/30 multiplicities.
    assert len(answers) == 2 * copies**2
    assert answers.total() == 40 * copies**2


@pytest.mark.parametrize("multiplicity", [1, 10, 100])
def bench_e1_scaling_with_multiplicities(benchmark, multiplicity):
    """Evaluation time vs. fact multiplicities (values grow, structure fixed)."""
    query = section2_query()
    bag = scaled_instance(1, multiplicity)
    answers = benchmark(evaluate_bag, query, bag)
    # Answer multiplicities scale as multiplicity^degree (degree 6 here).
    assert answers.total() == 40 * multiplicity**6
