"""E9 — the exact decider vs. the brute-force baselines.

The natural pre-paper approach to refuting a bag containment is to search
for a counterexample bag directly.  This bench quantifies the comparison the
paper's contribution implies:

* on *negative* instances both the exact decider and the bounded refuter
  find a violation, but the refuter's cost grows with the multiplicity bound
  it must reach (and explodes with the number of atoms), while the decider's
  cost does not depend on the magnitude of the counterexample at all;
* on *positive* instances the refuter can only report "no counterexample up
  to the bound" — at full enumeration cost — whereas the decider terminates
  with a proof;
* the randomised refuter is cheap but misses violations that need specific
  multiplicity patterns.
"""

from __future__ import annotations

import pytest

from repro.baselines.refuters import bounded_bag_refuter, random_bag_refuter
from repro.core.decision import decide_via_most_general_probe
from repro.queries.parser import parse_cq
from repro.workloads.paper_examples import section2_q1, section2_q2


def needs_large_multiplicities(gap: int):
    """A pair whose smallest counterexample needs multiplicities around ``gap``.

    containee: q1(x) ← R^2(x,x), S^{gap}(x,x);  containing: q2(x) ← R(x,x), S^{gap+1}(x,x).
    On the canonical bag with R-multiplicity r and S-multiplicity s the
    containment breaks iff r²·s^gap > r·s^{gap+1}, i.e. r > s — but the
    polynomial encoding also requires beating the mapping through S, which
    pushes the smallest violation towards larger values as gap grows.
    """
    containee = parse_cq(f"q1(x) <- R^2(x, x), S^{gap}(x, x)")
    containing = parse_cq(f"q2(x) <- R(x, x), S^{gap + 1}(x, x)")
    return containee, containing


@pytest.mark.parametrize("method", ["exact", "bounded", "random"])
def bench_e9_negative_instance_paper_pair(benchmark, method):
    containee, containing = section2_q2(), section2_q1()
    if method == "exact":
        result = benchmark(decide_via_most_general_probe, containee, containing)
        assert not result.contained
    elif method == "bounded":
        outcome = benchmark(bounded_bag_refuter, containee, containing, 3)
        assert outcome.refuted
    else:
        outcome = benchmark(random_bag_refuter, containee, containing, 200, 6, 0)
        assert outcome.refuted


@pytest.mark.parametrize("method", ["exact", "bounded"])
def bench_e9_positive_instance_paper_pair(benchmark, method):
    containee, containing = section2_q1(), section2_q2()
    if method == "exact":
        result = benchmark(decide_via_most_general_probe, containee, containing)
        assert result.contained
    else:
        outcome = benchmark(bounded_bag_refuter, containee, containing, 4)
        # The refuter cannot certify containment: it only exhausts its budget.
        assert not outcome.refuted
        assert outcome.bags_checked == 4**2


@pytest.mark.parametrize("bound", [2, 4, 8])
def bench_e9_bounded_refuter_cost_grows_with_the_bound(benchmark, bound):
    containee, containing = section2_q1(), section2_q2()
    outcome = benchmark(bounded_bag_refuter, containee, containing, bound)
    assert not outcome.refuted
    assert outcome.bags_checked == bound**2


@pytest.mark.parametrize("gap", [1, 2, 3])
def bench_e9_exact_decider_is_insensitive_to_witness_magnitude(benchmark, gap):
    containee, containing = needs_large_multiplicities(gap)
    result = benchmark(decide_via_most_general_probe, containee, containing)
    assert not result.contained
    assert result.counterexample is not None


@pytest.mark.parametrize("gap", [1, 2, 3])
def bench_e9_bounded_refuter_needs_the_full_multiplicity_range(benchmark, gap):
    containee, containing = needs_large_multiplicities(gap)
    outcome = benchmark(bounded_bag_refuter, containee, containing, 4)
    # The violation requires r > s ≥ 1, which the small bound still finds,
    # but only after enumerating a quadratically growing set of bags.
    assert outcome.refuted
