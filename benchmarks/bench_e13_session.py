"""E13 — session amortisation: ``Session.batch()`` vs one-shot calls.

The session redesign claims that routing a request sweep through *one*
session amortises work across the whole stream, whereas the service-naive
pattern — a fresh session per request, as a stateless RPC handler would do —
recompiles and re-decides everything per call.  Two mechanisms stack:

* **plan reuse** (always on): repeated sources/targets hit the session
  cache's compiled match plans and shared target indexes;
* **decision memoisation** (``memoize=True``, the default): identical pure
  requests are answered from the cache's result layer without re-running
  the encode/solve pipeline at all — the cache-hot extreme every service
  sees under production traffic.

The headline assertion is that the memoised batch beats cold one-shot
sessions by ≥3× on a repeated-pair sweep (measured much higher); the
no-memo column isolates how much plan reuse alone buys when the Diophantine
solve dominates.

Run standalone (``PYTHONPATH=src python benchmarks/bench_e13_session.py``)
for the comparison table, or through pytest with the bench collection
options used by the other experiments.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402

from repro.session import ContainmentRequest, Session
from repro.workloads.structured import chain_containment_pair, star_containment_pair

#: Minimum memoised-batch-over-one-shot speedup on the repeated-pair sweep.
REQUIRED_REPEAT_SPEEDUP = 3.0


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall-clock over *repeats* runs (the usual noise-robust timer)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _one_shot(requests: Sequence[ContainmentRequest]) -> list[bool | None]:
    """The service-naive pattern: a fresh session (cold cache) per request."""
    return [Session().decide(request).verdict for request in requests]


def _batched(requests: Sequence[ContainmentRequest], memoize: bool) -> list[bool | None]:
    """One session, one stream: work amortises across the whole sweep."""
    session = Session(memoize=memoize)
    return [outcome.verdict for outcome in session.batch(requests)]


def repeated_pair_requests(copies: int) -> list[ContainmentRequest]:
    containee, containing = star_containment_pair(3)
    return [ContainmentRequest(containee, containing)] * copies


def probe_family_requests(lengths: Sequence[int]) -> list[ContainmentRequest]:
    requests = []
    for length in lengths:
        containee, containing = chain_containment_pair(length)
        requests.append(ContainmentRequest(containee, containing, strategy="all-probes"))
    return requests


def _ab(requests: Sequence[ContainmentRequest]) -> tuple[float, float, float]:
    expected = _one_shot(requests)
    assert _batched(requests, memoize=False) == expected  # same verdicts, always
    assert _batched(requests, memoize=True) == expected
    one_shot = _best_of(lambda: _one_shot(requests))
    plans_only = _best_of(lambda: _batched(requests, memoize=False))
    memoised = _best_of(lambda: _batched(requests, memoize=True))
    return one_shot, plans_only, memoised


def bench_e13_session_batch() -> None:
    print("E13 — Session.batch() amortisation vs repeated one-shot calls")
    print(f"{'workload':<30} {'one-shot':>10} {'no-memo':>10} {'memoised':>10} {'speedup':>8}")

    rows: list[tuple[str, float, float, float]] = []
    for copies in (16, 64):
        rows.append((f"repeated pair ×{copies}", *_ab(repeated_pair_requests(copies))))
    rows.append(("probe-family sweep ×24", *_ab(probe_family_requests([1, 2, 3] * 8))))

    for label, one_shot, plans_only, memoised in rows:
        speedup = one_shot / memoised if memoised > 0 else float("inf")
        print(
            f"{label:<30} {one_shot * 1000:>8.2f}ms {plans_only * 1000:>8.2f}ms "
            f"{memoised * 1000:>8.2f}ms {speedup:>7.1f}x"
        )

    _, one_shot, _, memoised = rows[1]
    speedup = one_shot / memoised if memoised > 0 else float("inf")
    assert speedup >= REQUIRED_REPEAT_SPEEDUP, (
        f"Session.batch() must amortise repeated decisions: expected ≥{REQUIRED_REPEAT_SPEEDUP}x "
        f"over cold one-shot sessions on the repeated-pair ×64 sweep, measured {speedup:.2f}x"
    )

    path = write_record(
        "e13",
        {
            "source": "bench_e13_session",
            "case_count": len(rows),
            "timings_seconds": {
                label: {
                    "one_shot": round(one, 6),
                    "no_memo": round(plans, 6),
                    "memoised": round(memo, 6),
                }
                for label, one, plans, memo in rows
            },
            "metrics": {"memoised_over_one_shot_x64": round(min(speedup, 10_000.0), 2)},
            "thresholds": {"memoised_over_one_shot_x64": REQUIRED_REPEAT_SPEEDUP},
        },
    )
    print(f"json record written to {path}")

    # The amortisation must be visible in the cache counters, not just time:
    # from the second request on, the repeated sweep answers from the memo.
    session = Session()
    outcomes = list(session.batch(repeated_pair_requests(16)))
    hits = sum(outcome.cache.get("results", (0, 0, 0))[0] for outcome in outcomes)
    print(f"result memo over the ×16 sweep: {hits} hits ({len(outcomes)} requests)")
    assert hits >= len(outcomes) - 1, "the batched sweep should be memo dominated"


if __name__ == "__main__":
    bench_e13_session_batch()
