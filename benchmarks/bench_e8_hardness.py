"""E8 — Theorem 5.4: the 3-colourability hardness family.

Runs the decider on the bag-containment instances produced by the
3-colourability reduction for classic graphs with known answers, and sweeps
random graphs of growing size.  The qualitative claims being regenerated:

* the decider's verdict always coincides with 3-colourability;
* positive instances (3-colourable graphs) are the cheap direction — they
  reduce to an unsolvable MPI whose linear system has a containment mapping
  witnessing every inequality;
* negative instances carry a verified counterexample bag.
"""

from __future__ import annotations

import pytest

from repro.core.decision import decide_via_most_general_probe
from repro.core.reductions import three_colorability_instance
from repro.workloads.graphs import (
    bipartite_graph,
    complete_graph,
    cycle_graph,
    is_three_colorable,
    random_graph,
    wheel_graph,
)

KNOWN_GRAPHS = {
    "K3": (complete_graph, (3,), True),
    "K4": (complete_graph, (4,), False),
    "C5": (cycle_graph, (5,), True),
    "C7": (cycle_graph, (7,), True),
    "K33": (bipartite_graph, (3, 3), True),
    "W5": (wheel_graph, (5,), False),
    "W6": (wheel_graph, (6,), True),
}


@pytest.mark.parametrize("graph_name", sorted(KNOWN_GRAPHS))
def bench_e8_known_graphs(benchmark, graph_name):
    factory, args, expected = KNOWN_GRAPHS[graph_name]
    edges = factory(*args)
    assert is_three_colorable(edges) == expected
    containee, containing = three_colorability_instance(edges)
    result = benchmark(decide_via_most_general_probe, containee, containing)
    assert result.contained == expected
    if not expected:
        assert result.counterexample is not None


@pytest.mark.parametrize("vertices", [4, 6, 8])
def bench_e8_random_graphs(benchmark, vertices):
    edges = random_graph(vertices, edge_probability=0.4, seed=vertices)
    expected = is_three_colorable(edges)
    containee, containing = three_colorability_instance(edges)
    result = benchmark(decide_via_most_general_probe, containee, containing)
    assert result.contained == expected
