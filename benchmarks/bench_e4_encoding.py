"""E4 — Definitions 3.2/3.3: building the monomial and polynomial encodings.

Reproduces the Section 3 example (``M = u1^2·u2·u3^3`` against
``P = u1^7 + u1^5·u2^2 + u1^3·u3^4`` at the most-general probe tuple) and
measures how the encoding cost grows with the number of containment mappings
— the quantity the paper identifies as the exponential factor in the naive
procedure.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import encode_most_general
from repro.workloads.paper_examples import section3_containee, section3_containing
from repro.workloads.structured import star_containment_pair


def bench_e4_paper_encoding(benchmark):
    containee, containing = section3_containee(), section3_containing()
    encoding = benchmark(encode_most_general, containee, containing)
    assert encoding.num_mappings == 3
    assert sorted(int(m.degree()) for m in encoding.polynomial) == [7, 7, 7]
    assert int(encoding.monomial.degree()) == 6
    # The paper's two Diophantine solutions solve the encoded inequality.
    by_atom = {str(atom): index for index, atom in enumerate(encoding.atoms)}
    point = [0, 0, 0]
    point[by_atom["R(^x1, ^x2)"]] = 1
    point[by_atom["R(c1, ^x2)"]] = 4
    point[by_atom["R(^x1, c2)"]] = 3
    assert encoding.inequality.is_solution(tuple(point))


@pytest.mark.parametrize("rays", [2, 3, 4])
def bench_e4_encoding_grows_with_containment_mappings(benchmark, rays):
    """The star family has rays^rays containment mappings: the polynomial of
    Definition 3.3 grows exponentially with the containing query's size."""
    containee, containing = star_containment_pair(rays)
    encoding = benchmark(encode_most_general, containee, containing)
    assert encoding.num_mappings == rays**rays
    assert encoding.dimension == rays
