"""E14 — parallel sharded batches: ``Session.batch(jobs=N)`` vs serial.

The parallel layer claims that a batch of **distinct** containment requests
— the regime where memoisation cannot collapse the work — fans out across
worker processes with (a) near-linear speedup on 4+ cores and (b) an
outcome stream *bit-identical* to the serial path: same verdicts, same
certificates, same captured errors, and identical merged cache statistics
(each worker ships back its cache delta; with component-distinct pairs and
certificate replay off there is no cacheable work between requests, so the
fleet's merged counters equal the single session's).

The workload is 1000 mixed pairs (random-acyclic DAG bodies at the 7×7
size, wide stars, long chains) built by
:func:`repro.workloads.scale.mixed_requests` with ``distinct=True``.  Both
sessions use eviction-free caches (evictions depend on interleaving, which
sharding changes by design) and ``capture_errors=True`` as a defensive
posture — since the exact solver learned to fall back to the LP path when
Fourier–Motzkin exceeds its row cap, every request in this workload
decides, and the bench asserts the serial stream is **error-free**.

The identity assertions always run.  The speedup assertion and the
``speedup_jobs4`` metric (``jobs=4 ≥ 2.5×`` serial) only exist on machines
with at least 4 CPUs — on fewer cores the workers time-slice one another
and the measurement is meaningless, so the record instead documents what
``parallel.resolve_jobs('auto')`` resolves to (the serial fallback on one
core) rather than committing a fake "regression".  The JSON record
(``BENCH_E14.json`` at the repo root, see ``benchmarks/record.py``) is
written either way and CI uploads it as an artifact.  ``$BENCH_E14_CASES``
shrinks the workload for smoke runs.

Run standalone (``PYTHONPATH=src python benchmarks/bench_e14_parallel.py``)
for the comparison table, or through pytest with the bench collection
options used by the other experiments.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402

from repro.engine.cache import EngineCache
from repro.parallel import merged_cache_stats, resolve_jobs
from repro.session import Session
from repro.workloads.scale import mixed_requests

#: Minimum jobs=4-over-serial speedup on the 1000-pair distinct workload.
REQUIRED_SPEEDUP = 2.5

#: The speedup assertion needs real parallel hardware.
REQUIRED_CORES = 4

#: The fixed workload: 1000 component-distinct mixed pairs by default;
#: ``$BENCH_E14_CASES`` shrinks it for CI smoke runs.
CASES = int(os.environ.get("BENCH_E14_CASES", "1000"))


def _workload():
    return mixed_requests(
        CASES,
        seed=0,
        distinct=True,
        verify_certificates=False,
        acyclic_atoms=7,
        acyclic_variables=7,
    )


def _session() -> Session:
    # Eviction-free caches: evictions depend on request interleaving, which
    # sharding changes by design; without them the cache-statistics streams
    # of the serial and parallel paths must match exactly.
    return Session(
        cache=EngineCache(max_plans=1_000_000, max_indexes=1_000_000, max_results=1_000_000)
    )


def _run(requests, jobs: int) -> tuple[float, list]:
    session = _session()
    started = time.perf_counter()
    outcomes = list(session.batch(requests, capture_errors=True, jobs=jobs))
    return time.perf_counter() - started, outcomes


def _fingerprint(outcomes) -> tuple:
    """Everything the determinism guarantee covers, in one comparable value."""
    return (
        [outcome.verdict for outcome in outcomes],
        [outcome.certificate for outcome in outcomes],
        [outcome.error for outcome in outcomes],
        merged_cache_stats(outcomes),
    )


def bench_e14_parallel_batch() -> None:
    cores = os.cpu_count() or 1
    print(f"E14 — parallel sharded Session.batch() on {CASES} distinct mixed pairs "
          f"({cores} CPUs)")

    requests = _workload()
    serial_elapsed, serial_outcomes = _run(requests, jobs=1)
    errors = sum(1 for outcome in serial_outcomes if outcome.error is not None)
    assert errors == 0, (
        f"{errors} requests errored; the row-cap LP fallback should leave "
        "this workload error-free: "
        + "; ".join(
            f"#{index}: {outcome.error!r}"
            for index, outcome in enumerate(serial_outcomes)
            if outcome.error is not None
        )
    )
    print(f"{'jobs':>6} {'seconds':>9} {'speedup':>8}")
    print(f"{1:>6} {serial_elapsed:>8.2f}s {'1.0x':>8}")

    # What a production caller asking for parallelism actually gets: on a
    # single-core box resolve_jobs('auto') falls back to the serial path.
    # Timings are only measured (and the speedup metric only recorded) for
    # job counts real hardware can run side by side — forcing jobs=4 onto
    # one core used to commit a meaningless 0.52x "regression" to the record.
    resolved_auto = resolve_jobs("auto")
    asserted = cores >= REQUIRED_CORES
    job_counts = (2, 4) if asserted else (2,)
    runs: dict[int, float] = {}
    for jobs in job_counts:
        elapsed, outcomes = _run(requests, jobs=jobs)
        assert _fingerprint(outcomes) == _fingerprint(serial_outcomes), (
            f"jobs={jobs} outcome stream diverged from the serial path"
        )
        # The full native result objects agree too, not just the essences.
        assert [o.value for o in outcomes] == [o.value for o in serial_outcomes], (
            f"jobs={jobs} result values diverged from the serial path"
        )
        if asserted:
            runs[jobs] = elapsed
            print(f"{jobs:>6} {elapsed:>8.2f}s {serial_elapsed / elapsed:>7.1f}x")
        else:
            print(f"{jobs:>6} {elapsed:>8.2f}s  (identity only — time-sliced on {cores} CPU)")

    speedup = serial_elapsed / runs[4] if runs.get(4) else 0.0
    json_path = write_record(
        "e14",
        {
            "source": "bench_e14_parallel",
            "cases": CASES,
            "cores": cores,
            "errors": errors,
            "serial_seconds": round(serial_elapsed, 3),
            "parallel_seconds": {str(jobs): round(elapsed, 3) for jobs, elapsed in runs.items()},
            "streams_identical": True,  # asserted above
            "speedup_asserted": asserted,
            # resolve_jobs('auto') on this box: 1 means the serial fallback —
            # the behaviour callers get, and what this record then documents.
            "resolved_jobs_auto": resolved_auto,
            "serial_fallback": resolved_auto == 1,
            # The speedup metric only means something on real parallel
            # hardware; on smaller runners the identity assertions are the
            # record's substance and both metric and threshold are omitted.
            "metrics": {"speedup_jobs4": round(speedup, 2)} if asserted else {},
            "thresholds": {"speedup_jobs4": REQUIRED_SPEEDUP} if asserted else {},
        },
    )
    print(f"json record written to {json_path}")

    if cores >= REQUIRED_CORES:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"parallel batches must scale: expected ≥{REQUIRED_SPEEDUP}x at jobs=4 "
            f"over serial on {cores} CPUs, measured {speedup:.2f}x"
        )
    else:
        print(
            f"note: {cores} CPU(s) < {REQUIRED_CORES} — identity verified, "
            f"speedup assertion skipped (needs real parallel hardware)"
        )


if __name__ == "__main__":
    bench_e14_parallel_batch()
