"""E6 — Theorem 4.2: polynomial-time MPI decision, scaling study.

The paper proves the Diophantine-solution problem for an n-MPI reduces to
rational feasibility of a homogeneous linear system, which is polynomial in
the number of unknowns, the number of monomials and the exponent values.
This bench sweeps all three dimensions on synthetic MPIs (both solvable and
unsolvable families) and compares the exact Fourier-Motzkin solver with the
scipy-LP fast path.
"""

from __future__ import annotations

import random

import pytest

from repro.diophantine.inequalities import MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.diophantine.solver import decide_mpi, decide_mpi_via_lp


def random_mpi(
    unknowns: int, monomials: int, max_exponent: int, seed: int
) -> MonomialPolynomialInequality:
    """A random MPI whose monomial mentions every unknown (the containment shape)."""
    rng = random.Random(seed)
    monomial = Monomial(1, tuple(rng.randint(1, max_exponent) for _ in range(unknowns)))
    terms = []
    for _ in range(monomials):
        exponents = tuple(rng.randint(0, max_exponent) for _ in range(unknowns))
        terms.append(Monomial(rng.randint(1, 3), exponents))
    return MonomialPolynomialInequality(Polynomial(terms, unknowns), monomial)


def unsolvable_mpi(unknowns: int) -> MonomialPolynomialInequality:
    """``u1·…·un  <  u1·…·un`` padded with a dominated extra monomial: never solvable."""
    ones = (1,) * unknowns
    polynomial = Polynomial([Monomial(1, ones), Monomial(1, (0,) * unknowns)], unknowns)
    return MonomialPolynomialInequality(polynomial, Monomial(1, ones))


@pytest.mark.parametrize("unknowns", [2, 4, 8, 16])
def bench_e6_exact_scaling_with_unknowns(benchmark, unknowns):
    inequality = random_mpi(unknowns, monomials=6, max_exponent=4, seed=unknowns)
    decision = benchmark(decide_mpi, inequality)
    # Whatever the verdict, a positive one must come with a verified witness.
    if decision.solvable:
        assert inequality.is_solution(decision.witness)


@pytest.mark.parametrize("monomials", [2, 8, 32, 128])
def bench_e6_exact_scaling_with_monomials(benchmark, monomials):
    inequality = random_mpi(4, monomials=monomials, max_exponent=4, seed=monomials)
    decision = benchmark(decide_mpi, inequality)
    if decision.solvable:
        assert inequality.is_solution(decision.witness)


@pytest.mark.parametrize("max_exponent", [2, 8, 32, 128])
def bench_e6_exact_scaling_with_exponent_values(benchmark, max_exponent):
    inequality = random_mpi(4, monomials=6, max_exponent=max_exponent, seed=max_exponent)
    decision = benchmark(decide_mpi, inequality)
    if decision.solvable:
        assert inequality.is_solution(decision.witness)


@pytest.mark.parametrize("unknowns", [2, 4, 8, 16])
def bench_e6_lp_scaling_with_unknowns(benchmark, unknowns):
    inequality = random_mpi(unknowns, monomials=6, max_exponent=4, seed=unknowns)
    decision = benchmark(decide_mpi_via_lp, inequality)
    if decision.solvable:
        assert inequality.is_solution(decision.witness)


@pytest.mark.parametrize("unknowns", [2, 6, 10])
def bench_e6_unsolvable_family(benchmark, unknowns):
    inequality = unsolvable_mpi(unknowns)
    decision = benchmark(decide_mpi, inequality)
    assert not decision.solvable
