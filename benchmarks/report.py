"""Regenerate the experiment tables of EXPERIMENTS.md, aggregate perf records.

Run with::

    python benchmarks/report.py             # run E1-E10, print the tables
    python benchmarks/report.py --records   # aggregate BENCH_E*.json records
    python benchmarks/report.py --check     # fail on >25% metric regression

The default mode executes each experiment (E1-E10) once, prints the same
rows the corresponding ``bench_e*.py`` module asserts, and reports
wall-clock timings for the scaling sweeps.  It is intentionally independent
of pytest-benchmark so the tables can be regenerated quickly; the bench
modules remain the statistically careful timing source.

``--records`` aggregates every ``BENCH_E*.json`` at the repo root (written
by the benchmark mains and the pytest-benchmark session hook, see
``benchmarks/record.py``) into one summary table.  ``--check`` compares
each record's measured metrics against the thresholds committed inside it
and exits non-zero when any metric regressed more than the documented
tolerance — the CI ``bench-smoke`` job's gate.  Passing paths after
``--check`` restricts the gate to those record files.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import REGRESSION_TOLERANCE, check_record, load_records  # noqa: E402

from repro.baselines.refuters import bounded_bag_refuter, random_bag_refuter
from repro.containment.bag_set_containment import decide_bag_set_containment
from repro.containment.set_containment import is_set_contained
from repro.core.decision import decide_via_all_probes, decide_via_most_general_probe
from repro.core.encoding import encode_most_general
from repro.core.probe_tuples import probe_tuples, reduced_probe_tuples
from repro.core.reductions import three_colorability_instance
from repro.diophantine.solver import decide_mpi, decide_mpi_via_lp
from repro.evaluation.bag_evaluation import evaluate_bag
from repro.workloads.graphs import (
    bipartite_graph,
    complete_graph,
    cycle_graph,
    is_three_colorable,
    random_graph,
    wheel_graph,
)
from repro.workloads.paper_examples import (
    section2_bag,
    section2_q1,
    section2_q2,
    section2_q3,
    section2_query,
    section3_containee,
    section3_containing,
    section3_probe_example_query,
)
from repro.workloads.random_queries import random_containment_pair
from repro.workloads.structured import (
    amplified_query,
    chain_containment_pair,
    projection_free_chain,
    star_containment_pair,
)


def timed(function: Callable, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def header(title: str) -> None:
    print()
    print(f"## {title}")
    print()


def e1() -> None:
    header("E1 — bag evaluation of the Section 2 example")
    answers, elapsed = timed(evaluate_bag, section2_query(), section2_bag())
    for answer, count in answers.items():
        rendered = ", ".join(str(term) for term in answer)
        print(f"    q^mu({rendered}) = {count}")
    print(f"    paper: 10 and 30;  wall-clock {elapsed * 1e3:.2f} ms")


def e2() -> None:
    header("E2 — Section 2 containment statements")
    pairs = [
        ("q1 in q2", section2_q1(), section2_q2()),
        ("q2 in q1", section2_q2(), section2_q1()),
        ("q1 in q3", section2_q1(), section2_q3()),
        ("q2 in q3", section2_q2(), section2_q3()),
        ("q3 in q1", section2_q3(), section2_q1()),
    ]
    print(f"    {'pair':<10} {'set':<6} {'bag':<6}")
    for label, containee, containing in pairs:
        set_verdict = is_set_contained(containee, containing)
        if containee.is_projection_free():
            bag_verdict = str(decide_via_most_general_probe(containee, containing).contained)
        else:
            bag_verdict = "n/a"
        print(f"    {label:<10} {str(set_verdict):<6} {bag_verdict:<6}")


def e3() -> None:
    header("E3 — probe tuples of the Section 3 example")
    query = section3_probe_example_query()
    all_tuples, elapsed = timed(probe_tuples, query)
    reduced = reduced_probe_tuples(query)
    print(f"    probe tuples: {len(all_tuples)} (paper: 16)")
    print(f"    reduced modulo canonical renaming: {len(reduced)} (paper: 10)")
    print(f"    enumeration wall-clock {elapsed * 1e3:.2f} ms")


def e4() -> None:
    header("E4 — monomial / polynomial encoding of the Section 3 pair")
    encoding, elapsed = timed(encode_most_general, section3_containee(), section3_containing())
    print(f"    M = {encoding.monomial.render(encoding.unknown_names)}")
    print(f"    P = {encoding.polynomial.render(encoding.unknown_names)}")
    print(f"    containment mappings: {encoding.num_mappings} (paper: 3)")
    print(f"    encoding wall-clock {elapsed * 1e3:.2f} ms")


def e5() -> None:
    header("E5 — deciding the Section 4 MPI")
    encoding = encode_most_general(section3_containee(), section3_containing())
    decision, exact_time = timed(decide_mpi, encoding.inequality)
    _, lp_time = timed(decide_mpi_via_lp, encoding.inequality)
    print(f"    solvable: {decision.solvable} (paper: solvable, so containment fails)")
    print(f"    linear solution d: {decision.linear_solution}")
    print(f"    Diophantine witness xi: {decision.witness}")
    # Map the paper's (u1, u2, u3) = (R(x̂1,x̂2), R(c1,x̂2), R(x̂1,c2)) values
    # onto the library's atom order before checking them.
    index_of = {str(atom): position for position, atom in enumerate(encoding.atoms)}
    for paper_solution in ((1, 4, 3), (1, 9, 3)):
        point = [0, 0, 0]
        point[index_of["R(^x1, ^x2)"]] = paper_solution[0]
        point[index_of["R(c1, ^x2)"]] = paper_solution[1]
        point[index_of["R(^x1, c2)"]] = paper_solution[2]
        print(f"    paper solution {paper_solution} verifies: "
              f"{encoding.inequality.is_solution(tuple(point))}")
    print(f"    exact decision {exact_time * 1e3:.2f} ms, LP fast path {lp_time * 1e3:.2f} ms")


def e6() -> None:
    header("E6 — MPI decision scaling (PTime, Theorem 4.2)")
    try:  # imported lazily so the script also works when run from the repo root
        from benchmarks.bench_e6_mpi_scaling import random_mpi  # noqa: PLC0415
    except ModuleNotFoundError:
        from bench_e6_mpi_scaling import random_mpi  # noqa: PLC0415

    print(f"    {'unknowns':>8} {'monomials':>10} {'exact (ms)':>12} {'lp (ms)':>10}")
    for unknowns in (2, 4, 8, 16):
        inequality = random_mpi(unknowns, 6, 4, unknowns)
        _, exact_time = timed(decide_mpi, inequality)
        _, lp_time = timed(decide_mpi_via_lp, inequality)
        print(f"    {unknowns:>8} {6:>10} {exact_time * 1e3:>12.2f} {lp_time * 1e3:>10.2f}")
    for monomials in (8, 32, 128):
        inequality = random_mpi(4, monomials, 4, monomials)
        _, exact_time = timed(decide_mpi, inequality)
        _, lp_time = timed(decide_mpi_via_lp, inequality)
        print(f"    {4:>8} {monomials:>10} {exact_time * 1e3:>12.2f} {lp_time * 1e3:>10.2f}")


def e7() -> None:
    header("E7 — decider scaling (Theorems 5.2/5.3)")
    print("    containing-query size (star family, rays^rays mappings):")
    print(f"    {'rays':>6} {'mappings':>10} {'decide (ms)':>12}")
    for rays in (2, 3, 4):
        containee, containing = star_containment_pair(rays)
        result, elapsed = timed(decide_via_most_general_probe, containee, containing)
        assert result.contained
        print(f"    {rays:>6} {rays**rays:>10} {elapsed * 1e3:>12.2f}")
    print("    containee-query size (chain family):")
    print(f"    {'length':>8} {'decide (ms)':>12}")
    for length in (2, 4, 8, 16):
        containee, containing = chain_containment_pair(length)
        result, elapsed = timed(decide_via_most_general_probe, containee, containing)
        assert result.contained
        print(f"    {length:>8} {elapsed * 1e3:>12.2f}")
    print("    most-general probe vs. all probe tuples (self containment, k constants):")
    print(f"    {'constants':>10} {'probes':>8} {'t* (ms)':>10} {'all (ms)':>10}")
    try:
        from benchmarks.bench_e7_decider_scaling import _query_with_constants  # noqa: PLC0415
    except ModuleNotFoundError:
        from bench_e7_decider_scaling import _query_with_constants  # noqa: PLC0415

    for constants in (1, 2, 3):
        containee, containing = _query_with_constants(constants)
        _, single = timed(decide_via_most_general_probe, containee, containing)
        all_result, full = timed(decide_via_all_probes, containee, containing)
        print(
            f"    {constants:>10} {len(all_result.encodings):>8} "
            f"{single * 1e3:>10.2f} {full * 1e3:>10.2f}"
        )


def e8() -> None:
    header("E8 — 3-colourability hardness family (Theorem 5.4)")
    graphs = {
        "K3": complete_graph(3),
        "K4": complete_graph(4),
        "C5": cycle_graph(5),
        "K3,3": bipartite_graph(3, 3),
        "W5": wheel_graph(5),
        "W6": wheel_graph(6),
        "G(8, .4)": random_graph(8, 0.4, seed=8),
    }
    print(f"    {'graph':<10} {'3-colourable':>13} {'containment':>12} {'decide (ms)':>12}")
    for name, edges in graphs.items():
        expected = is_three_colorable(edges)
        containee, containing = three_colorability_instance(edges)
        result, elapsed = timed(decide_via_most_general_probe, containee, containing)
        print(f"    {name:<10} {str(expected):>13} {str(result.contained):>12} {elapsed * 1e3:>12.2f}")
        assert result.contained == expected


def e9() -> None:
    header("E9 — exact decider vs. brute-force baselines")
    containee, containing = section2_q2(), section2_q1()
    _, exact_time = timed(decide_via_most_general_probe, containee, containing)
    bounded, bounded_time = timed(bounded_bag_refuter, containee, containing, 3)
    randomized, random_time = timed(random_bag_refuter, containee, containing, 200, 6, 0)
    print("    negative instance (q2 vs q1):")
    print(f"      exact decider     : refuted,    {exact_time * 1e3:>8.2f} ms")
    print(f"      bounded refuter   : refuted={bounded.refuted}, {bounded_time * 1e3:>8.2f} ms, "
          f"{bounded.bags_checked} bags")
    print(f"      random refuter    : refuted={randomized.refuted}, {random_time * 1e3:>8.2f} ms, "
          f"{randomized.bags_checked} bags")
    containee, containing = section2_q1(), section2_q2()
    _, exact_time = timed(decide_via_most_general_probe, containee, containing)
    print("    positive instance (q1 vs q2):")
    print(f"      exact decider     : proven,     {exact_time * 1e3:>8.2f} ms")
    for bound in (2, 4, 8):
        outcome, elapsed = timed(bounded_bag_refuter, containee, containing, bound)
        print(f"      bounded refuter B={bound}: inconclusive after {outcome.bags_checked:>3} bags, "
              f"{elapsed * 1e3:>8.2f} ms")


def e10() -> None:
    header("E10 — semantics relationships on random workloads")
    agree = 0
    bag_implies_set_violations = 0
    strict_separations = 0
    pairs = [random_containment_pair(seed, num_atoms=3, head_size=2) for seed in range(20)]
    pairs += [(section2_q1(), section2_q2()), (section2_q2(), section2_q1())]
    for containee, containing in pairs:
        set_verdict = is_set_contained(containee, containing)
        bag_set_verdict = decide_bag_set_containment(containee, containing)
        bag_verdict = decide_via_most_general_probe(containee, containing).contained
        if bag_set_verdict == set_verdict:
            agree += 1
        if bag_verdict and not set_verdict:
            bag_implies_set_violations += 1
        if set_verdict and not bag_verdict:
            strict_separations += 1
    print(f"    pairs examined                       : {len(pairs)}")
    print(f"    bag-set verdict == set verdict       : {agree}/{len(pairs)}")
    print(f"    violations of 'bag implies set'      : {bag_implies_set_violations} (must be 0)")
    print(f"    set holds but bag fails (strictness) : {strict_separations} (>= 1 expected)")


def summarize_records() -> int:
    """Aggregate every ``BENCH_E*.json`` record into one table."""
    records = load_records()
    if not records:
        print("no BENCH_E*.json records found (run the benchmark mains or pytest benchmarks/)")
        return 1
    print("# Benchmark records")
    for experiment, record in sorted(records.items()):
        source = record.get("source", "?")
        cases = record.get("case_count", record.get("cases", "?"))
        print(f"\n## {experiment.upper()}  [{source}, cases={cases}]")
        metrics = record.get("metrics", {})
        thresholds = record.get("thresholds", {})
        if not metrics:
            entries = record.get("benchmarks", [])
            for entry in entries:
                mean = entry.get("mean_seconds")
                timing = f"{mean * 1e3:9.2f} ms" if mean is not None else "   (timing disabled)"
                print(f"    {entry['name']:<48} {timing}")
            continue
        for name, value in metrics.items():
            minimum = thresholds.get(name)
            bar = f"  (threshold ≥ {minimum})" if minimum is not None else ""
            print(f"    {name:<36} {value:>10}{bar}")
    return 0


def check_records(paths: list[str]) -> int:
    """Fail when any record's metric regressed beyond the tolerance."""
    if paths:
        records = {}
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
            records[record.get("experiment", path)] = record
    else:
        records = load_records()
    if not records:
        print("no records to check")
        return 1
    findings: list[str] = []
    checked = 0
    for record in records.values():
        findings.extend(check_record(record))
        checked += len(record.get("thresholds", {}))
    if findings:
        print(f"REGRESSIONS ({len(findings)}):")
        for finding in findings:
            print(f"  {finding}")
        return 1
    print(
        f"{len(records)} records, {checked} thresholds checked: no metric more than "
        f"{REGRESSION_TOLERANCE:.0%} below its committed threshold"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--records":
        return summarize_records()
    if argv and argv[0] == "--check":
        return check_records(argv[1:])
    print("# Experiment report — bag containment reproduction")
    for experiment in (e1, e2, e3, e4, e5, e6, e7, e8, e9, e10):
        experiment()
    return 0


if __name__ == "__main__":
    sys.exit(main())
