"""E10 — relationships between the three semantics.

Regenerates, on random and structured workloads, the semantic relationships
the paper states or relies on:

* bag containment implies set containment (never the other way around in
  general — the paper's q1/q2 pair is the counterexample);
* bag-set containment of a projection-free containee coincides with set
  containment;
* both implications are measured: the bag decider is the most expensive of
  the three, the set decider the cheapest.
"""

from __future__ import annotations

import pytest

from repro.containment.bag_set_containment import decide_bag_set_containment
from repro.containment.set_containment import is_set_contained
from repro.core.decision import decide_via_most_general_probe
from repro.workloads.paper_examples import section2_q1, section2_q2
from repro.workloads.random_queries import random_containment_pair

SEEDS = list(range(8))


def pairs():
    generated = [random_containment_pair(seed, num_atoms=3, head_size=2) for seed in SEEDS]
    generated.append((section2_q1(), section2_q2()))
    generated.append((section2_q2(), section2_q1()))
    return generated


def bench_e10_set_containment_sweep(benchmark):
    workload = pairs()

    def run():
        return [is_set_contained(containee, containing) for containee, containing in workload]

    verdicts = benchmark(run)
    assert len(verdicts) == len(workload)


def bench_e10_bag_set_containment_sweep(benchmark):
    workload = pairs()

    def run():
        return [
            decide_bag_set_containment(containee, containing)
            for containee, containing in workload
        ]

    verdicts = benchmark(run)
    set_verdicts = [is_set_contained(containee, containing) for containee, containing in workload]
    # For projection-free containees bag-set containment IS set containment.
    assert verdicts == set_verdicts


def bench_e10_bag_containment_sweep(benchmark):
    workload = pairs()

    def run():
        return [
            decide_via_most_general_probe(containee, containing).contained
            for containee, containing in workload
        ]

    bag_verdicts = benchmark(run)
    set_verdicts = [is_set_contained(containee, containing) for containee, containing in workload]
    # Bag containment implies set containment on every pair.
    for bag_verdict, set_verdict in zip(bag_verdicts, set_verdicts):
        if bag_verdict:
            assert set_verdict
    # And the implication is strict: the paper's (q2, q1) pair separates them.
    assert True in set_verdicts
    assert any(s and not b for b, s in zip(bag_verdicts, set_verdicts))
