"""E15 — persistent warm starts: the same corpus, cold vs warm.

The persistent tier claims that a restarted process replaying the same
workload against the same store answers from disk: decision verdicts come
back from the session-memo rows, compiled plans from the plan rows, and
the whole second run is bounded by SQLite lookups plus unpickling instead
of plan compilation and Diophantine solving.  This bench pins the claim:

* a **cold** session (fresh store) decides a 300+ case mixed workload and
  fills the store;
* a **warm** session (new :class:`~repro.session.Session`, same store —
  the in-process stand-in for a process restart, which the kill/restart
  tests cover with real subprocesses) replays the identical workload;
* the warm run must be ≥2x faster, its persistent hit rate must exceed
  0.9, and the two outcome streams must agree **byte for byte** —
  verdicts, certificates and rendered explanations are compared on their
  serialized forms, not just by equality.

The JSON record (``BENCH_E15.json`` at the repo root, see
``benchmarks/record.py``) carries ``warm_speedup`` and
``persist_hit_rate`` as gated metrics.  ``$BENCH_E15_CASES`` (≥ 1)
shrinks the workload for smoke runs — the committed record uses the
default 400.

Run standalone (``PYTHONPATH=src python benchmarks/bench_e15_persist.py``)
or through pytest with the bench collection options.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402

from repro.session import Session
from repro.workloads.scale import mixed_requests

#: Minimum warm-over-cold speedup on the replayed workload.
REQUIRED_SPEEDUP = 2.0

#: Minimum persistent hit rate of the warm run.
REQUIRED_HIT_RATE = 0.9

#: The fixed workload: 400 component-distinct mixed pairs by default
#: (the acceptance bar asks for ≥300); ``$BENCH_E15_CASES`` shrinks it.
CASES = int(os.environ.get("BENCH_E15_CASES", "400"))


def _workload():
    return mixed_requests(
        CASES,
        seed=7,
        distinct=True,
        verify_certificates=False,
        acyclic_atoms=6,
        acyclic_variables=6,
    )


def _run(store: Path, requests) -> tuple[float, list, Session]:
    session = Session(persist_path=store, name="e15")
    started = time.perf_counter()
    outcomes = list(session.batch(requests, capture_errors=True))
    elapsed = time.perf_counter() - started
    return elapsed, outcomes, session


def _serialized(outcomes) -> bytes:
    """The outcome stream's replay-visible face, as comparable bytes.

    Verdicts, certificates and the human-rendered explanations — pickled in
    stream order, so "byte-identical" means exactly that.
    """
    face = []
    for outcome in outcomes:
        explained = None
        if outcome.value is not None and hasattr(outcome.value, "explain"):
            explained = outcome.value.explain()
        face.append((outcome.verdict, repr(outcome.certificate), explained, outcome.error))
    return pickle.dumps(face, protocol=pickle.HIGHEST_PROTOCOL)


def bench_e15_persist_warm_start() -> None:
    print(f"E15 — persistent warm starts on {CASES} distinct mixed pairs")
    requests = _workload()

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "e15-store.db"

        cold_elapsed, cold_outcomes, cold_session = _run(store, requests)
        cold_stats = cold_session.persistent.stats
        print(f"cold: {cold_elapsed:.2f}s  (persist: {cold_stats.describe()})")
        assert cold_stats.errors == 0, f"cold run hit store errors: {cold_stats.describe()}"
        cold_session.close()

        warm_elapsed, warm_outcomes, warm_session = _run(store, requests)
        warm_stats = warm_session.persistent.stats
        print(f"warm: {warm_elapsed:.2f}s  (persist: {warm_stats.describe()})")
        warm_session.close()

        assert _serialized(warm_outcomes) == _serialized(cold_outcomes), (
            "warm replay diverged from the cold run"
        )
        errors = sum(1 for outcome in cold_outcomes if outcome.error is not None)
        speedup = cold_elapsed / warm_elapsed if warm_elapsed > 0 else float("inf")
        hit_rate = warm_stats.hit_rate
        print(f"speedup: {speedup:.1f}x, warm persistent hit rate: {hit_rate:.0%}")

        json_path = write_record(
            "e15",
            {
                "source": "bench_e15_persist",
                "cases": CASES,
                "errors": errors,
                "cold_seconds": round(cold_elapsed, 3),
                "warm_seconds": round(warm_elapsed, 3),
                "byte_identical": True,  # asserted above
                "cold_persist": cold_stats.describe(),
                "warm_persist": warm_stats.describe(),
                "store_bytes": store.stat().st_size,
                "metrics": {
                    "warm_speedup": round(speedup, 2),
                    "persist_hit_rate": round(hit_rate, 3),
                },
                "thresholds": {
                    "warm_speedup": REQUIRED_SPEEDUP,
                    "persist_hit_rate": REQUIRED_HIT_RATE,
                },
            },
        )
        print(f"json record written to {json_path}")

        assert speedup >= REQUIRED_SPEEDUP, (
            f"warm replay must be ≥{REQUIRED_SPEEDUP}x faster than cold, "
            f"measured {speedup:.2f}x"
        )
        assert hit_rate > REQUIRED_HIT_RATE, (
            f"warm persistent hit rate must exceed {REQUIRED_HIT_RATE:.0%}, "
            f"measured {hit_rate:.0%}"
        )
        assert warm_stats.errors == 0, f"warm run hit store errors: {warm_stats.describe()}"


if __name__ == "__main__":
    bench_e15_persist_warm_start()
