"""E11 — engine A/B: the compiled indexed backend vs the naive reference shim.

The engine refactor claims that compiling a ``(source, target, fixed)``
triple once — static fail-first join order, signature-keyed candidate
indexes, iterative trail-based execution — beats the naive recursive
backtracker, which re-indexes the target and re-counts candidates for every
remaining atom at every search node.  This experiment A/Bs the two backends
on the workloads the decision procedures actually run:

* the E7 *containee-scaling* family (chain containment mappings): the
  hom-search cost grows with the containee length, and the indexed backend
  must be **at least 3× faster** — this is the headline acceptance
  assertion, with an order of magnitude of margin in practice;
* the E7 *containing-scaling* family (star queries, ``rays^rays``
  containment mappings): enumeration-bound, so the win is a constant
  factor — asserted modest;
* the E1 bag-evaluation scaling workload (Section 2 instance, scaled).

Run standalone (``PYTHONPATH=src python benchmarks/bench_e11_engine.py``)
for the comparison table, or through pytest with the bench collection
options used by the other experiments.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.probe_tuples import most_general_probe_tuple
from repro.engine import use_backend
from repro.evaluation.bag_evaluation import evaluate_bag
from repro.evaluation.homomorphisms import containment_mappings_to_ground
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant
from repro.workloads.paper_examples import section2_query
from repro.workloads.structured import chain_containment_pair, star_containment_pair

#: Minimum indexed-over-naive speedup on the E7 chain (decider-scaling) workload.
REQUIRED_E7_SPEEDUP = 3.0


def _best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Minimum wall-clock over *repeats* runs (the usual noise-robust timer)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ab(fn: Callable[[], object], repeats: int = 5) -> tuple[float, float]:
    """(naive seconds, indexed seconds) for one workload closure."""
    with use_backend("naive"):
        naive = _best_of(fn, repeats)
    with use_backend("indexed"):
        fn()  # warm the plan cache once; steady-state is what the engine sells
        indexed = _best_of(fn, repeats)
    return naive, indexed


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #
def chain_mapping_workload(length: int) -> Callable[[], int]:
    """E7 containee scaling: containment mappings into a grounded chain."""
    containee, containing = chain_containment_pair(length)
    probe = most_general_probe_tuple(containee)
    grounded = containee.ground(probe)

    def run() -> int:
        return sum(1 for _ in containment_mappings_to_ground(containing, grounded, probe))

    return run


def star_mapping_workload(rays: int) -> Callable[[], int]:
    """E7 containing scaling: ``rays^rays`` containment mappings into a star."""
    containee, containing = star_containment_pair(rays)
    probe = most_general_probe_tuple(containee)
    grounded = containee.ground(probe)

    def run() -> int:
        return sum(1 for _ in containment_mappings_to_ground(containing, grounded, probe))

    return run


def scaled_section2_bag(copies: int, multiplicity: int = 1) -> BagInstance:
    """Disjoint copies of the Section 2 running instance (as in bench E1)."""
    counts: dict[Atom, int] = {}
    for copy in range(copies):
        c = {i: Constant(f"c{i}_{copy}") for i in range(1, 6)}
        counts[Atom("R", (c[1], c[2]))] = 2 * multiplicity
        counts[Atom("R", (c[1], c[3]))] = multiplicity
        counts[Atom("P", (c[2], c[4]))] = multiplicity
        counts[Atom("P", (c[5], c[4]))] = 3 * multiplicity
    return BagInstance(counts)


def evaluation_workload(copies: int) -> Callable[[], object]:
    """E1 scaling: bag evaluation of the running query on a scaled instance."""
    query: ConjunctiveQuery = section2_query()
    bag = scaled_section2_bag(copies)
    return lambda: evaluate_bag(query, bag)


# --------------------------------------------------------------------- #
# Benchmarks (collected with the bench_* options, also runnable directly)
# --------------------------------------------------------------------- #
def bench_e11_e7_chain_speedup():
    """Headline assertion: ≥ 3× on the E7 decider-scaling chain family."""
    speedups = []
    for length in (8, 16, 24):
        workload = chain_mapping_workload(length)
        naive, indexed = _ab(workload)
        speedups.append(naive / indexed)
    worst = min(speedups)
    assert worst >= REQUIRED_E7_SPEEDUP, (
        f"indexed backend only {worst:.1f}x faster than the naive shim on the "
        f"E7 chain workload (required {REQUIRED_E7_SPEEDUP}x); speedups={speedups}"
    )
    return speedups


def bench_e11_e7_star_speedup():
    """Enumeration-bound star family: the win is a constant factor."""
    workload = star_mapping_workload(4)
    naive, indexed = _ab(workload)
    assert indexed < naive, "indexed backend should not be slower on the star family"
    return naive / indexed


def bench_e11_e1_evaluation_speedup():
    """Bag evaluation on the scaled Section 2 instance (bench E1's sweep)."""
    workload = evaluation_workload(12)
    naive, indexed = _ab(workload, repeats=3)
    assert naive / indexed >= 1.5, (
        f"indexed backend only {naive / indexed:.1f}x faster on E1 evaluation"
    )
    return naive / indexed


def bench_e11_backends_agree():
    """Smoke cross-check: both backends report identical counts/answers."""
    for length in (4, 8):
        workload = chain_mapping_workload(length)
        with use_backend("naive"):
            expected = workload()
        with use_backend("indexed"):
            assert workload() == expected
    query = section2_query()
    bag = scaled_section2_bag(2)
    with use_backend("naive"):
        expected_answers = evaluate_bag(query, bag)
    with use_backend("indexed"):
        assert evaluate_bag(query, bag) == expected_answers


def main() -> None:
    rows: list[tuple[str, float, float]] = []
    for name, workload in [
        ("E7 chain len=8", chain_mapping_workload(8)),
        ("E7 chain len=16", chain_mapping_workload(16)),
        ("E7 chain len=24", chain_mapping_workload(24)),
        ("E7 star rays=4", star_mapping_workload(4)),
        ("E7 star rays=5", star_mapping_workload(5)),
        ("E1 eval copies=8", evaluation_workload(8)),
        ("E1 eval copies=16", evaluation_workload(16)),
    ]:
        naive, indexed = _ab(workload, repeats=3)
        rows.append((name, naive, indexed))

    print(f"{'workload':<20} {'naive':>10} {'indexed':>10} {'speedup':>8}")
    for name, naive, indexed in rows:
        print(f"{name:<20} {naive * 1e3:>8.2f}ms {indexed * 1e3:>8.2f}ms {naive / indexed:>7.1f}x")

    bench_e11_backends_agree()
    chain_speedups = bench_e11_e7_chain_speedup()
    print(
        f"\nE7 chain family speedups: {', '.join(f'{s:.1f}x' for s in chain_speedups)} "
        f"(required ≥ {REQUIRED_E7_SPEEDUP}x) — OK"
    )


if __name__ == "__main__":
    main()
