"""E11 — engine A/B: naive vs indexed vs interned vs generated backends.

The engine refactor claims that compiling a ``(source, target, fixed)``
triple once — static fail-first join order, signature-keyed candidate
indexes, iterative trail-based execution — beats the naive recursive
backtracker, and that the **interned** data plane (terms interned to dense
integer ids, columnar target storage, packed-key signature indexes,
cost-ordered plans, static-filter hoisting) beats the indexed engine again,
and that the **generated** backend (plan suffixes compiled to dedicated
nested-loop functions, compiled static-filter passes, lazy substitution
materialisation, adaptive mid-execution replanning) beats interned once
more on enumeration-bound work.  This experiment A/Bs the four backends on
the workloads the decision procedures actually run:

* the E7 *containee-scaling* family (chain containment mappings): the
  hom-search cost grows with the containee length; the indexed backend
  must be **at least 3× faster** than naive, the interned backend **at
  least 2× faster** than indexed, and the generated backend **at least
  2× faster** than interned on its best family — the headline acceptance
  assertions;
* the E7 *containing-scaling* family (star queries, ``rays^rays``
  containment mappings): enumeration-bound, the interned win here comes
  from integer candidate filtering and trusted substitution construction;
* the E1 bag-evaluation scaling workload (Section 2 instance, scaled).

Cross-backend identity is asserted before any timing: verdicts,
certificates, counts and enumerated answer bags must be bit-identical
across all four backends.

A machine-readable record of the run (timings, speedup ratios, committed
thresholds, case counts) is written to ``BENCH_E11.json`` at the repo root
(see ``benchmarks/record.py``); ``$BENCH_SMOKE=1`` shrinks the workload
sizes for CI smoke runs, where the hard speedup assertions are deferred to
``report.py --check``'s tolerance-based gate (small sizes on shared
runners are too noisy for exact thresholds).

Run standalone (``PYTHONPATH=src python benchmarks/bench_e11_engine.py``)
for the comparison table, or through pytest with the bench collection
options used by the other experiments.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent))

from record import write_record  # noqa: E402

from repro.core.decision import decide_bag_containment
from repro.core.probe_tuples import most_general_probe_tuple
from repro.engine import use_backend
from repro.evaluation.bag_evaluation import evaluate_bag
from repro.evaluation.homomorphisms import containment_mappings_to_ground
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant
from repro.workloads.paper_examples import section2_q1, section2_q2, section2_query
from repro.workloads.structured import chain_containment_pair, star_containment_pair

#: Minimum indexed-over-naive speedup on the E7 chain (decider-scaling) workload.
REQUIRED_E7_SPEEDUP = 3.0

#: Minimum interned-over-indexed speedup on the E7 decider-scaling families
#: (worst case over the chain and star workloads below).
REQUIRED_INTERNED_SPEEDUP = 2.0

#: Minimum generated-over-interned speedup on the *best* E7 decider-scaling
#: family.  The generated backend's codegen win is workload-shaped — the
#: enumeration-bound star family is where compiled suffixes plus lazy
#: substitution materialisation pay off; the chain family is a static-filter
#: fold where both integer backends are already probe-bound — so the
#: acceptance is "at least one family", not "every family".
REQUIRED_GENERATED_SPEEDUP = 2.0

#: The four backends under test, in comparison order.
BACKENDS = ("naive", "indexed", "interned", "generated")

#: ``BENCH_SMOKE=1`` shrinks sizes for CI smoke runs (assertions deferred
#: to the record check, which allows the documented regression tolerance).
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

CHAIN_LENGTHS = (4, 8) if SMOKE else (8, 16, 24)
STAR_RAYS = (3,) if SMOKE else (4, 5)
EVAL_COPIES = 4 if SMOKE else 12


def _best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Minimum wall-clock over *repeats* runs (the usual noise-robust timer)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed(fn: Callable[[], object], backend: str, repeats: int = 5) -> float:
    with use_backend(backend):
        fn()  # warm the plan caches once; steady-state is what the engine sells
        return _best_of(fn, repeats)


def _ab(fn: Callable[[], object], repeats: int = 5) -> tuple[float, float]:
    """(naive seconds, indexed seconds) for one workload closure."""
    with use_backend("naive"):
        naive = _best_of(fn, repeats)
    indexed = _timed(fn, "indexed", repeats)
    return naive, indexed


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #
def chain_mapping_workload(length: int) -> Callable[[], int]:
    """E7 containee scaling: containment mappings into a grounded chain."""
    containee, containing = chain_containment_pair(length)
    probe = most_general_probe_tuple(containee)
    grounded = containee.ground(probe)

    def run() -> int:
        return sum(1 for _ in containment_mappings_to_ground(containing, grounded, probe))

    return run


def star_mapping_workload(rays: int) -> Callable[[], int]:
    """E7 containing scaling: ``rays^rays`` containment mappings into a star."""
    containee, containing = star_containment_pair(rays)
    probe = most_general_probe_tuple(containee)
    grounded = containee.ground(probe)

    def run() -> int:
        return sum(1 for _ in containment_mappings_to_ground(containing, grounded, probe))

    return run


def scaled_section2_bag(copies: int, multiplicity: int = 1) -> BagInstance:
    """Disjoint copies of the Section 2 running instance (as in bench E1)."""
    counts: dict[Atom, int] = {}
    for copy in range(copies):
        c = {i: Constant(f"c{i}_{copy}") for i in range(1, 6)}
        counts[Atom("R", (c[1], c[2]))] = 2 * multiplicity
        counts[Atom("R", (c[1], c[3]))] = multiplicity
        counts[Atom("P", (c[2], c[4]))] = multiplicity
        counts[Atom("P", (c[5], c[4]))] = 3 * multiplicity
    return BagInstance(counts)


def evaluation_workload(copies: int) -> Callable[[], object]:
    """E1 scaling: bag evaluation of the running query on a scaled instance."""
    query: ConjunctiveQuery = section2_query()
    bag = scaled_section2_bag(copies)
    return lambda: evaluate_bag(query, bag)


# --------------------------------------------------------------------- #
# Benchmarks (collected with the bench_* options, also runnable directly)
# --------------------------------------------------------------------- #
def bench_e11_e7_chain_speedup():
    """Headline assertion: indexed ≥ 3× naive on the E7 decider-scaling chains."""
    speedups = []
    for length in CHAIN_LENGTHS:
        workload = chain_mapping_workload(length)
        naive, indexed = _ab(workload)
        speedups.append(naive / indexed)
    worst = min(speedups)
    if not SMOKE:
        assert worst >= REQUIRED_E7_SPEEDUP, (
            f"indexed backend only {worst:.1f}x faster than the naive shim on the "
            f"E7 chain workload (required {REQUIRED_E7_SPEEDUP}x); speedups={speedups}"
        )
    return speedups


def bench_e11_interned_speedup():
    """Headline assertion: interned ≥ 2× indexed on the E7 decider-scaling families."""
    speedups: dict[str, float] = {}
    for length in CHAIN_LENGTHS:
        workload = chain_mapping_workload(length)
        indexed = _timed(workload, "indexed", repeats=7)
        interned = _timed(workload, "interned", repeats=7)
        speedups[f"chain{length}"] = indexed / interned
    for rays in STAR_RAYS:
        workload = star_mapping_workload(rays)
        indexed = _timed(workload, "indexed")
        interned = _timed(workload, "interned")
        speedups[f"star{rays}"] = indexed / interned
    worst = min(speedups.values())
    if not SMOKE:
        assert worst >= REQUIRED_INTERNED_SPEEDUP, (
            f"interned backend only {worst:.2f}x faster than indexed on the E7 "
            f"decider-scaling families (required {REQUIRED_INTERNED_SPEEDUP}x); "
            f"speedups={speedups}"
        )
    return speedups


def bench_e11_generated_speedup():
    """Headline assertion: generated ≥ 2× interned on ≥ 1 E7 decider-scaling family."""
    speedups: dict[str, float] = {}
    for length in CHAIN_LENGTHS:
        workload = chain_mapping_workload(length)
        interned = _timed(workload, "interned", repeats=7)
        generated = _timed(workload, "generated", repeats=7)
        speedups[f"chain{length}"] = interned / generated
    for rays in STAR_RAYS:
        workload = star_mapping_workload(rays)
        interned = _timed(workload, "interned")
        generated = _timed(workload, "generated")
        speedups[f"star{rays}"] = interned / generated
    best = max(speedups.values())
    if not SMOKE:
        assert best >= REQUIRED_GENERATED_SPEEDUP, (
            f"generated backend peaks at {best:.2f}x over interned across the E7 "
            f"decider-scaling families (required {REQUIRED_GENERATED_SPEEDUP}x on "
            f"at least one); speedups={speedups}"
        )
    return speedups


def bench_e11_e7_star_speedup():
    """Enumeration-bound star family: the indexed-over-naive win is a constant factor."""
    workload = star_mapping_workload(STAR_RAYS[0])
    naive, indexed = _ab(workload)
    assert indexed < naive, "indexed backend should not be slower on the star family"
    return naive / indexed


def bench_e11_e1_evaluation_speedup():
    """Bag evaluation on the scaled Section 2 instance (bench E1's sweep)."""
    workload = evaluation_workload(EVAL_COPIES)
    naive, indexed = _ab(workload, repeats=3)
    if not SMOKE:
        assert naive / indexed >= 1.5, (
            f"indexed backend only {naive / indexed:.1f}x faster on E1 evaluation"
        )
    return naive / indexed


def bench_e11_backends_agree():
    """Bit-identical verdicts, certificates, counts and answers across backends."""
    # Mapping counts agree on both E7 families.
    for workload in [chain_mapping_workload(4), chain_mapping_workload(8),
                     star_mapping_workload(3)]:
        counts = {}
        for backend in BACKENDS:
            with use_backend(backend):
                counts[backend] = workload()
        assert len(set(counts.values())) == 1, f"mapping counts diverge: {counts}"

    # Bag evaluation returns identical answer bags.
    query = section2_query()
    bag = scaled_section2_bag(2)
    answers = {}
    for backend in BACKENDS:
        with use_backend(backend):
            answers[backend] = evaluate_bag(query, bag)
    assert all(answers[backend] == answers["naive"] for backend in BACKENDS), (
        f"answer bags diverge: {answers}"
    )

    # Full decisions ship identical verdicts and certificates.
    pairs = [
        chain_containment_pair(3),
        star_containment_pair(2),
        (section2_q2(), section2_q1()),  # the paper's refuted instance
    ]
    for containee, containing in pairs:
        results = {}
        for backend in BACKENDS:
            with use_backend(backend):
                results[backend] = decide_bag_containment(containee, containing)
        verdicts = {backend: result.contained for backend, result in results.items()}
        assert len(set(verdicts.values())) == 1, f"verdicts diverge: {verdicts}"
        certificates = {
            backend: result.counterexample for backend, result in results.items()
        }
        assert all(
            certificates[backend] == certificates["naive"] for backend in BACKENDS
        ), f"certificates diverge on {containee.name} vs {containing.name}"


def main() -> None:
    workloads = [
        *[(f"E7 chain len={n}", chain_mapping_workload(n)) for n in CHAIN_LENGTHS],
        *[(f"E7 star rays={n}", star_mapping_workload(n)) for n in STAR_RAYS],
        (f"E1 eval copies={EVAL_COPIES}", evaluation_workload(EVAL_COPIES)),
    ]
    timings: dict[str, dict[str, float]] = {}
    print(
        f"{'workload':<20} {'naive':>10} {'indexed':>10} {'interned':>10} "
        f"{'generated':>10} {'idx/int':>8} {'int/gen':>8}"
    )
    for name, workload in workloads:
        row = {backend: _timed(workload, backend, repeats=3) for backend in BACKENDS}
        timings[name] = {backend: round(seconds, 6) for backend, seconds in row.items()}
        print(
            f"{name:<20} {row['naive'] * 1e3:>8.2f}ms {row['indexed'] * 1e3:>8.2f}ms "
            f"{row['interned'] * 1e3:>8.2f}ms {row['generated'] * 1e3:>8.2f}ms "
            f"{row['indexed'] / row['interned']:>7.2f}x "
            f"{row['interned'] / row['generated']:>7.2f}x"
        )

    bench_e11_backends_agree()
    chain_speedups = bench_e11_e7_chain_speedup()
    interned_speedups = bench_e11_interned_speedup()
    generated_speedups = bench_e11_generated_speedup()
    worst_chain = min(chain_speedups)
    worst_interned = min(interned_speedups.values())
    best_generated = max(generated_speedups.values())
    print(
        f"\nE7 chain indexed/naive speedups: "
        f"{', '.join(f'{s:.1f}x' for s in chain_speedups)} (required ≥ {REQUIRED_E7_SPEEDUP}x)"
    )
    print(
        f"E7 interned/indexed speedups: "
        f"{', '.join(f'{k}={v:.2f}x' for k, v in interned_speedups.items())} "
        f"(required ≥ {REQUIRED_INTERNED_SPEEDUP}x) — "
        + ("recorded (smoke run)" if SMOKE else "OK")
    )
    print(
        f"E7 generated/interned speedups: "
        f"{', '.join(f'{k}={v:.2f}x' for k, v in generated_speedups.items())} "
        f"(required ≥ {REQUIRED_GENERATED_SPEEDUP}x on the best family) — "
        + ("recorded (smoke run)" if SMOKE else "OK")
    )

    path = write_record(
        "e11",
        {
            "source": "bench_e11_engine",
            "smoke": SMOKE,
            "backends": list(BACKENDS),
            "case_count": len(workloads),
            "chain_lengths": list(CHAIN_LENGTHS),
            "star_rays": list(STAR_RAYS),
            "timings_seconds": timings,
            "metrics": {
                "indexed_over_naive_chain": round(worst_chain, 3),
                "interned_over_indexed": round(worst_interned, 3),
                "generated_over_interned": round(best_generated, 3),
                **{
                    f"interned_over_indexed_{name}": round(value, 3)
                    for name, value in interned_speedups.items()
                },
                **{
                    f"generated_over_interned_{name}": round(value, 3)
                    for name, value in generated_speedups.items()
                },
            },
            "thresholds": {
                "indexed_over_naive_chain": REQUIRED_E7_SPEEDUP,
                "interned_over_indexed": REQUIRED_INTERNED_SPEEDUP,
                "generated_over_interned": REQUIRED_GENERATED_SPEEDUP,
            },
            "backends_identical": True,  # asserted above
        },
    )
    print(f"json record written to {path}")


if __name__ == "__main__":
    main()
