"""Machine-readable benchmark records: ``BENCH_E*.json`` at the repo root.

Every experiment writes one JSON record per run so the perf trajectory of
the repository is a set of diffable files instead of scrollback:

* the standalone benchmark mains (``bench_e11_engine.py``,
  ``bench_e14_parallel.py``, ...) call :func:`write_record` with their
  timings, speedup ratios, backends and case counts, plus the **committed
  thresholds** their assertions enforce;
* the pytest-benchmark path writes records automatically through the
  session hook in ``benchmarks/conftest.py`` (one record per ``bench_e*``
  module, covering E1–E10 as well);
* ``benchmarks/report.py --records`` aggregates every record into one
  table, and ``--check`` fails when any recorded metric regresses more
  than :data:`REGRESSION_TOLERANCE` below its committed threshold — the
  CI ``bench-smoke`` job's gate.

Records land at the repository root (``BENCH_E11.json`` next to
``README.md``) unless ``$BENCH_RECORD_DIR`` points elsewhere.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

__all__ = [
    "REGRESSION_TOLERANCE",
    "check_record",
    "load_records",
    "record_path",
    "write_record",
]

#: A metric may fall this fraction below its committed threshold before the
#: regression check fails (smoke runs on shared CI hardware are noisy; the
#: full-size benchmark asserts the thresholds exactly).
REGRESSION_TOLERANCE = 0.25

#: The repository root — records sit next to README.md so they are easy to
#: find, diff and upload as CI artifacts.
_REPO_ROOT = Path(__file__).resolve().parent.parent


def record_path(experiment: str) -> Path:
    """Where the record of *experiment* (e.g. ``"e11"``) lives."""
    directory = os.environ.get("BENCH_RECORD_DIR")
    base = Path(directory) if directory else _REPO_ROOT
    return base / f"BENCH_{experiment.upper()}.json"


def write_record(experiment: str, payload: dict) -> Path:
    """Persist one experiment's record, stamping the environment context.

    *payload* should carry ``metrics`` (measured numbers), ``thresholds``
    (the committed minima ``report.py --check`` compares against, empty if
    the experiment asserts nothing) and whatever experiment-specific
    context makes the numbers interpretable (backend, case counts, sizes).
    """
    record = {
        "experiment": experiment,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "argv": sys.argv[1:],
        **payload,
    }
    path = record_path(experiment)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_records(directory: Path | None = None) -> dict[str, dict]:
    """Every ``BENCH_E*.json`` in *directory* (repo root by default)."""
    base = directory if directory is not None else _REPO_ROOT
    records: dict[str, dict] = {}
    for path in sorted(base.glob("BENCH_E*.json")):
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        records[record.get("experiment", path.stem.lower())] = record
    return records


def check_record(record: dict) -> list[str]:
    """Regression findings for one record (empty = healthy).

    A metric regresses when it falls more than :data:`REGRESSION_TOLERANCE`
    below the threshold committed next to it in the record.
    """
    findings = []
    thresholds = record.get("thresholds", {})
    metrics = record.get("metrics", {})
    for name, minimum in thresholds.items():
        measured = metrics.get(name)
        if measured is None:
            findings.append(f"{record.get('experiment')}: metric {name!r} missing from record")
            continue
        floor = minimum * (1.0 - REGRESSION_TOLERANCE)
        if measured < floor:
            findings.append(
                f"{record.get('experiment')}: {name} = {measured:.3g} regressed more than "
                f"{REGRESSION_TOLERANCE:.0%} below its committed threshold {minimum:.3g} "
                f"(floor {floor:.3g})"
            )
    return findings
