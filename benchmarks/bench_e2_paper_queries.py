"""E2 — Section 2 containment examples: q1, q2, q3 under set and bag semantics.

Regenerates the verdict table the paper states at the end of Section 2:

    pair          set containment    bag containment
    q1 ⊑ q2       holds              holds
    q2 ⊑ q1       holds              fails
    q1 ⊑ q3       holds              holds
    q2 ⊑ q3       holds              holds
    q3 ⊑ q1/q2    fails              fails (implied)

and times both deciders on each pair.
"""

from __future__ import annotations

import pytest

from repro.containment.set_containment import decide_set_containment
from repro.core.decision import decide_bag_containment
from repro.workloads.paper_examples import section2_q1, section2_q2, section2_q3

PAIRS = {
    "q1_in_q2": (section2_q1, section2_q2, True, True),
    "q2_in_q1": (section2_q2, section2_q1, True, False),
    "q1_in_q3": (section2_q1, section2_q3, True, True),
    "q2_in_q3": (section2_q2, section2_q3, True, True),
}


@pytest.mark.parametrize("pair_name", sorted(PAIRS))
def bench_e2_set_containment(benchmark, pair_name):
    containee_factory, containing_factory, expected_set, _ = PAIRS[pair_name]
    containee, containing = containee_factory(), containing_factory()
    result = benchmark(decide_set_containment, containee, containing)
    assert result.contained == expected_set


@pytest.mark.parametrize("pair_name", sorted(PAIRS))
def bench_e2_bag_containment(benchmark, pair_name):
    containee_factory, containing_factory, _, expected_bag = PAIRS[pair_name]
    containee, containing = containee_factory(), containing_factory()
    result = benchmark(decide_bag_containment, containee, containing)
    assert result.contained == expected_bag
    if not expected_bag:
        assert result.counterexample is not None


def bench_e2_q3_is_not_set_contained(benchmark):
    """Statement (3): q3 is not set-contained in q1 (hence not bag-contained)."""
    q3, q1 = section2_q3(), section2_q1()
    result = benchmark(decide_set_containment, q3, q1)
    assert not result.contained
