"""Ablation benches for the design choices called out in DESIGN.md.

Three ablations:

* **Feasibility engine** — exact Fourier–Motzkin vs. the scipy-LP fast path
  on the full containment decision (not just the isolated linear system);
* **Probe-tuple strategy** — most-general probe tuple (Theorem 5.3) vs. the
  all-probe-tuple path (Corollary 3.1) vs. the bounded guess-&-check
  reference (Theorem 5.1) on the paper's pairs;
* **Probe-tuple reduction** — full probe-tuple enumeration vs. the
  isomorphism-reduced set mentioned after Definition 3.1.
"""

from __future__ import annotations

import pytest

from repro.core.decision import (
    decide_via_all_probes,
    decide_via_bounded_guess,
    decide_via_most_general_probe,
)
from repro.core.probe_tuples import probe_tuples, reduced_probe_tuples
from repro.workloads.paper_examples import (
    section2_q1,
    section2_q2,
    section3_probe_example_query,
)

PAPER_PAIRS = {
    "q1_in_q2": (section2_q1, section2_q2, True),
    "q2_in_q1": (section2_q2, section2_q1, False),
}


@pytest.mark.parametrize("engine", ["fourier-motzkin", "lp"])
@pytest.mark.parametrize("pair_name", sorted(PAPER_PAIRS))
def bench_ablation_feasibility_engine(benchmark, engine, pair_name):
    containee_factory, containing_factory, expected = PAPER_PAIRS[pair_name]
    containee, containing = containee_factory(), containing_factory()
    result = benchmark(
        decide_via_most_general_probe, containee, containing, engine == "lp"
    )
    assert result.contained == expected


@pytest.mark.parametrize("strategy", ["most-general", "all-probes", "bounded-guess"])
@pytest.mark.parametrize("pair_name", sorted(PAPER_PAIRS))
def bench_ablation_probe_strategy(benchmark, strategy, pair_name):
    containee_factory, containing_factory, expected = PAPER_PAIRS[pair_name]
    containee, containing = containee_factory(), containing_factory()
    deciders = {
        "most-general": decide_via_most_general_probe,
        "all-probes": decide_via_all_probes,
        "bounded-guess": lambda a, b: decide_via_bounded_guess(a, b, bound=6),
    }
    result = benchmark(deciders[strategy], containee, containing)
    assert result.contained == expected


@pytest.mark.parametrize("variant", ["full", "reduced"])
def bench_ablation_probe_tuple_reduction(benchmark, variant):
    query = section3_probe_example_query()
    enumerate_probes = probe_tuples if variant == "full" else reduced_probe_tuples
    tuples = benchmark(enumerate_probes, query)
    assert len(tuples) == (16 if variant == "full" else 10)
