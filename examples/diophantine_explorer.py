"""Exploring monomial–polynomial inequalities (Section 4 of the paper).

This example reconstructs, step by step, the worked example of Section 4:

* the 3-MPI ``u1^7 + u1^5·u2^2 + u1^3·u3^4 < u1^2·u2·u3^3``;
* the fact that 0 and the all-ones vector can never be solutions
  (Proposition 4.1);
* the reduction to the homogeneous linear system
  ``{-5ε1 + ε2 + 3ε3 > 0, -3ε1 - ε2 + 3ε3 > 0, -ε1 - ε2 + 3ε3 > 0}``;
* the recovery of the Diophantine solutions (1, 4, 3) and (1, 9, 3)
  reported in the paper, plus the solver's own verified witness;
* the connection back to bag containment through the UCQ encoding of
  Ioannidis–Ramakrishnan.

Run with::

    python examples/diophantine_explorer.py
"""

from __future__ import annotations

from repro import Session
from repro.core.reductions import bag_for_polynomial_point, polynomial_pair_to_ucqs
from repro.diophantine import Monomial, MonomialPolynomialInequality, Polynomial, decide_mpi
from repro.linalg.fourier_motzkin import solve_strict_system


def main() -> None:
    session = Session(name="diophantine-explorer")
    names = ("u1", "u2", "u3")

    polynomial = Polynomial.from_terms([(1, (7, 0, 0)), (1, (5, 2, 0)), (1, (3, 0, 4))])
    monomial = Monomial(1, (2, 1, 3))
    inequality = MonomialPolynomialInequality(polynomial, monomial)
    print("the 3-MPI of Section 4:", inequality.render(names))
    print()

    # Proposition 4.1: zero and all-ones never solve an MPI.
    print("is (0, 5, 5) a solution?", inequality.is_solution((0, 5, 5)))
    print("is (1, 1, 1) a solution?", inequality.is_solution((1, 1, 1)))
    print("is (1, 4, 3) a solution?", inequality.is_solution((1, 4, 3)), "(paper's solution)")
    print("is (1, 9, 3) a solution?", inequality.is_solution((1, 9, 3)), "(paper's second solution)")
    print()

    # Theorem 4.1: the associated homogeneous linear system.
    system = inequality.to_linear_system()
    print("associated linear system rows (e - e_i):")
    for row in system.rows:
        rendered = " + ".join(f"{value}·ε{j + 1}" for j, value in enumerate(row))
        print(f"    {rendered} > 0")
    feasibility = solve_strict_system(system, require_positive=False)
    print("rational solution of the system:", feasibility.witness)
    print()

    # Theorem 4.2: the full decision, with a verified Diophantine witness.
    decision = decide_mpi(inequality)
    print("is the MPI solvable?", decision.solvable)
    print("natural solution d of the linear system:", decision.linear_solution)
    print("verified Diophantine witness ξ:", decision.witness)
    print("P(ξ) =", inequality.polynomial.evaluate(decision.witness))
    print("M(ξ) =", inequality.monomial.evaluate(decision.witness))
    print()

    # The Ioannidis-Ramakrishnan encoding: the same inequality as UCQ bag answers.
    left_ucq, right_ucq = polynomial_pair_to_ucqs(polynomial, Polynomial([monomial]))
    point = decision.witness
    bag = bag_for_polynomial_point(point)
    left_value = session.evaluate(left_ucq, bag).value[()]
    right_value = session.evaluate(right_ucq, bag).value[()]
    print("UCQ encoding sanity check at ξ:")
    print(f"    bag answer of the P-side UCQ : {left_value}")
    print(f"    bag answer of the M-side UCQ : {right_value}")
    print("    (they equal P(ξ) and M(ξ), so the Boolean UCQ containment breaks exactly here)")


if __name__ == "__main__":
    main()
