"""Quickstart: deciding bag containment of conjunctive queries.

This walkthrough mirrors Section 2 of the paper:

1. build conjunctive queries with repeated atoms (bag representation);
2. evaluate them under bag semantics on a bag instance;
3. decide set containment (Chandra-Merlin) and bag containment (the paper's
   Diophantine procedure) and inspect the counterexample certificate when
   containment fails.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import decide_bag_containment, decide_set_containment, evaluate_bag, parse_cq
from repro.queries.printer import format_answer_bag, format_bag_instance, format_query
from repro.workloads.paper_examples import section2_bag, section2_q1, section2_q2, section2_q3


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Queries can be parsed from datalog syntax or built programmatically.
    # ------------------------------------------------------------------ #
    query = parse_cq("q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)")
    print("query:", format_query(query))

    # ------------------------------------------------------------------ #
    # 2. Bag-semantics evaluation (Equation 2 of the paper).
    # ------------------------------------------------------------------ #
    bag = section2_bag()
    print("bag instance:", format_bag_instance(bag))
    answers = evaluate_bag(query, bag)
    print("bag answer:", format_answer_bag(answers.items()))
    print("  (the paper computes exactly {(c1,c2)^10, (c1,c5)^30})")
    print()

    # ------------------------------------------------------------------ #
    # 3. Set containment vs bag containment.
    # ------------------------------------------------------------------ #
    q1, q2, q3 = section2_q1(), section2_q2(), section2_q3()
    for containee, containing in [(q1, q2), (q2, q1), (q1, q3), (q2, q3)]:
        set_result = decide_set_containment(containee, containing)
        bag_result = decide_bag_containment(containee, containing)
        print(
            f"{containee.name} vs {containing.name}: "
            f"set containment {'holds' if set_result.contained else 'fails'}, "
            f"bag containment {'holds' if bag_result.contained else 'fails'}"
        )
        if not bag_result.contained and bag_result.counterexample is not None:
            print("   counterexample:", bag_result.counterexample.describe())
    print()

    # ------------------------------------------------------------------ #
    # 4. The Diophantine machinery is fully inspectable.
    # ------------------------------------------------------------------ #
    result = decide_bag_containment(q2, q1)
    encoding = result.encodings[0]
    print("Diophantine encoding of q2 ⊑b q1 at the most-general probe tuple:")
    print(encoding.describe())
    print()
    print("verdict:", result.explain())


if __name__ == "__main__":
    main()
