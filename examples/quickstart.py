"""Quickstart: the session API for bag containment of conjunctive queries.

This walkthrough mirrors Section 2 of the paper, driven entirely through a
:class:`repro.Session` — the service facade every workload flows through:

1. build conjunctive queries with repeated atoms (bag representation);
2. evaluate them under bag semantics on a bag instance;
3. decide set containment (Chandra-Merlin) and bag containment (the paper's
   Diophantine procedure) and inspect the counterexample certificate when
   containment fails;
4. stream a batch of requests through the session, sharing compiled plans.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ContainmentRequest, Session, parse_cq
from repro.queries.printer import format_answer_bag, format_bag_instance, format_query
from repro.workloads.paper_examples import section2_bag, section2_q1, section2_q2, section2_q3


def main() -> None:
    # One session owns the engine backend, the plan cache and the limits;
    # every decision and evaluation below shares its compiled state.
    session = Session(name="quickstart")

    # ------------------------------------------------------------------ #
    # 1. Queries can be parsed from datalog syntax or built programmatically.
    # ------------------------------------------------------------------ #
    query = parse_cq("q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)")
    print("query:", format_query(query))

    # ------------------------------------------------------------------ #
    # 2. Bag-semantics evaluation (Equation 2 of the paper).
    # ------------------------------------------------------------------ #
    bag = section2_bag()
    print("bag instance:", format_bag_instance(bag))
    answers = session.evaluate(query, bag)
    print("bag answer:", format_answer_bag(answers.value.items()))
    print("  (the paper computes exactly {(c1,c2)^10, (c1,c5)^30})")
    print(f"  [{answers.explain()}]")
    print()

    # ------------------------------------------------------------------ #
    # 3. Set containment vs bag containment.  Every outcome uniformly
    #    carries verdict + certificate + timing + cache statistics.
    # ------------------------------------------------------------------ #
    q1, q2, q3 = section2_q1(), section2_q2(), section2_q3()
    for containee, containing in [(q1, q2), (q2, q1), (q1, q3), (q2, q3)]:
        set_outcome = session.decide(containee, containing, semantics="set")
        bag_outcome = session.decide(containee, containing)
        print(
            f"{containee.name} vs {containing.name}: "
            f"set containment {'holds' if set_outcome.verdict else 'fails'}, "
            f"bag containment {'holds' if bag_outcome.verdict else 'fails'}"
        )
        if not bag_outcome.verdict and bag_outcome.certificate is not None:
            print("   counterexample:", bag_outcome.certificate.describe())
    print()

    # ------------------------------------------------------------------ #
    # 4. The Diophantine machinery is fully inspectable.
    # ------------------------------------------------------------------ #
    result = session.decide(q2, q1).value
    encoding = result.encodings[0]
    print("Diophantine encoding of q2 ⊑b q1 at the most-general probe tuple:")
    print(encoding.describe())
    print()
    print("verdict:", result.explain())
    print()

    # ------------------------------------------------------------------ #
    # 5. Batches stream through one session: repeated pairs and probes
    #    reuse the compiled match plans (watch the cache hit columns).
    # ------------------------------------------------------------------ #
    requests = [ContainmentRequest(a, b) for a in (q1, q2) for b in (q1, q2, q3)]
    print("streaming", len(requests), "containment requests through the session:")
    for outcome in session.batch(requests):
        request = outcome.request
        hits = sum(counts[0] for counts in outcome.cache.values())
        print(
            f"  {request.containee.name} ⊑b {request.containing.name}? "
            f"{str(bool(outcome.verdict)):<5} ({outcome.elapsed * 1000:.2f}ms, {hits} cache hits)"
        )


if __name__ == "__main__":
    main()
