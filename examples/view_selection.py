"""Duplicate-preserving view selection with the bag-containment decider.

A data-integration scenario from the paper's motivation: a warehouse keeps
*materialised views* (pre-joined tables) and wants to answer a dashboard
query from a view instead of the base tables.  Under set semantics the only
requirement is set equivalence; under the bag semantics SQL actually uses,
the substitution is only safe when the view query and the dashboard query
agree on *multiplicities* — i.e. when bag containment holds in both
directions.

The example builds a small catalogue of candidate views for a dashboard
query, classifies each candidate with the decider, and prints which ones are
safe to use, which only over-approximate (sound for upper-bound style
aggregates), and which are outright wrong, each with its counterexample
database.

Run with::

    python examples/view_selection.py
"""

from __future__ import annotations

from repro import Session, parse_cq
from repro.exceptions import NotProjectionFreeError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.printer import format_query

#: The catalogue classifier runs every direction through one session, so all
#: candidates share the compiled plans of the dashboard query.
SESSION = Session(name="view-selection")


def contained_or_none(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> bool | None:
    """Bag containment verdict, or ``None`` when the containee has projections.

    The paper's procedure needs a projection-free containee; for views with
    existential variables the reverse direction is outside the decidable
    fragment, which the classifier reports honestly.
    """
    try:
        return SESSION.decide(containee, containing).verdict
    except NotProjectionFreeError:
        return None


def classify(dashboard: ConjunctiveQuery, view: ConjunctiveQuery) -> str:
    """Classify a candidate view against the dashboard query."""
    view_covers = contained_or_none(dashboard, view)   # dashboard ⊑b view
    view_exact = contained_or_none(view, dashboard)    # view ⊑b dashboard
    if view_covers and view_exact:
        return "EXACT      — duplicate counts are preserved; safe for SUM/COUNT dashboards"
    if view_covers and view_exact is None:
        return "OVERCOUNTS?— dashboard duplicates are preserved; the reverse direction is outside the decidable fragment"
    if view_covers:
        return "OVERCOUNTS — every dashboard duplicate is present, but the view may add more"
    if view_exact:
        return "UNDERCOUNTS— the view can lose duplicates the dashboard query would report"
    return "INCOMPARABLE — multiplicities disagree (or the reverse direction is undecidable here)"


def main() -> None:
    # Dashboard: revenue lines per (customer, product), joining orders with
    # shipments; the join is duplicate-sensitive because a customer can have
    # several identical order lines.
    dashboard = parse_cq(
        "dash(x_cust, x_prod) <- Orders(x_cust, x_prod), Ships(x_cust, x_prod)"
    )
    print("dashboard query:", format_query(dashboard))
    print()

    candidates = {
        "v_exact": parse_cq(
            "v_exact(x_cust, x_prod) <- Ships(x_cust, x_prod), Orders(x_cust, x_prod)"
        ),
        "v_double_join": parse_cq(
            "v_double_join(x_cust, x_prod) <- Orders^2(x_cust, x_prod), Ships(x_cust, x_prod)"
        ),
        "v_orders_only": parse_cq(
            "v_orders_only(x_cust, x_prod) <- Orders(x_cust, x_prod)"
        ),
        "v_projected": parse_cq(
            "v_projected(x_cust, x_prod) <- Orders(x_cust, x_prod), Ships(x_cust, y_other)"
        ),
    }

    for name, view in candidates.items():
        print(f"candidate {name}: {format_query(view)}")
        print("   ", classify(dashboard, view))
        forward = SESSION.decide(dashboard, view)
        if not forward.verdict and forward.certificate is not None:
            print("    missing-duplicates witness:", forward.certificate.describe())
        if view.is_projection_free():
            backward = SESSION.decide(view, dashboard)
            if not backward.verdict and backward.certificate is not None:
                print("    extra-duplicates witness:  ", backward.certificate.describe())
        print()


if __name__ == "__main__":
    main()
