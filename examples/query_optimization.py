"""Duplicate-aware query optimisation with bag containment.

The introduction of the paper motivates bag containment with SQL: commercial
systems evaluate ``SELECT`` (without ``DISTINCT``) under bag semantics, so a
rewrite that is correct under set semantics may change the *multiplicities*
of the answers.  This example plays the role of a rewrite validator:

* a "report" query joins a ``Sales`` fact table with a ``Customer``
  dimension twice (a typo duplicates one join);
* the classic set-semantics minimiser happily removes the duplicate join —
  the rewritten query is set-equivalent;
* the bag-containment decider shows that the rewrite is **not**
  bag-equivalent (duplicate rows change), and produces the concrete bag
  database on which the two queries disagree — exactly the regression a
  duplicate-sensitive aggregation (``SUM``, ``COUNT``) would hit;
* a second rewrite (reordering joins without dropping atoms) is validated
  as bag-equivalent.

Run with::

    python examples/query_optimization.py
"""

from __future__ import annotations

from repro import Session, parse_cq
from repro.containment.minimization import core
from repro.evaluation.bag_evaluation import bag_multiplicity
from repro.queries.printer import format_query


def main() -> None:
    # One session validates every rewrite: repeated checks against the same
    # report query share its compiled match plans.
    session = Session(name="rewrite-validator")

    # A projection-free reporting query: every joined column is returned.
    # The Sales/Customer join is accidentally written twice.
    report = parse_cq(
        "report(x_cust, x_item) <- Sales^2(x_cust, x_item), Customer(x_cust, x_cust)"
    )
    print("original report query:")
    print("   ", format_query(report))

    # ------------------------------------------------------------------ #
    # Set-semantics minimisation would drop the duplicated Sales atom.
    # ------------------------------------------------------------------ #
    minimised = core(report).with_name("report_min")
    # The core collapses multiplicities to 1: the set-minimised rewrite.
    rewritten = parse_cq("report_min(x_cust, x_item) <- Sales(x_cust, x_item), Customer(x_cust, x_cust)")
    print("set-minimised rewrite:")
    print("   ", format_query(rewritten))
    set_safe = (
        session.decide(report, rewritten, semantics="set").verdict
        and session.decide(rewritten, report, semantics="set").verdict
    )
    print("set-equivalent?      ", set_safe)
    print("core has", len(minimised.body_atoms()), "atoms (set semantics sees no difference)")
    print()

    # ------------------------------------------------------------------ #
    # Bag semantics disagrees: the duplicate join squares the Sales
    # multiplicity, so the rewrite under-counts duplicated sales rows.
    # ------------------------------------------------------------------ #
    forward = session.decide(report, rewritten)
    backward = session.decide(rewritten, report)
    print("report ⊑b rewrite:", forward.verdict)
    print("rewrite ⊑b report:", backward.verdict)
    if not forward.verdict and forward.certificate is not None:
        cex = forward.certificate
        print("regression witness:", cex.describe())
        left = bag_multiplicity(report, cex.bag, cex.probe)
        right = bag_multiplicity(rewritten, cex.bag, cex.probe)
        print(
            f"  -> a SUM/COUNT over this database returns {left} rows with the original query "
            f"but {right} rows with the rewrite"
        )
    print()

    # ------------------------------------------------------------------ #
    # A rewrite that only reorders atoms (same bag representation) is safe.
    # ------------------------------------------------------------------ #
    reordered = parse_cq(
        "report_v2(x_cust, x_item) <- Customer(x_cust, x_cust), Sales(x_cust, x_item), Sales(x_cust, x_item)"
    )
    print("reordered rewrite:")
    print("   ", format_query(reordered))
    safe = session.containment_spectrum(report, reordered)
    print("bag-equivalent to the original?", safe.verdict)
    print("spectrum:")
    print("   ", safe.value.describe().replace("\n", "\n    "))


if __name__ == "__main__":
    main()
