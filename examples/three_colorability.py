"""Graph 3-colourability through bag containment (Theorem 5.4).

The paper's NPTime-hardness proof encodes 3-colourability of a graph ``G``
as the bag containment ``q_T ⊑b q_T ∧ q_G`` of a ground triangle query into
the conjunction of the triangle with the graph query.  Because the encoding
is constructive, the library can be used (inefficiently but correctly!) as a
3-colourability solver — and conversely the known answers for classic
graphs exercise the decision procedure on genuinely hard instances.

Run with::

    python examples/three_colorability.py
"""

from __future__ import annotations

from repro import Session
from repro.core.reductions import three_colorability_instance
from repro.workloads.graphs import (
    bipartite_graph,
    complete_graph,
    cycle_graph,
    is_three_colorable,
    petersen_graph,
    wheel_graph,
)


#: Every reduction instance targets the same triangle query, so deciding the
#: whole gallery through one session reuses its compiled plans.
SESSION = Session(name="three-colorability")


def check(name: str, edges: list[tuple[object, object]]) -> None:
    """Decide 3-colourability both directly and through the bag-containment reduction."""
    expected = is_three_colorable(edges)
    containee, containing = three_colorability_instance(edges)
    outcome = SESSION.decide(containee, containing)
    agreement = "agrees" if outcome.verdict == expected else "DISAGREES"
    print(
        f"{name:<22} vertices≈{len({v for e in edges for v in e}):>3} edges={len(edges):>3}  "
        f"3-colourable={str(expected):<5} containment={str(outcome.verdict):<5} "
        f"({agreement}, {outcome.elapsed * 1000:.0f}ms)"
    )


def main() -> None:
    print("Deciding 3-colourability via the Theorem 5.4 reduction to bag containment\n")
    check("triangle K3", complete_graph(3))
    check("clique K4", complete_graph(4))
    check("odd cycle C5", cycle_graph(5))
    check("even cycle C6", cycle_graph(6))
    check("bipartite K3,3", bipartite_graph(3, 3))
    check("wheel W5 (odd rim)", wheel_graph(5))
    check("wheel W6 (even rim)", wheel_graph(6))
    check("Petersen graph", petersen_graph())
    print()
    print(
        "Positive containments certify a 3-colouring exists; negative ones come with a\n"
        "counterexample bag over the triangle facts on which the containment breaks."
    )


if __name__ == "__main__":
    main()
