"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that environments without the ``wheel`` package (where PEP 660
editable installs are unavailable) can still run
``pip install -e . --no-build-isolation --no-use-pep517``.

The ``package_data`` entry ships the PEP 561 ``py.typed`` marker, so
installed copies expose the library's inline annotations to type checkers
(see ``mypy.ini`` for the in-repo checking policy).
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
)
