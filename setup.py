"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that environments without the ``wheel`` package (where PEP 660
editable installs are unavailable) can still run
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
