"""Tests for the large-scale pair families (``repro.workloads.scale``)."""

import pytest

from repro.exceptions import WorkloadError
from repro.session import ContainmentRequest
from repro.workloads.scale import (
    acyclic_pair_family,
    chain_pair_family,
    long_chain_pair,
    mixed_pairs,
    mixed_requests,
    random_acyclic_pair,
    star_pair_family,
    wide_star_pair,
)


class TestRandomAcyclicPair:
    def test_containee_is_projection_free_and_acyclic(self):
        for seed in range(25):
            containee, containing = random_acyclic_pair(seed)
            assert containee.is_projection_free()
            # Every edge goes from a lower-indexed variable to a strictly
            # higher-indexed one, so the body digraph cannot have a cycle.
            for atom in containee.body_atoms():
                low, high = (int(term.name[1:]) for term in atom.terms)
                assert low < high
            # The containing query shares the head (grounding stays possible).
            assert containing.head == containee.head

    def test_pairs_are_deterministic_per_seed(self):
        assert random_acyclic_pair(42) == random_acyclic_pair(42)
        assert random_acyclic_pair(42) != random_acyclic_pair(43)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            random_acyclic_pair(0, num_atoms=0)
        with pytest.raises(WorkloadError):
            random_acyclic_pair(0, num_variables=1)
        with pytest.raises(WorkloadError):
            random_acyclic_pair(0, max_multiplicity=0)


class TestStructuredFamilies:
    def test_wide_star_pair_shapes(self):
        containee, containing = wide_star_pair(2, extra_rays=2, containing_boost=3)
        assert containee.is_projection_free()
        assert len(containing.body_atoms()) == 4  # 2 shared rays + 2 existential
        assert max(containing.body.values()) == 3
        with pytest.raises(WorkloadError):
            wide_star_pair(0)
        with pytest.raises(WorkloadError):
            wide_star_pair(1, containee_boost=0)

    def test_long_chain_pair_shapes(self):
        containee, containing = long_chain_pair(3, relax=2, containee_boost=2)
        assert containee.degree() == 6  # 3 edges x boost 2
        assert len(containing.body_atoms()) == 5  # 3 edges + 2 relax atoms
        with pytest.raises(WorkloadError):
            long_chain_pair(0)

    def test_families_have_requested_sizes_and_are_seeded(self):
        for family in (star_pair_family, chain_pair_family, acyclic_pair_family):
            pairs = family(10, seed=3)
            assert len(pairs) == 10
            assert pairs == family(10, seed=3)
            assert pairs != family(10, seed=4)


class TestMixedWorkload:
    def test_stream_is_a_pure_function_of_seed_and_index(self):
        first = list(mixed_pairs(30, seed=8))
        second = list(mixed_pairs(30, seed=8))
        assert first == second
        # Prefixes agree: element i never depends on how many were drawn.
        assert first[:10] == list(mixed_pairs(10, seed=8))

    def test_blend_covers_all_families(self):
        origins = {origin.split("[")[0] for origin, _ in mixed_pairs(60, seed=0)}
        assert origins == {"acyclic", "star", "chain"}

    def test_mixed_requests_distinct_components(self):
        requests = mixed_requests(40, seed=0, distinct=True)
        assert all(isinstance(request, ContainmentRequest) for request in requests)
        # No atom set recurs across requests (a pair may share one between
        # its own sides — that sharing is within-request and parallelises
        # identically; only cross-request sharing would skew cache stats).
        seen = set()
        for request in requests:
            keys = {
                frozenset(request.containee.body_atoms()),
                frozenset(request.containing.body_atoms()),
            }
            assert not (keys & seen)
            seen |= keys

    def test_mixed_requests_passes_decision_options_through(self):
        (request,) = mixed_requests(1, seed=0, verify_certificates=False, strategy="all-probes")
        assert request.strategy == "all-probes"
        assert request.verify_certificates is False

    def test_distinct_generation_has_a_budget(self):
        # Stars and chains alone cannot produce thousands of distinct atom
        # sets; the acyclic family absorbs the demand instead of looping.
        requests = mixed_requests(120, seed=0, distinct=True)
        assert len(requests) == 120
