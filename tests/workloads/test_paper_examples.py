"""Tests asserting the paper-example fixtures have the documented shapes."""

from repro.workloads.paper_examples import (
    section2_bag,
    section2_expected_answers,
    section2_instance,
    section2_q1,
    section2_q2,
    section2_q3,
    section2_query,
    section3_containee,
    section3_containing,
    section3_probe_example_query,
    section4_mpi_solutions,
)


class TestSection2Fixtures:
    def test_query_shape(self):
        query = section2_query()
        assert query.arity == 2
        assert query.degree() == 6
        assert len(query.body_atoms()) == 4
        assert not query.is_projection_free()

    def test_instance_and_bag_are_consistent(self):
        assert section2_bag().support() == section2_instance()
        assert section2_bag().total_multiplicity() == 7

    def test_expected_answers(self):
        assert set(section2_expected_answers().values()) == {10, 30}

    def test_q1_q2_q3_shapes(self):
        assert section2_q1().is_projection_free()
        assert section2_q2().is_projection_free()
        assert not section2_q3().is_projection_free()
        assert section2_q1().degree() == 5
        assert section2_q2().degree() == 6
        assert section2_q3() == section2_query()


class TestSection3And4Fixtures:
    def test_probe_example_query(self):
        query = section3_probe_example_query()
        assert query.arity == 2
        assert len(query.body_atoms()) == 3
        assert len(query.language_constants()) == 2

    def test_containee_and_containing(self):
        containee, containing = section3_containee(), section3_containing()
        assert containee.is_projection_free()
        assert containee.degree() == 6
        assert not containing.is_projection_free()
        assert containing.degree() == 7

    def test_mpi_solutions_are_the_paper_values(self):
        assert section4_mpi_solutions() == ((1, 4, 3), (1, 9, 3))
