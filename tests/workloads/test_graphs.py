"""Unit tests for the graph workloads and the exact 3-colourability checker."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.graphs import (
    bipartite_graph,
    complete_graph,
    cycle_graph,
    is_three_colorable,
    petersen_graph,
    random_graph,
    wheel_graph,
)


class TestGenerators:
    def test_cycle_graph(self):
        assert len(cycle_graph(5)) == 5
        with pytest.raises(WorkloadError):
            cycle_graph(2)

    def test_complete_graph(self):
        assert len(complete_graph(4)) == 6
        with pytest.raises(WorkloadError):
            complete_graph(1)

    def test_wheel_graph(self):
        assert len(wheel_graph(5)) == 10
        with pytest.raises(WorkloadError):
            wheel_graph(2)

    def test_bipartite_graph(self):
        assert len(bipartite_graph(2, 3)) == 6
        with pytest.raises(WorkloadError):
            bipartite_graph(0, 3)

    def test_petersen_graph(self):
        assert len(petersen_graph()) == 15

    def test_random_graph_is_seeded_and_never_empty(self):
        assert random_graph(6, 0.4, seed=1) == random_graph(6, 0.4, seed=1)
        assert len(random_graph(5, 0.0, seed=2)) >= 1
        with pytest.raises(WorkloadError):
            random_graph(1, 0.5)
        with pytest.raises(WorkloadError):
            random_graph(5, 1.5)


class TestThreeColorability:
    @pytest.mark.parametrize(
        "edges, expected",
        [
            (complete_graph(3), True),
            (complete_graph(4), False),
            (complete_graph(5), False),
            (cycle_graph(5), True),
            (cycle_graph(6), True),
            (bipartite_graph(3, 3), True),
            (wheel_graph(6), True),    # even rim: 3-colourable
            (wheel_graph(5), False),   # odd rim: needs 4 colours
            (petersen_graph(), True),
        ],
    )
    def test_known_graphs(self, edges, expected):
        assert is_three_colorable(edges) == expected

    def test_self_loops_are_never_colorable(self):
        assert not is_three_colorable([(1, 1)])

    def test_empty_edge_set_is_colorable(self):
        assert is_three_colorable([])
