"""Unit tests for the random query generators."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.random_queries import (
    RandomQueryConfig,
    random_containment_pair,
    random_projection_free_query,
    random_query,
    random_schema,
    random_unrelated_pair,
)
import random


class TestConfig:
    def test_invalid_configurations_are_rejected(self):
        with pytest.raises(WorkloadError):
            RandomQueryConfig(num_relations=0)
        with pytest.raises(WorkloadError):
            RandomQueryConfig(max_multiplicity=0)
        with pytest.raises(WorkloadError):
            RandomQueryConfig(head_size=10, num_variables=2)


class TestRandomQuery:
    def test_is_deterministic_for_a_fixed_seed(self):
        config = RandomQueryConfig()
        assert random_query(config, seed=5) == random_query(config, seed=5)

    def test_different_seeds_usually_differ(self):
        config = RandomQueryConfig(num_atoms=5, num_variables=5)
        queries = {random_query(config, seed=seed) for seed in range(10)}
        assert len(queries) > 1

    def test_respects_the_schema(self):
        config = RandomQueryConfig(num_relations=2, max_arity=3)
        rng = random.Random(0)
        schema = random_schema(config, rng)
        query = random_query(config, seed=1, schema=schema)
        for atom in query.body_atoms():
            schema.validate_atom(atom)

    def test_queries_are_always_safe(self):
        for seed in range(20):
            query = random_query(RandomQueryConfig(head_size=2, num_variables=4), seed=seed)
            assert query.head_variables() <= {
                variable for atom in query.body_atoms() for variable in atom.variables()
            }

    def test_projection_free_generator(self):
        for seed in range(20):
            query = random_projection_free_query(seed=seed)
            assert query.is_projection_free()

    def test_multiplicities_respect_the_bound(self):
        config = RandomQueryConfig(max_multiplicity=3, num_atoms=6)
        for seed in range(10):
            query = random_query(config, seed=seed)
            # An atom drawn twice can exceed the per-draw bound, but the total
            # degree is bounded by (num_atoms + head_size) * max_multiplicity.
            assert query.degree() <= (config.num_atoms + config.head_size) * config.max_multiplicity


class TestPairGenerators:
    def test_containment_pairs_have_projection_free_containees(self):
        for seed in range(15):
            containee, containing = random_containment_pair(seed)
            assert containee.is_projection_free()
            assert containee.arity == containing.arity

    def test_containment_pairs_are_deterministic(self):
        assert random_containment_pair(3) == random_containment_pair(3)

    def test_unrelated_pairs_are_well_formed(self):
        for seed in range(15):
            containee, containing = random_unrelated_pair(seed)
            assert containee.is_projection_free()
            assert len(containee.body_atoms()) >= 1
            assert len(containing.body_atoms()) >= 1
