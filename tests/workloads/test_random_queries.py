"""Unit tests for the random query generators."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.random_queries import (
    RandomQueryConfig,
    random_containment_pair,
    random_projection_free_query,
    random_query,
    random_schema,
    random_unrelated_pair,
)
import random


class TestConfig:
    def test_invalid_configurations_are_rejected(self):
        with pytest.raises(WorkloadError):
            RandomQueryConfig(num_relations=0)
        with pytest.raises(WorkloadError):
            RandomQueryConfig(max_multiplicity=0)
        with pytest.raises(WorkloadError):
            RandomQueryConfig(head_size=10, num_variables=2)


class TestRandomQuery:
    def test_is_deterministic_for_a_fixed_seed(self):
        config = RandomQueryConfig()
        assert random_query(config, seed=5) == random_query(config, seed=5)

    def test_different_seeds_usually_differ(self):
        config = RandomQueryConfig(num_atoms=5, num_variables=5)
        queries = {random_query(config, seed=seed) for seed in range(10)}
        assert len(queries) > 1

    def test_respects_the_schema(self):
        config = RandomQueryConfig(num_relations=2, max_arity=3)
        rng = random.Random(0)
        schema = random_schema(config, rng)
        query = random_query(config, seed=1, schema=schema)
        for atom in query.body_atoms():
            schema.validate_atom(atom)

    def test_queries_are_always_safe(self):
        for seed in range(20):
            query = random_query(RandomQueryConfig(head_size=2, num_variables=4), seed=seed)
            assert query.head_variables() <= {
                variable for atom in query.body_atoms() for variable in atom.variables()
            }

    def test_projection_free_generator(self):
        for seed in range(20):
            query = random_projection_free_query(seed=seed)
            assert query.is_projection_free()

    def test_multiplicities_respect_the_bound(self):
        config = RandomQueryConfig(max_multiplicity=3, num_atoms=6)
        for seed in range(10):
            query = random_query(config, seed=seed)
            # An atom drawn twice can exceed the per-draw bound, but the total
            # degree is bounded by (num_atoms + head_size) * max_multiplicity.
            assert query.degree() <= (config.num_atoms + config.head_size) * config.max_multiplicity


class TestPairGenerators:
    def test_containment_pairs_have_projection_free_containees(self):
        for seed in range(15):
            containee, containing = random_containment_pair(seed)
            assert containee.is_projection_free()
            assert containee.arity == containing.arity

    def test_containment_pairs_are_deterministic(self):
        assert random_containment_pair(3) == random_containment_pair(3)

    def test_unrelated_pairs_are_well_formed(self):
        for seed in range(15):
            containee, containing = random_unrelated_pair(seed)
            assert containee.is_projection_free()
            assert len(containee.body_atoms()) >= 1
            assert len(containing.body_atoms()) >= 1


class TestAdversarialPairs:
    def test_is_deterministic_for_a_fixed_seed(self):
        from repro.workloads.random_queries import random_adversarial_pair

        assert random_adversarial_pair(11) == random_adversarial_pair(11)

    def test_shared_core_invariants(self):
        from repro.workloads.random_queries import random_adversarial_pair

        for seed in range(30):
            containee, containing = random_adversarial_pair(seed)
            assert containee.is_projection_free()
            assert containee.head == containing.head
            # The bodies range over the same atoms...
            assert containee.body_atoms() == containing.body_atoms()
            # ...and differ in exactly one multiplicity.
            differing = [
                atom
                for atom in containee.body_atoms()
                if containee.multiplicity(atom) != containing.multiplicity(atom)
            ]
            assert len(differing) == 1

    def test_perturbation_is_bounded_and_one_sided(self):
        from repro.workloads.random_queries import random_adversarial_pair

        for seed in range(30):
            containee, containing = random_adversarial_pair(seed, max_perturbation=2)
            deltas = [
                containee.multiplicity(atom) - containing.multiplicity(atom)
                for atom in containee.body_atoms()
            ]
            nonzero = [delta for delta in deltas if delta != 0]
            assert len(nonzero) == 1
            assert 1 <= abs(nonzero[0]) <= 2

    def test_both_perturbation_directions_occur(self):
        from repro.workloads.random_queries import random_adversarial_pair

        directions = set()
        for seed in range(40):
            containee, containing = random_adversarial_pair(seed)
            directions.add(containee.degree() > containing.degree())
        assert directions == {True, False}

    def test_pairs_sit_near_the_containment_boundary(self):
        from repro.core.decision import decide_via_most_general_probe
        from repro.workloads.random_queries import random_adversarial_pair

        verdicts = set()
        for seed in range(25):
            containee, containing = random_adversarial_pair(seed)
            verdicts.add(decide_via_most_general_probe(containee, containing).contained)
        # The workload must mix contained and non-contained pairs.
        assert verdicts == {True, False}

    def test_respects_shape_parameters(self):
        from repro.workloads.random_queries import random_adversarial_pair

        for seed in range(10):
            containee, containing = random_adversarial_pair(seed, num_atoms=4, head_size=3)
            assert containee.arity == 3
            assert len(containee.body_atoms()) <= 4 + 3  # atoms + safety plants
