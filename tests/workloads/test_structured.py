"""Unit tests for the structured query families."""

import pytest

from repro.core.decision import is_bag_contained
from repro.exceptions import WorkloadError
from repro.workloads.structured import (
    amplified_query,
    chain_containment_pair,
    chain_query,
    cycle_query,
    projection_free_chain,
    projection_free_star,
    star_containment_pair,
    star_query,
)


class TestFamilies:
    def test_projection_free_chain_shape(self):
        chain = projection_free_chain(4)
        assert chain.arity == 5
        assert len(chain.body_atoms()) == 4
        assert chain.is_projection_free()

    def test_chain_query_with_existential_middle(self):
        chain = chain_query(3)
        assert chain.arity == 2
        assert len(chain.existential_variables()) == 2

    def test_star_shapes(self):
        star = projection_free_star(3, multiplicity=2)
        assert star.arity == 4
        assert star.degree() == 6
        assert star_query(3).arity == 1

    def test_cycle_shapes(self):
        cycle = cycle_query(4)
        assert cycle.arity == 4
        assert len(cycle.body_atoms()) == 4
        assert cycle_query(3, projection_free=False).arity == 1

    def test_size_validation(self):
        with pytest.raises(WorkloadError):
            projection_free_chain(0)
        with pytest.raises(WorkloadError):
            projection_free_star(0)
        with pytest.raises(WorkloadError):
            cycle_query(1)
        with pytest.raises(WorkloadError):
            amplified_query(projection_free_chain(1), 0)


class TestKnownContainments:
    def test_amplification_preserves_self_containment(self):
        for length in (1, 2, 3):
            chain = projection_free_chain(length)
            assert is_bag_contained(chain, amplified_query(chain, 2))
            assert not is_bag_contained(amplified_query(chain, 2), chain)

    def test_chain_containment_pairs_are_positive_instances(self):
        for length in (1, 2, 3):
            containee, containing = chain_containment_pair(length)
            assert is_bag_contained(containee, containing)

    def test_star_containment_pairs_are_positive_instances(self):
        for rays in (1, 2, 3):
            containee, containing = star_containment_pair(rays)
            assert is_bag_contained(containee, containing)
