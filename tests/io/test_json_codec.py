"""Unit tests for the JSON serialisation layer."""

import pytest

from repro.core.decision import decide_bag_containment
from repro.io.json_codec import (
    SerializationError,
    atom_from_dict,
    atom_to_dict,
    bag_instance_from_dict,
    bag_instance_to_dict,
    counterexample_from_dict,
    counterexample_to_dict,
    dump_json,
    load_json,
    load_queries,
    query_from_dict,
    query_to_dict,
    result_to_dict,
    save_queries,
    set_instance_from_dict,
    set_instance_to_dict,
    term_from_dict,
    term_to_dict,
    ucq_from_dict,
    ucq_to_dict,
)
from repro.queries.parser import parse_cq, parse_ucq
from repro.relational.atoms import Atom
from repro.relational.terms import CanonicalConstant, Constant, Variable
from repro.workloads.paper_examples import (
    section2_bag,
    section2_instance,
    section2_q1,
    section2_q2,
    section2_query,
)


class TestTermRoundTrip:
    @pytest.mark.parametrize(
        "term",
        [Variable("x1"), Constant("a"), Constant(42), CanonicalConstant("x2")],
    )
    def test_round_trip(self, term):
        assert term_from_dict(term_to_dict(term)) == term

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SerializationError):
            term_from_dict({"kind": "mystery"})


class TestAtomAndInstanceRoundTrip:
    def test_atom_round_trip(self):
        atom = Atom("R", (Variable("x"), Constant("a"), CanonicalConstant("y")))
        assert atom_from_dict(atom_to_dict(atom)) == atom

    def test_atom_kind_check(self):
        with pytest.raises(SerializationError):
            atom_from_dict({"kind": "cq"})

    def test_set_instance_round_trip(self):
        instance = section2_instance()
        assert set_instance_from_dict(set_instance_to_dict(instance)) == instance

    def test_bag_instance_round_trip(self):
        bag = section2_bag()
        assert bag_instance_from_dict(bag_instance_to_dict(bag)) == bag

    def test_instance_kind_checks(self):
        with pytest.raises(SerializationError):
            set_instance_from_dict({"kind": "bag_instance", "facts": []})
        with pytest.raises(SerializationError):
            bag_instance_from_dict({"kind": "set_instance", "facts": []})


class TestQueryRoundTrip:
    @pytest.mark.parametrize(
        "query_factory",
        [section2_query, section2_q1, section2_q2],
    )
    def test_paper_queries_round_trip(self, query_factory):
        query = query_factory()
        decoded = query_from_dict(query_to_dict(query))
        assert decoded == query
        assert decoded.name == query.name

    def test_queries_with_constants_round_trip(self):
        query = parse_cq("q(x1) <- R^3(x1, c1), S(x1, 7)")
        assert query_from_dict(query_to_dict(query)) == query

    def test_ucq_round_trip(self):
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert ucq_from_dict(ucq_to_dict(ucq)) == ucq

    def test_head_must_decode_to_variables(self):
        document = query_to_dict(parse_cq("q(x) <- R(x, x)"))
        document["head"] = [{"kind": "constant", "value": "a"}]
        with pytest.raises(SerializationError):
            query_from_dict(document)


class TestResultSerialization:
    def test_counterexample_round_trip_and_verification(self):
        result = decide_bag_containment(section2_q2(), section2_q1())
        assert result.counterexample is not None
        decoded = counterexample_from_dict(counterexample_to_dict(result.counterexample))
        assert decoded == result.counterexample
        assert decoded.verify(section2_q2(), section2_q1())

    def test_result_document_shape(self):
        result = decide_bag_containment(section2_q2(), section2_q1())
        document = result_to_dict(result)
        assert document["contained"] is False
        assert document["strategy"] == "most-general"
        assert document["counterexample"] is not None
        assert document["encodings"][0]["num_mappings"] >= 1
        # The document is JSON-serialisable as-is.
        import json

        json.dumps(document)

    def test_positive_result_document(self):
        result = decide_bag_containment(section2_q1(), section2_q2())
        document = result_to_dict(result)
        assert document["contained"] is True
        assert document["counterexample"] is None


class TestFileHelpers:
    def test_save_and_load_queries(self, tmp_path):
        workload = [section2_q1(), section2_q2(), parse_cq("q(x) <- R(x, a)")]
        path = save_queries(workload, tmp_path / "workload.json")
        assert load_queries(path) == workload

    def test_dump_and_load_json(self, tmp_path):
        path = dump_json({"kind": "workload", "queries": []}, tmp_path / "empty.json")
        assert load_json(path) == {"kind": "workload", "queries": []}

    def test_load_queries_rejects_other_documents(self, tmp_path):
        path = dump_json({"kind": "something_else"}, tmp_path / "bad.json")
        with pytest.raises(SerializationError):
            load_queries(path)

    def test_load_json_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_json(path)
