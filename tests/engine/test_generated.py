"""Unit tests for the generated backend: codegen, replanning, lazy results."""

import pickle

import pytest

from repro.engine import EngineCache, GeneratedBackend, get_backend
from repro.engine.codegen import MODES, compile_suffix
from repro.engine.generated import _LazySubstitution
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution
from repro.relational.terms import Constant, Variable

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a, b, k = Constant("a"), Constant("b"), Constant("k")


def fresh_backend(**kwargs) -> GeneratedBackend:
    return GeneratedBackend(cache=EngineCache(), **kwargs)


def _replan_flip_case():
    """A workload whose live statistics invert the compile-time suffix order.

    The driver loop runs the 100-row ``R`` bucket.  At compile time the
    static fail-first guess prices ``S`` (150 rows) below ``T`` (200 rows),
    so the suffix is S-then-T — but every probe actually hits ``S``'s hot
    key (120 candidates) while ``T`` returns a single row, so the replanner
    must flip the suffix to T-then-S mid-execution.
    """
    source = [Atom("R", (x, y)), Atom("S", (y, z)), Atom("T", (y, w))]
    target = (
        [Atom("R", (Constant(f"a{i}"), k)) for i in range(100)]
        + [Atom("S", (k, Constant(f"m{j}"))) for j in range(120)]
        + [Atom("S", (Constant(f"d{j}"), Constant(f"e{j}"))) for j in range(30)]
        + [Atom("T", (k, Constant("w0")))]
        + [Atom("T", (Constant(f"t{j}"), Constant(f"u{j}"))) for j in range(199)]
    )
    return source, target, 100 * 120 * 1


def _replan_confirm_case():
    """Diverged statistics that *confirm* the current order (no reorder)."""
    source = [Atom("R", (x, y)), Atom("S", (y, z)), Atom("T", (y, w))]
    target = (
        [Atom("R", (Constant(f"a{i}"), k)) for i in range(100)]
        + [Atom("S", (k, Constant(f"m{j}"))) for j in range(2)]
        + [Atom("S", (Constant(f"d{j}"), Constant(f"e{j}"))) for j in range(198)]
        + [Atom("T", (k, Constant(f"w{j}"))) for j in range(3)]
        + [Atom("T", (Constant(f"t{j}"), Constant(f"u{j}"))) for j in range(397)]
    )
    return source, target, 100 * 2 * 3


class TestCodegen:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError):
            compile_suffix((), "minimize", 0)

    def test_compiled_functions_carry_their_source(self):
        for mode in MODES:
            function = compile_suffix((), mode, 2)
            assert "def _run(" in function.__source__

    def test_duplicate_fresh_variables_become_row_checks(self):
        # S(y, y) inside one atom: both occurrences come from the same row.
        backend = fresh_backend()
        source = [Atom("R", (x,)), Atom("S", (x, y, y))]
        target = [
            Atom("R", (a,)),
            Atom("S", (a, b, b)),
            Atom("S", (a, b, k)),  # mismatched duplicate: must be filtered
        ]
        naive = get_backend("naive")
        assert backend.count(source, target) == naive.count(source, target) == 1

    def test_modes_agree_on_a_joined_source(self):
        backend = fresh_backend()
        naive = get_backend("naive")
        source = [Atom("R", (x, y)), Atom("S", (y, z))]
        target = [Atom("R", (a, b)), Atom("S", (b, k)), Atom("S", (b, b))]
        count = naive.count(source, target)
        assert backend.count(source, target) == count
        assert backend.exists(source, target) == (count > 0)
        assert len(list(backend.iterate(source, target))) == count


class TestLazySubstitution:
    def test_fast_path_yields_lazy_substitutions(self):
        backend = fresh_backend()
        source = [Atom("R", (x, y))]
        target = [Atom("R", (a, b)), Atom("R", (b, k))]
        solutions = list(backend.iterate(source, target))
        assert len(solutions) == 2
        assert all(isinstance(s, _LazySubstitution) for s in solutions)
        assert {s[x] for s in solutions} == {a, b}

    def test_lazy_substitutions_behave_like_eager_ones(self):
        backend = fresh_backend()
        (solution,) = backend.iterate([Atom("R", (x, y))], [Atom("R", (a, b))])
        eager = Substitution({x: a, y: b})
        assert solution == eager
        assert hash(solution) == hash(eager)
        assert dict(solution) == {x: a, y: b}
        assert solution.apply_atom(Atom("S", (x, y))) == Atom("S", (a, b))

    def test_lazy_substitutions_pickle_as_plain_substitutions(self):
        backend = fresh_backend()
        (solution,) = backend.iterate([Atom("R", (x, y))], [Atom("R", (a, b))])
        restored = pickle.loads(pickle.dumps(solution))
        assert type(restored) is Substitution
        assert restored == solution

    def test_identity_fixed_bindings_use_the_slow_path(self):
        # fixed={x: x} pins the slot to the variable's own id, which the
        # fast guard must reject; the result matches the naive reference.
        backend = fresh_backend()
        naive = get_backend("naive")
        source = [Atom("R", (x, y))]
        target = [Atom("R", (x, b)), Atom("R", (a, b))]
        for fixed in ({x: x}, {x: a}, {}):
            expected = sorted(map(repr, naive.iterate(source, target, fixed)))
            actual = sorted(map(repr, backend.iterate(source, target, fixed)))
            assert actual == expected, fixed

    def test_variable_targets_disable_fast_materialisation(self):
        backend = fresh_backend()
        # The target mentions x itself, so an identity image is possible
        # and the plan must not promise fast materialisation.
        plan = backend.plan([Atom("R", (x, y))], (Atom("R", (x, b)),), None)
        assert not plan.fast_materialise
        (solution,) = backend.iterate([Atom("R", (x, y))], [Atom("R", (x, b))])
        assert x not in solution  # identity binding x -> x is dropped
        assert solution[y] == b


class TestAdaptiveReplanning:
    def test_divergence_flips_the_suffix_order(self):
        source, target, expected = _replan_flip_case()
        backend = fresh_backend()
        assert backend.count(source, target) == expected
        checks, replans = backend.replan_events
        assert checks >= 1
        assert replans >= 1

    def test_replanning_never_changes_the_answer(self):
        source, target, expected = _replan_flip_case()
        replan_on = fresh_backend()
        replan_off = fresh_backend(replan_interval=10**9)
        naive = get_backend("naive")
        assert replan_on.count(source, target) == expected
        assert replan_off.count(source, target) == expected
        assert naive.count(source, target) == expected
        assert replan_on.replan_events[1] >= 1
        assert replan_off.replan_events == [0, 0]
        # Enumeration agrees as a multiset, replanning on or off.
        on = sorted(map(repr, replan_on.iterate(source, target)))
        off = sorted(map(repr, replan_off.iterate(source, target)))
        assert on == off

    def test_confirming_statistics_refresh_without_reordering(self):
        source, target, expected = _replan_confirm_case()
        backend = fresh_backend()
        assert backend.count(source, target) == expected
        checks, replans = backend.replan_events
        assert checks >= 1
        assert replans == 0  # live stats confirmed the compile-time order

    def test_threshold_gates_the_divergence_test(self):
        source, target, expected = _replan_flip_case()
        tolerant = fresh_backend(replan_threshold=1e9)
        assert tolerant.count(source, target) == expected
        assert tolerant.replan_events[1] == 0  # nothing diverges that far
        assert tolerant.replan_events[0] >= 1

    def test_describe_replanning_reports_the_counters(self):
        source, target, _ = _replan_flip_case()
        backend = fresh_backend()
        backend.count(source, target)
        description = backend.describe_replanning()
        assert "replan checks:" in description
        assert "replans triggered:" in description
        assert "interval 64 rows" in description


class TestParallelRehydration:
    def test_session_spec_rehydrates_generated_workers(self):
        from repro.parallel import merged_cache_stats
        from repro.session import Session
        from repro.workloads.scale import mixed_requests

        requests = mixed_requests(6, seed=3, verify_certificates=False)
        serial_outcomes = list(Session(backend="generated").batch(requests))
        parallel_session = Session(backend="generated")
        assert parallel_session.spec().backend == "generated"
        parallel_outcomes = list(
            parallel_session.batch(requests, jobs=2, chunk_size=2)
        )
        # Byte-identical outcome stream: verdicts, certificates, errors,
        # merged cache statistics.
        assert [o.verdict for o in parallel_outcomes] == [
            o.verdict for o in serial_outcomes
        ]
        assert [o.certificate for o in parallel_outcomes] == [
            o.certificate for o in serial_outcomes
        ]
        assert [o.error for o in parallel_outcomes] == [o.error for o in serial_outcomes]
        assert merged_cache_stats(parallel_outcomes) == merged_cache_stats(
            serial_outcomes
        )
