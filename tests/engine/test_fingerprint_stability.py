"""Cross-process stability of the persistent digest (satellite of the warm-start work).

Python randomizes string hashes per process, so frozenset/dict iteration
order — and therefore any serialization that walks containers naively —
differs between processes.  ``persistent_digest`` must not: the persistent
cache keys rows by it, and an unstable digest would turn every warm start
into a silent cold start (or, with a collision, serve the wrong row).

The regression test here round-trips real cache-key structures through
subprocesses pinned to *different* ``PYTHONHASHSEED`` values and asserts
digest equality with the parent.
"""

import subprocess
import sys

import pytest

from repro.engine.fingerprints import (
    UnpersistableKeyError,
    persistent_digest,
)
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.terms import CanonicalConstant, Constant, Variable
from repro.session.session import Limits

x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")


def sample_keys():
    """Representative persistent-tier key structures."""
    query = parse_cq("q(x, y) <- R^2(x, y), P(y, x)")
    plan_key = (
        frozenset({Atom("R", (x, y)), Atom("P", (y, x))}),
        frozenset({Atom("R", (a, b)), Atom("R", (b, a)), Atom("P", (a, a))}),
        frozenset({x}),
    )
    result_key = (
        "count-exists",
        frozenset({Atom("R", (a, b))}),
        frozenset({Atom("R", (x, y))}),
        frozenset({(x, a)}),
        "count",
        "indexed",
    )
    return {
        "plan": plan_key,
        "result": result_key,
        "query": query,
        "limits": Limits(bounded_guess_max_candidates=123),
        "mixed": (None, True, False, 42, -3.5, "text", b"bytes", [1, (2, 3)], {a: {x, y}}),
        "canonical": CanonicalConstant("x0"),
    }


_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src_path!r})
from tests.engine.test_fingerprint_stability import sample_keys
from repro.engine.fingerprints import persistent_digest
for name, key in sorted(sample_keys().items()):
    print(name, persistent_digest(key))
"""


def _digests_in_subprocess(hash_seed: str) -> dict[str, str]:
    import os

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (os.path.abspath("src"), os.path.abspath("."), env.get("PYTHONPATH")) if path
    )
    output = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT.format(src_path=os.path.abspath("src"))],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return dict(line.split(" ", 1) for line in output.splitlines())


class TestCrossProcessStability:
    def test_digests_survive_hash_randomization(self):
        local = {name: persistent_digest(key) for name, key in sample_keys().items()}
        for seed in ("1", "31337"):
            remote = _digests_in_subprocess(seed)
            assert remote == local, f"digest drift under PYTHONHASHSEED={seed}"

    def test_two_differently_seeded_subprocesses_agree(self):
        assert _digests_in_subprocess("7") == _digests_in_subprocess("4242")


class TestDigestSemantics:
    def test_set_digest_ignores_construction_order(self):
        forward = frozenset([Atom("R", (a, b)), Atom("R", (b, a)), Atom("P", (x, y))])
        backward = frozenset([Atom("P", (x, y)), Atom("R", (b, a)), Atom("R", (a, b))])
        assert persistent_digest(forward) == persistent_digest(backward)

    def test_dict_digest_ignores_insertion_order(self):
        assert persistent_digest({"p": 1, "q": 2}) == persistent_digest({"q": 2, "p": 1})

    def test_distinct_structures_get_distinct_digests(self):
        assert persistent_digest((1, 2)) != persistent_digest((2, 1))
        assert persistent_digest("1") != persistent_digest(1)
        assert persistent_digest(Variable("v")) != persistent_digest(Constant("v"))
        assert persistent_digest(frozenset({1, 2})) != persistent_digest((1, 2))

    def test_query_digest_distinguishes_renamed_copies(self):
        # Structural __eq__ ignores names, but memoised decision results
        # embed their queries (explain() prints the names), so the
        # persistent key must keep renamed copies apart.
        query = parse_cq("q(x) <- R(x, x)")
        assert persistent_digest(query) != persistent_digest(query.with_name("copy"))

    def test_unpersistable_components_raise(self):
        with pytest.raises(UnpersistableKeyError):
            persistent_digest(lambda: None)
        with pytest.raises(UnpersistableKeyError):
            persistent_digest((1, 2, object()))
