"""Unit tests for the interned data plane: dictionary, plans, backend."""

import pytest

from repro.engine import EngineCache, InternedBackend, create_backend, get_backend
from repro.engine.interning import ID_BITS, InternedTarget, TermDictionary, pack_ids
from repro.exceptions import ReproError
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def fresh_backend() -> InternedBackend:
    return InternedBackend(cache=EngineCache())


class TestTermDictionary:
    def test_ids_are_dense_and_stable(self):
        dictionary = TermDictionary()
        assert dictionary.intern(x) == 0
        assert dictionary.intern(a) == 1
        assert dictionary.intern(x) == 0  # repeated interning is a lookup
        assert dictionary.term(0) == x
        assert dictionary.term(1) == a
        assert len(dictionary) == 2

    def test_serials_are_unique(self):
        assert TermDictionary().serial != TermDictionary().serial

    def test_id_space_overflow_raises_at_the_boundary(self):
        from repro.exceptions import TermIdOverflowError

        dictionary = TermDictionary(id_bits=3)
        assert dictionary.capacity == 8
        terms = [Constant(f"c{i}") for i in range(9)]
        for term in terms[:8]:  # ids 0..7 fill the 3-bit window exactly
            dictionary.intern(term)
        assert len(dictionary) == 8
        with pytest.raises(TermIdOverflowError) as excinfo:
            dictionary.intern(terms[8])
        error = excinfo.value
        assert error.id_bits == 3
        assert error.capacity == 8
        assert error.term == terms[8]
        assert isinstance(error, ReproError)
        # The failed intern must not have grown or corrupted the dictionary.
        assert len(dictionary) == 8
        assert dictionary.lookup(terms[8]) is None
        assert dictionary.intern(terms[0]) == 0  # existing ids still resolve

    def test_default_dictionary_bound_matches_pack_window(self):
        dictionary = TermDictionary()
        assert dictionary.id_bits == ID_BITS
        assert dictionary.capacity == 1 << ID_BITS

    def test_rejects_nonpositive_id_bits(self):
        with pytest.raises(ValueError):
            TermDictionary(id_bits=0)

    def test_lookup_never_interns(self):
        dictionary = TermDictionary()
        assert dictionary.lookup(x) is None
        assert len(dictionary) == 0
        dictionary.intern(x)
        assert dictionary.lookup(x) == 0

    def test_pack_ids_is_positional(self):
        assert pack_ids([7]) == 7
        assert pack_ids([1, 2]) == (1 << ID_BITS) | 2
        assert pack_ids([1, 2]) != pack_ids([2, 1])


class TestInternedTarget:
    def test_columnar_layout_and_group_index(self):
        dictionary = TermDictionary()
        target = InternedTarget(dictionary, [Atom("R", (a, b)), Atom("R", (a, c)), Atom("S", (b,))])
        assert target.relation_sizes() == {("R", 2): 2, ("S", 1): 1}
        assert len(target.rows("R", 2)) == 2
        # Selectivity is unknown until the signature index is built...
        assert target.selectivity("R", 2, (0,)) is None
        index = target.group_index("R", 2, (0,))
        # ...after which it reports average candidates per probe: 2 rows, 1 group.
        assert target.selectivity("R", 2, (0,)) == 2.0
        assert index[dictionary.intern(a)] == (
            (dictionary.intern(a), dictionary.intern(b)),
            (dictionary.intern(a), dictionary.intern(c)),
        )

    def test_duplicate_atoms_are_deduplicated(self):
        target = InternedTarget(TermDictionary(), [Atom("R", (a, b)), Atom("R", (a, b))])
        assert len(target) == 1
        assert len(target.rows("R", 2)) == 1


class TestPlanShapes:
    def test_projection_free_fold_compiles_to_static_filters_only(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)), Atom("R", (y, x)))
        target = (Atom("R", (a, b)), Atom("R", (b, a)))
        plan = backend.plan(source, target, {x: a, y: b})
        assert plan.static_steps and not plan.steps
        assert backend.count(source, target, {x: a, y: b}) == 1

    def test_existential_variables_stay_in_the_search(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)), Atom("R", (x, z)))  # z is existential
        target = (Atom("R", (a, b)), Atom("R", (a, c)))
        plan = backend.plan(source, target, {x: a, y: b})
        assert len(plan.static_steps) == 1
        assert len(plan.steps) == 1
        assert backend.count(source, target, {x: a, y: b}) == 2
        assert "static filters" in plan.describe()

    def test_observed_selectivity_orders_cheaper_signatures_first(self):
        backend = fresh_backend()
        # A target where R-probes on position 0 return many candidates but
        # S-probes return exactly one.
        target = tuple(Atom("R", (a, Constant(f"v{i}"))) for i in range(8)) + (Atom("S", (a, b)),)
        source = (Atom("R", (x, y)), Atom("S", (x, z)))
        backend.count(source, target, {x: a})  # builds both signature indexes
        plan = backend.plan((Atom("R", (x, y)), Atom("S", (x, y))), target, {x: a})
        # With observed selectivity (R: 8 per probe, S: 1 per probe) the S
        # atom must be scheduled before the R atom.
        first = (plan.static_steps + plan.steps)[0]
        assert first.atom.relation == "S"

    def test_check_fixed_contract_matches_the_indexed_plan(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        plan = backend.plan(source, target, {x: a})
        with pytest.raises(ReproError):  # missing compiled fixed binding
            plan.check_fixed({})
        with pytest.raises(ReproError):  # unplanned source-variable binding
            plan.check_fixed({x: a, y: b})
        # Extra bindings for non-source variables ride along.
        [substitution] = list(backend.iterate(source, target, {x: a, z: c}))
        assert substitution[z] == c
        assert substitution[y] == b


class TestBackendBehaviour:
    def test_registered_and_session_visible(self):
        from repro.engine import backend_names
        from repro.session import Session

        assert "interned" in backend_names()
        assert isinstance(get_backend("interned"), InternedBackend)
        session = Session(backend="interned")
        outcome = session.decide(
            *__import__("repro.verify.corpus", fromlist=["builtin_pairs"]).builtin_pairs()[0]
        )
        assert outcome.verdict is not None

    def test_identity_memo_hits_on_stable_tuples(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        first = backend.plan(source, target, {x: a})
        assert backend.plan(source, target, {x: a}) is first
        # A logically equal triple under a fresh identity shares the
        # underlying fingerprint-keyed plan.
        assert backend.plan(tuple(source), tuple(target), {x: a}) is first

    def test_invalidate_drops_interned_entries(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        other = (Atom("S", (a, b)),)
        assert backend.count(source, target) == 1
        backend.count((Atom("S", (x, y)),), other)
        dropped = backend.cache.invalidate(target)
        assert dropped >= 3  # the target's index, plan and result entries
        # The unrelated target's result memo survives and still hits.
        hits_before = backend.cache.result_stats.hits
        assert backend.count((Atom("S", (x, y)),), other) == 1
        assert backend.cache.result_stats.hits == hits_before + 1

    def test_result_memos_are_backend_private(self):
        # Two backends sharing one cache must not serve each other's
        # count/exists results — the differential oracle depends on it.
        cache = EngineCache()
        indexed = create_backend("indexed", cache)
        interned = create_backend("interned", cache)
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)), Atom("R", (a, c)))
        assert indexed.count(source, target) == 2
        misses_before = cache.result_stats.misses
        assert interned.count(source, target) == 2
        assert cache.result_stats.misses == misses_before + 1  # not a shared hit

    def test_selectivity_counters_accumulate_and_describe(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)), Atom("R", (a, c)))
        list(backend.iterate(source, target, {x: a}))
        key = ("R", 2, (0,))
        probes, candidates = backend.selectivity[key]
        assert probes >= 1 and candidates >= 2
        rendered = backend.describe_selectivity()
        assert "R/2[0]" in rendered
        assert InternedBackend(cache=EngineCache()).describe_selectivity() == (
            "no signature probes recorded"
        )

    def test_arity_zero_atoms(self):
        backend = fresh_backend()
        assert backend.count((Atom("R", ()),), (Atom("R", ()),)) == 1
        assert backend.count((Atom("R", ()),), (Atom("S", ()),)) == 0


class TestParallelRehydration:
    def test_session_spec_rehydrates_interned_workers(self):
        from repro.session import Session
        from repro.workloads.scale import mixed_requests

        requests = mixed_requests(6, seed=3, verify_certificates=False)
        serial = [outcome.verdict for outcome in Session(backend="interned").batch(requests)]
        parallel_session = Session(backend="interned")
        assert parallel_session.spec().backend == "interned"
        parallel = [
            outcome.verdict
            for outcome in parallel_session.batch(requests, jobs=2, chunk_size=2)
        ]
        assert parallel == serial
