"""Unit tests for the engine cache, fingerprints, and backend selection."""

import pytest

from repro.engine import (
    EngineCache,
    IndexedBackend,
    NaiveBackend,
    get_backend,
    get_default_backend,
    query_fingerprint,
    set_default_backend,
    use_backend,
)
from repro.exceptions import ReproError
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestEngineCache:
    def test_plan_reuse_counts_as_hit(self):
        cache = EngineCache()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        first = cache.plan(source, target, frozenset())
        second = cache.plan(source, target, frozenset())
        assert first is second
        assert cache.plan_stats.hits == 1
        assert cache.plan_stats.misses == 1

    def test_different_fixed_sets_get_different_plans(self):
        cache = EngineCache()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        unfixed = cache.plan(source, target, frozenset())
        fixed = cache.plan(source, target, frozenset({x}))
        assert unfixed is not fixed

    def test_target_index_is_shared_across_sources(self):
        cache = EngineCache()
        target = (Atom("R", (a, b)),)
        plan_one = cache.plan((Atom("R", (x, y)),), target, frozenset())
        plan_two = cache.plan((Atom("R", (x, x)),), target, frozenset())
        assert plan_one.index is plan_two.index

    def test_result_memoisation(self):
        cache = EngineCache()
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cache.result(("count", "key"), compute) == 7
        assert cache.result(("count", "key"), compute) == 7
        assert len(calls) == 1
        assert cache.result_stats.hits == 1

    def test_invalidate_by_target(self):
        cache = EngineCache()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        other = (Atom("R", (b, a)),)
        cache.plan(source, target, frozenset())
        cache.plan(source, other, frozenset())
        dropped = cache.invalidate(target)
        assert dropped == 2  # the plan and its index
        cache.plan(source, other, frozenset())
        assert cache.plan_stats.hits == 1  # the untouched target still hits

    def test_invalidate_everything(self):
        cache = EngineCache()
        cache.plan((Atom("R", (x, y)),), (Atom("R", (a, b)),), frozenset())
        assert cache.invalidate() >= 1
        cache.plan((Atom("R", (x, y)),), (Atom("R", (a, b)),), frozenset())
        assert cache.plan_stats.misses == 2

    def test_lru_eviction(self):
        cache = EngineCache(max_plans=2)
        targets = [(Atom("R", (Constant(f"c{i}"), b)),) for i in range(3)]
        for target in targets:
            cache.plan((Atom("R", (x, y)),), target, frozenset())
        assert cache.plan_stats.evictions == 1

    def test_describe_reports_all_layers(self):
        cache = EngineCache()
        text = cache.describe()
        assert "plans" in text and "indexes" in text and "results" in text


class TestQueryFingerprint:
    def test_invariant_under_renaming(self):
        q1 = parse_cq("q(x) <- R(x, y), S(y)")
        q2 = parse_cq("q(u) <- R(u, v), S(v)")
        assert query_fingerprint(q1) == query_fingerprint(q2)

    def test_distinguishes_structure(self):
        q1 = parse_cq("q(x) <- R(x, y)")
        q2 = parse_cq("q(x) <- R(x, x)")
        assert query_fingerprint(q1) != query_fingerprint(q2)

    def test_distinguishes_multiplicities(self):
        q1 = parse_cq("q(x) <- R(x, y)")
        q2 = parse_cq("q(x) <- R^2(x, y)")
        assert query_fingerprint(q1) != query_fingerprint(q2)

    def test_invariant_under_renamings_that_reorder_tied_atoms(self):
        # The swap x<->y reverses the name-based atom order; the canonical
        # search must still land on one fingerprint for the class.
        q1 = parse_cq("q(x) <- R(x, y), R(y, x)")
        q2 = q1.rename_variables({Variable("x"): Variable("b"), Variable("y"): Variable("a")})
        assert query_fingerprint(q1) == query_fingerprint(q2)
        q3 = parse_cq("q(u) <- R(y, u), R(z, u), R(z, x)")
        q4 = q3.rename_variables(
            {Variable("y"): Variable("z"), Variable("z"): Variable("y")}
        )
        assert query_fingerprint(q3) == query_fingerprint(q4)


class TestBackendSelection:
    def test_registry(self):
        assert isinstance(get_backend("naive"), NaiveBackend)
        assert isinstance(get_backend("indexed"), IndexedBackend)
        with pytest.raises(ReproError):
            get_backend("quantum")

    def test_default_backend_is_indexed(self):
        assert get_default_backend().name == "indexed"

    def test_use_backend_restores_the_previous_default(self):
        assert get_default_backend().name == "indexed"
        with use_backend("naive") as backend:
            assert backend.name == "naive"
            assert get_default_backend().name == "naive"
        assert get_default_backend().name == "indexed"

    def test_set_default_backend_returns_previous(self):
        previous = set_default_backend("naive")
        try:
            assert previous == "indexed"
            assert get_default_backend().name == "naive"
        finally:
            set_default_backend(previous)

    def test_set_default_backend_rejects_unknown(self):
        with pytest.raises(ReproError):
            set_default_backend("quantum")


class TestBackendAgreement:
    SOURCE = [Atom("R", (x, y)), Atom("R", (y, z))]
    TARGET = [Atom("R", (a, b)), Atom("R", (b, a)), Atom("R", (b, b))]

    def test_iterate_agrees(self):
        naive = sorted(repr(s) for s in get_backend("naive").iterate(self.SOURCE, self.TARGET))
        indexed = sorted(repr(s) for s in get_backend("indexed").iterate(self.SOURCE, self.TARGET))
        assert naive == indexed

    def test_count_and_exists_agree(self):
        naive = get_backend("naive")
        indexed = get_backend("indexed")
        assert naive.count(self.SOURCE, self.TARGET) == indexed.count(self.SOURCE, self.TARGET)
        assert naive.exists(self.SOURCE, self.TARGET) == indexed.exists(self.SOURCE, self.TARGET)
