"""Idempotent worker-delta absorption (satellite of the warm-start work).

``EngineCache.absorb_delta`` folds worker cache deltas into the parent's
statistics.  A chunk retried after a worker failure (or a caller replaying
the same delta) used to double-count: the merged statistics then claimed
more cache traffic than the fleet performed, which poisons every
hit-rate-based decision downstream.  Absorption is now idempotent per
token, and the parallel batch path tags every chunk.
"""

from repro.engine import EngineCache, merge_snapshots


DELTA = {"plans": (3, 2, 1), "results": (10, 5, 0)}


class TestTokenedAbsorption:
    def test_same_token_absorbs_once(self):
        cache = EngineCache()
        assert cache.absorb_delta(DELTA, token=("batch", 1, 0)) is True
        assert cache.absorb_delta(DELTA, token=("batch", 1, 0)) is False
        assert cache.plan_stats.hits == 3
        assert cache.plan_stats.misses == 2
        assert cache.plan_stats.evictions == 1
        assert cache.result_stats.hits == 10

    def test_distinct_tokens_both_absorb(self):
        cache = EngineCache()
        assert cache.absorb_delta(DELTA, token=("batch", 1, 0))
        assert cache.absorb_delta(DELTA, token=("batch", 1, 25))
        assert cache.plan_stats.hits == 6

    def test_none_token_keeps_the_legacy_unconditional_fold(self):
        cache = EngineCache()
        assert cache.absorb_delta(DELTA)
        assert cache.absorb_delta(DELTA)
        assert cache.plan_stats.hits == 6

    def test_retried_chunk_scenario_pins_merged_identity(self):
        # The fleet runs two chunks; chunk 0's delta arrives twice (retry).
        # The parent's statistics must equal the true two-chunk merge.
        cache = EngineCache()
        chunk0 = {"plans": (1, 4, 0), "results": (2, 2, 0)}
        chunk1 = {"plans": (0, 3, 0), "results": (5, 1, 0)}
        cache.absorb_delta(chunk0, token=("batch", 9, 0))
        cache.absorb_delta(chunk0, token=("batch", 9, 0))  # the retry's replay
        cache.absorb_delta(chunk1, token=("batch", 9, 25))
        expected = merge_snapshots([chunk0, chunk1])
        assert cache.snapshot() == {
            "plans": expected["plans"],
            "indexes": (0, 0, 0),
            "results": expected["results"],
        }

    def test_token_memory_is_bounded(self):
        cache = EngineCache()
        limit = EngineCache._MAX_ABSORB_TOKENS
        for index in range(limit + 10):
            cache.absorb_delta({"plans": (0, 0, 0)}, token=index)
        # The oldest tokens were forgotten; recent ones still dedupe.
        assert cache.absorb_delta({"plans": (1, 0, 0)}, token=limit + 9) is False
        assert cache.absorb_delta({"plans": (1, 0, 0)}, token=0) is True
