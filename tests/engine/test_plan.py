"""Unit tests for match-plan compilation (join templates and target indexes)."""

import pytest

from repro.engine.plan import TargetIndex, compile_plan, compile_template
from repro.exceptions import ReproError
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestCompileTemplate:
    def test_deduplicates_source_atoms(self):
        template = compile_template([Atom("R", (x, y)), Atom("R", (x, y))])
        assert template.num_steps == 1

    def test_every_source_atom_is_scheduled_once(self):
        source = [Atom("R", (x, y)), Atom("S", (y, z)), Atom("T", (z,))]
        template = compile_template(source)
        assert sorted(str(step.atom) for step in template.steps) == sorted(str(atom) for atom in source)

    def test_fixed_variables_count_as_bound(self):
        template = compile_template([Atom("R", (x, y))], fixed_variables=[x])
        (step,) = template.steps
        assert step.signature == (0,)
        assert [variable for _, variable in step.new_var_positions] == [y]

    def test_constants_count_as_bound(self):
        template = compile_template([Atom("R", (a, y))])
        (step,) = template.steps
        assert step.signature == (0,)

    def test_later_steps_see_earlier_bindings(self):
        # Whatever order is chosen for a chain, the second step must have the
        # shared variable in its signature.
        template = compile_template([Atom("R", (x, y)), Atom("R", (y, z))])
        second = template.steps[1]
        assert second.signature, "the join variable of the second step should be bound"

    def test_fail_first_prefers_smaller_relations(self):
        sizes = {("Big", 2): 100, ("Small", 2): 1}
        template = compile_template(
            [Atom("Big", (x, y)), Atom("Small", (x, y))], relation_sizes=sizes
        )
        assert template.steps[0].relation == "Small"

    def test_describe_mentions_every_step(self):
        template = compile_template([Atom("R", (x, y)), Atom("S", (y, z))])
        text = template.describe()
        assert "step 0" in text and "step 1" in text


class TestTargetIndex:
    def test_buckets_by_relation_and_arity(self):
        index = TargetIndex([Atom("R", (a, b)), Atom("R", (a,)), Atom("S", (b, c))])
        assert len(index.bucket("R", 2)) == 1
        assert len(index.bucket("R", 1)) == 1
        assert len(index.bucket("S", 2)) == 1
        assert len(index.bucket("R", 3)) == 0

    def test_signature_lookup(self):
        index = TargetIndex([Atom("R", (a, b)), Atom("R", (a, c)), Atom("R", (b, c))])
        hits = index.candidates("R", 2, (0,), (a,))
        assert {atom.terms[1] for atom in hits} == {b, c}
        assert index.candidates("R", 2, (0,), (c,)) == ()

    def test_empty_signature_returns_full_bucket(self):
        index = TargetIndex([Atom("R", (a, b)), Atom("R", (b, c))])
        assert len(index.candidates("R", 2, (), ())) == 2

    def test_deduplicates_target_atoms(self):
        index = TargetIndex([Atom("R", (a, b)), Atom("R", (a, b))])
        assert len(index) == 1


class TestMatchPlan:
    def test_describe_includes_target_statistics(self):
        plan = compile_plan([Atom("R", (x, y))], [Atom("R", (a, b))])
        assert "R/2:1" in plan.describe()

    def test_rejects_unplanned_fixed_bindings(self):
        plan = compile_plan([Atom("R", (x, y))], [Atom("R", (a, b))])
        with pytest.raises(ReproError):
            plan.check_fixed({x: a})

    def test_accepts_planned_and_foreign_fixed_bindings(self):
        plan = compile_plan([Atom("R", (x, y))], [Atom("R", (a, b))], fixed_variables=[x])
        plan.check_fixed({x: a})
        # Bindings for variables outside the source ride along harmlessly.
        plan.check_fixed({x: a, Variable("unrelated"): b})

    def test_rejects_missing_planned_fixed_bindings(self):
        from repro.engine.executor import execute_count

        plan = compile_plan([Atom("R", (x, y))], [Atom("R", (a, b))], fixed_variables=[x])
        with pytest.raises(ReproError):
            execute_count(plan)
