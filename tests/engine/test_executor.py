"""Unit tests for the iterative executor: modes, stats, and early exit."""

from repro.engine import get_backend
from repro.engine.executor import (
    ExecutionStats,
    execute_count,
    execute_exists,
    execute_iterate,
)
from repro.engine.plan import compile_plan
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def _path_facts(n: int) -> list[Atom]:
    nodes = [Constant(f"n{i}") for i in range(n + 1)]
    return [Atom("R", (nodes[i], nodes[i + 1])) for i in range(n)]


class TestModes:
    def test_iterate_yields_substitutions_with_fixed_included(self):
        plan = compile_plan([Atom("R", (x, y))], [Atom("R", (a, b))], fixed_variables=[x])
        (solution,) = list(execute_iterate(plan, {x: a}))
        assert solution.apply_term(x) == a
        assert solution.apply_term(y) == b

    def test_count_matches_iterate(self):
        facts = _path_facts(6)
        plan = compile_plan([Atom("R", (x, y)), Atom("R", (y, z))], facts)
        assert execute_count(plan) == len(list(execute_iterate(plan))) == 5

    def test_exists_on_empty_target(self):
        plan = compile_plan([Atom("R", (x, y))], [])
        assert execute_exists(plan) is False
        assert execute_count(plan) == 0

    def test_empty_source_yields_the_fixed_bindings_once(self):
        plan = compile_plan([], [Atom("R", (a, b))])
        solutions = list(execute_iterate(plan, {x: a}))
        assert len(solutions) == 1
        assert solutions[0].apply_term(x) == a

    def test_repeated_variable_within_atom(self):
        plan = compile_plan([Atom("R", (x, x))], [Atom("R", (a, b)), Atom("R", (b, b))])
        (solution,) = list(execute_iterate(plan))
        assert solution.apply_term(x) == b


class TestEarlyExit:
    def test_exists_stops_at_the_first_solution(self):
        # 50 facts, 50 solutions: exists must not visit them all.
        facts = [Atom("R", (Constant(f"u{i}"), Constant(f"v{i}"))) for i in range(50)]
        plan = compile_plan([Atom("R", (x, y))], facts)
        stats = ExecutionStats()
        assert execute_exists(plan, stats=stats)
        assert stats.candidates_tried == 1
        assert stats.solutions_found == 1

    def test_count_visits_everything(self):
        facts = [Atom("R", (Constant(f"u{i}"), Constant(f"v{i}"))) for i in range(50)]
        plan = compile_plan([Atom("R", (x, y))], facts)
        stats = ExecutionStats()
        assert execute_count(plan, stats=stats) == 50
        assert stats.candidates_tried == 50

    def test_has_homomorphism_routes_through_exists_mode(self):
        """Regression: ``has_homomorphism`` must not enumerate all solutions.

        The pre-engine implementation built full substitutions and took the
        first; with a join producing quadratically many homomorphisms the
        exists mode must touch a bounded prefix of the search only.
        """
        from repro.evaluation.homomorphisms import count_homomorphisms, has_homomorphism

        hub = Constant("hub")
        facts = [Atom("R", (hub, Constant(f"s{i}"))) for i in range(40)]
        facts += [Atom("S", (hub, Constant(f"t{i}"))) for i in range(40)]
        source = [Atom("R", (x, y)), Atom("S", (x, z))]

        backend = get_backend("indexed")
        assert backend.stats is not None
        before = backend.stats.candidates_tried
        assert has_homomorphism(source, facts)
        tried = backend.stats.candidates_tried - before
        # 1600 homomorphisms exist; the early exit needs one per join level.
        assert count_homomorphisms(source, facts) == 1600
        assert tried <= len(source) + 1


class TestStats:
    def test_merge_accumulates(self):
        first = ExecutionStats(candidates_tried=2, solutions_found=1, executions=1)
        second = ExecutionStats(candidates_tried=3, solutions_found=0, executions=1)
        first.merge(second)
        assert (first.candidates_tried, first.solutions_found, first.executions) == (5, 1, 2)
