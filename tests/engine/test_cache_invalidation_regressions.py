"""Regression tests: memoised results vs invalidation, and stats under batch APIs.

These pin two behaviours the fuzz runner's stats aggregation relies on:

* ``EngineCache.invalidate(target)`` must be *surgical* — memoised
  ``count``/``exists`` entries (and plans/indexes) for **other** targets
  must survive and keep hitting;
* the batch APIs must account their cache traffic in the same counters the
  one-shot APIs use, so ``snapshot()`` deltas mean the same thing
  everywhere.
"""

from repro.engine import (
    EngineCache,
    IndexedBackend,
    count_many,
    evaluate_bag_many,
    merge_snapshots,
    snapshot_delta,
)
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant, Variable

x, y = Variable("x"), Variable("y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def fresh_backend() -> IndexedBackend:
    return IndexedBackend(cache=EngineCache())


class TestMemoisedResultsSurviveUnrelatedInvalidation:
    def test_count_memo_survives_invalidating_another_target(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)), Atom("R", (b, c)))
        unrelated = (Atom("R", (c, c)),)

        assert backend.count(source, target) == 2
        backend.count(source, unrelated)
        dropped = backend.cache.invalidate(unrelated)
        assert dropped >= 2  # the unrelated plan/index/result entries only

        hits_before = backend.cache.result_stats.hits
        assert backend.count(source, target) == 2
        assert backend.cache.result_stats.hits == hits_before + 1

    def test_exists_memo_survives_invalidating_another_target(self):
        backend = fresh_backend()
        source = (Atom("R", (x, x)),)
        target = (Atom("R", (a, a)),)
        unrelated = (Atom("S", (a, b)),)

        assert backend.exists(source, target)
        backend.exists(source, unrelated)
        backend.cache.invalidate(unrelated)

        hits_before = backend.cache.result_stats.hits
        assert backend.exists(source, target)
        assert backend.cache.result_stats.hits == hits_before + 1

    def test_invalidating_the_target_itself_forces_a_recompute(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        backend.count(source, target)
        backend.cache.invalidate(target)
        misses_before = backend.cache.result_stats.misses
        backend.count(source, target)
        assert backend.cache.result_stats.misses == misses_before + 1

    def test_plan_for_unrelated_target_still_hits_after_invalidate(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        unrelated = (Atom("R", (b, a)),)
        backend.plan(source, target)
        backend.plan(source, unrelated)
        backend.cache.invalidate(unrelated)
        hits_before = backend.cache.plan_stats.hits
        backend.plan(source, target)
        assert backend.cache.plan_stats.hits == hits_before + 1


class TestInvalidationCoversEveryLayer:
    """No stale verdict survives an instance mutation — in *any* layer.

    The interned backend stores its entries through the generic
    ``index_entry``/``plan_entry`` hooks and tags its result memos with the
    backend name; a targeted invalidation must sweep those exactly like the
    classic entries, and propagate to an attached persistent store
    (covered in ``test_persist.py``).
    """

    def test_interned_backend_entries_are_swept(self):
        from repro.engine.backends import InternedBackend

        cache = EngineCache()
        backend = InternedBackend(cache=cache)
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)), Atom("R", (b, c)))
        unrelated = (Atom("R", (c, c)),)
        assert backend.count(source, target) == 2
        backend.count(source, unrelated)

        dropped = cache.invalidate(target)
        # The target's interned index entry, plan entry and result memo.
        assert dropped >= 3

        # The invalidated target recomputes (miss), the unrelated one hits.
        misses_before = cache.result_stats.misses
        assert backend.count(source, target) == 2
        assert cache.result_stats.misses == misses_before + 1
        hits_before = cache.result_stats.hits
        backend.count(source, unrelated)
        assert cache.result_stats.hits == hits_before + 1

    def test_exotic_plan_entry_keys_do_not_crash_the_sweep(self):
        # Regression: the plans-layer predicate indexed key[1] blindly.
        cache = EngineCache()
        cache.plan_entry("not-a-tuple", lambda: "entry")
        cache.plan_entry((42,), lambda: "entry")
        assert cache.invalidate((Atom("R", (a, b)),)) == 0


class TestStatsCountersUnderBatchApis:
    def test_count_many_reuses_one_plan(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)), Atom("R", (a, c)))
        fixed_list = [{x: a}, {x: b}, {x: c}]
        counts = count_many(source, target, fixed_list, backend=backend)
        assert counts == (2, 0, 0)
        # One plan compilation, shared across the whole sweep.
        assert backend.cache.plan_stats.misses == 1
        assert backend.cache.plan_stats.hits == 0

    def test_evaluate_bag_many_enumerates_once(self):
        backend = fresh_backend()
        query = parse_cq("q(x) <- R(x, y)")
        bags = [
            BagInstance({Atom("R", (a, b)): 1}),
            BagInstance({Atom("R", (a, b)): 2}),
            BagInstance({Atom("R", (a, b)): 5}),
        ]
        before = backend.cache.snapshot()
        answers = evaluate_bag_many(query, bags, backend=backend)
        assert [answer[(a,)] for answer in answers] == [1, 2, 5]
        delta = snapshot_delta(backend.cache.snapshot(), before)
        plan_hits, plan_misses, _ = delta["plans"]
        assert plan_misses == 1  # one shared enumeration, not one per bag
        assert plan_hits == 0

    def test_snapshot_delta_and_merge(self):
        backend = fresh_backend()
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)
        before = backend.cache.snapshot()
        backend.count(source, target)
        backend.count(source, target)
        delta = snapshot_delta(backend.cache.snapshot(), before)
        assert delta["results"] == (1, 1, 0)
        merged = merge_snapshots([delta, delta])
        assert merged["results"] == (2, 2, 0)
        assert merge_snapshots([]) == {}
