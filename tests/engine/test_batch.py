"""Unit tests for the batch entry points (shared-plan sweeps)."""

import pytest

from repro.core.probe_tuples import iter_probe_tuples
from repro.engine import (
    BagBatchEvaluator,
    containment_mappings_many,
    count_many,
    evaluate_bag_many,
    use_backend,
)
from repro.evaluation.bag_evaluation import bag_multiplicity, evaluate_bag
from repro.evaluation.homomorphisms import containment_mappings_to_ground
from repro.exceptions import ReproError
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestCountMany:
    TARGET = [Atom("R", (a, b)), Atom("R", (a, c)), Atom("R", (b, c))]

    def test_matches_individual_counts(self):
        source = [Atom("R", (x, y))]
        fixed_list = [{x: a}, {x: b}, {x: c}]
        counts = count_many(source, self.TARGET, fixed_list)
        assert counts == (2, 1, 0)

    def test_empty_batch(self):
        assert count_many([Atom("R", (x, y))], self.TARGET, []) == ()

    def test_rejects_heterogeneous_fixed_sets(self):
        with pytest.raises(ReproError):
            count_many([Atom("R", (x, y))], self.TARGET, [{x: a}, {y: b}])

    def test_naive_backend_path(self):
        source = [Atom("R", (x, y))]
        with use_backend("naive"):
            counts = count_many(source, self.TARGET, [{x: a}, {x: b}])
        assert counts == (2, 1)


class TestContainmentMappingsMany:
    def test_matches_per_probe_enumeration(self):
        containee = parse_cq("q1(x1, x2) <- R^2(x1, x2), R(c1, x2), R^3(x1, c2)")
        containing = parse_cq("q2(x1, x2) <- R^3(x1, x2), R^2(x1, y1), R^2(y2, y1)")
        probes = list(iter_probe_tuples(containee))
        grounded = [(containee.ground(probe), probe) for probe in probes]
        batched = containment_mappings_many(containing, grounded)
        assert len(batched) == len(probes)
        for (grounded_query, probe), mappings in zip(grounded, batched):
            expected = sorted(
                repr(m) for m in containment_mappings_to_ground(containing, grounded_query, probe)
            )
            assert sorted(repr(m) for m in mappings) == expected

    def test_arity_mismatch_gives_empty_mappings(self):
        containee = parse_cq("q1(x) <- R(x, x)")
        containing = parse_cq("q2(x, y) <- R(x, y)")
        probe = next(iter_probe_tuples(containee))
        (mappings,) = containment_mappings_many(containing, [(containee.ground(probe), probe)])
        assert mappings == ()


class TestBagBatchEvaluator:
    QUERY = parse_cq("q(x) <- R(x, y), S(y)")
    FACTS = [Atom("R", (a, b)), Atom("R", (c, b)), Atom("S", (b,))]

    def bags(self):
        return [
            BagInstance({self.FACTS[0]: 2, self.FACTS[1]: 1, self.FACTS[2]: 3}),
            BagInstance({self.FACTS[0]: 1, self.FACTS[2]: 1}),  # support subset
            BagInstance({fact: 5 for fact in self.FACTS}),
        ]

    def test_evaluate_matches_reference(self):
        evaluator = BagBatchEvaluator(self.QUERY, self.FACTS)
        for bag in self.bags():
            assert evaluator.evaluate(bag) == evaluate_bag(self.QUERY, bag)

    def test_multiplicity_matches_reference(self):
        evaluator = BagBatchEvaluator(self.QUERY, self.FACTS, answer=(a,))
        for bag in self.bags():
            assert evaluator.multiplicity(bag) == bag_multiplicity(self.QUERY, bag, (a,))

    def test_arity_mismatch_means_zero(self):
        evaluator = BagBatchEvaluator(self.QUERY, self.FACTS, answer=(a, b))
        assert evaluator.num_homomorphisms == 0
        assert evaluator.multiplicity(self.bags()[0]) == 0

    def test_inconsistent_answer_means_zero(self):
        query = parse_cq("q(x, x) <- R(x, x)")
        evaluator = BagBatchEvaluator(query, [Atom("R", (a, a))], answer=(a, b))
        assert evaluator.multiplicity(BagInstance({Atom("R", (a, a)): 2})) == 0


class TestEvaluateBagMany:
    def test_matches_per_bag_evaluation(self):
        query = parse_cq("q(x) <- R(x, y), S(y)")
        r_ab, r_cb, s_b = Atom("R", (a, b)), Atom("R", (c, b)), Atom("S", (b,))
        bags = [
            BagInstance({r_ab: 2, s_b: 3}),
            BagInstance({r_cb: 1, s_b: 1}),
            BagInstance({r_ab: 1, r_cb: 4, s_b: 2}),
        ]
        batched = evaluate_bag_many(query, bags)
        assert len(batched) == len(bags)
        for bag, answers in zip(bags, batched):
            assert answers == evaluate_bag(query, bag)

    def test_empty_batch(self):
        assert evaluate_bag_many(parse_cq("q(x) <- R(x, y)"), []) == ()
