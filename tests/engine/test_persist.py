"""The persistent cache tier: key discipline, corruption tolerance, invalidation.

The contract under test (see ``repro.engine.persist``): a row is served
only when *all four* key components match — structural digest, backend
name, limits fingerprint, schema version — and every storage-level
failure (garbage blobs, truncated files, a store that is not SQLite at
all) degrades to a *counted* miss, never a wrong answer or an exception.
"""

import pickle
import sqlite3

import pytest

from repro.engine import EngineCache, IndexedBackend
from repro.engine.persist import MISS, PersistentCache
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

x, y = Variable("x"), Variable("y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def classic_plan_key():
    source = frozenset({Atom("R", (x, y))})
    target = frozenset({Atom("R", (a, b)), Atom("R", (b, c))})
    return (source, target, frozenset())


def result_key(target):
    return ("count-exists", target, frozenset({Atom("R", (x, y))}), frozenset(), "count", "indexed")


class TestRoundTrip:
    def test_plan_row_round_trips(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db", backend="indexed")
        key = classic_plan_key()
        assert store.load("plans", key) is MISS
        assert store.stats.misses == 1
        assert store.store("plans", key, {"payload": 42})
        assert store.load("plans", key) == {"payload": 42}
        assert store.stats.hits == 1
        store.close()

    def test_rows_survive_reopening(self, tmp_path):
        path = tmp_path / "store.db"
        key = ("session", ("memo", "q1", "q2"))
        with PersistentCache(path) as first:
            first.store("results", key, "verdict")
        with PersistentCache(path) as second:
            assert second.load("results", key) == "verdict"

    def test_none_is_a_valid_cached_value(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        key = ("session", ("memo",))
        store.store("results", key, None)
        assert store.load("results", key) is None
        assert store.stats.hits == 1
        store.close()


class TestFingerprintComponentMismatchIsAMiss:
    def test_backend_mismatch(self, tmp_path):
        path = tmp_path / "store.db"
        key = classic_plan_key()
        with PersistentCache(path, backend="indexed") as writer:
            writer.store("plans", key, "indexed-plan")
        with PersistentCache(path, backend="interned") as reader:
            assert reader.load("plans", key) is MISS
            assert reader.stats.misses == 1

    def test_limits_mismatch(self, tmp_path):
        path = tmp_path / "store.db"
        key = ("session", ("memo",))
        with PersistentCache(path, limits_fingerprint="budget-small") as writer:
            writer.store("results", key, True)
        with PersistentCache(path, limits_fingerprint="budget-large") as reader:
            assert reader.load("results", key) is MISS

    def test_schema_version_mismatch(self, tmp_path):
        path = tmp_path / "store.db"
        key = ("session", ("memo",))
        with PersistentCache(path, schema_version=1) as writer:
            writer.store("results", key, True)
        with PersistentCache(path, schema_version=2) as reader:
            assert reader.load("results", key) is MISS

    def test_structural_key_mismatch(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        source = frozenset({Atom("R", (x, y))})
        target = frozenset({Atom("R", (a, b))})
        other = frozenset({Atom("R", (b, a))})
        store.store("plans", (source, target, frozenset()), "plan")
        assert store.load("plans", (source, other, frozenset())) is MISS
        store.close()


class TestEligibility:
    def test_interned_plan_entry_keys_never_persist(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        # Interned/generated plan keys carry a tag string and a
        # process-local dictionary serial — not the 3-frozenset shape.
        key = (frozenset(), frozenset(), frozenset(), "interned", 7)
        assert not store.store("plans", key, "never")
        assert store.load("plans", key) is MISS
        assert store.stats.lookups == 0  # ineligible traffic is not counted
        store.close()

    def test_index_layer_never_persists(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        assert not store.store("indexes", frozenset({Atom("R", (a, b))}), "index")
        assert store.info()["entries"] == 0
        store.close()

    def test_unpicklable_value_is_counted_skipped(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        assert not store.store("results", ("session", ("memo",)), lambda: None)
        assert store.stats.skipped == 1
        store.close()


class TestCorruptionTolerance:
    def test_garbage_blob_is_a_counted_miss(self, tmp_path):
        path = tmp_path / "store.db"
        key = ("session", ("memo",))
        with PersistentCache(path) as writer:
            writer.store("results", key, "good")
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE entries SET value = ?", (b"\x80garbage",))
        with PersistentCache(path) as reader:
            assert reader.load("results", key) is MISS
            assert reader.stats.errors == 1
            assert reader.stats.misses == 1

    def test_truncated_file_degrades_to_misses(self, tmp_path):
        path = tmp_path / "store.db"
        with PersistentCache(path) as writer:
            writer.store("results", ("session", ("memo",)), "good")
            writer.vacuum()  # fold the WAL into the main file before tearing it
        with open(path, "r+b") as handle:
            handle.truncate(100)
        store = PersistentCache(path)
        assert store.load("results", ("session", ("memo",))) is MISS
        assert store.stats.errors >= 1
        store.close()

    def test_non_database_file_degrades_to_misses(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"this is not a sqlite database, not even close")
        store = PersistentCache(path)
        assert store.load("results", ("session", ("memo",))) is MISS
        assert not store.store("results", ("session", ("memo",)), "value")
        assert store.stats.errors >= 1
        store.close()

    def test_closed_store_degrades_to_misses(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        store.close()
        assert store.load("results", ("session", ("memo",)), ) is MISS
        assert not store.store("results", ("session", ("memo",)), "value")


class TestInvalidation:
    def test_invalidate_target_drops_matching_rows_only(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        target = frozenset({Atom("R", (a, b))})
        other = frozenset({Atom("R", (b, c))})
        source = frozenset({Atom("R", (x, y))})
        store.store("plans", (source, target, frozenset()), "doomed-plan")
        store.store("results", result_key(target), 3)
        store.store("plans", (source, other, frozenset()), "survivor")
        assert store.invalidate_target(target) == 2
        assert store.load("plans", (source, target, frozenset())) is MISS
        assert store.load("results", result_key(target)) is MISS
        assert store.load("plans", (source, other, frozenset())) == "survivor"
        assert store.stats.invalidated == 2
        store.close()

    def test_clear_and_vacuum_and_info(self, tmp_path):
        store = PersistentCache(tmp_path / "store.db")
        store.store("results", ("session", ("memo",)), "value")
        info = store.info()
        assert info["status"] == "ok"
        assert info["entries"] == 1
        assert info["layers"] == {"results": 1}
        assert store.clear() == 1
        assert store.vacuum()
        assert store.info()["entries"] == 0
        store.close()


class TestEngineCacheIntegration:
    def test_backend_plans_and_memos_warm_across_caches(self, tmp_path):
        path = tmp_path / "store.db"
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)), Atom("R", (b, c)))

        cold_cache = EngineCache()
        cold_cache.attach_persistent(PersistentCache(path, backend="indexed"))
        cold = IndexedBackend(cache=cold_cache)
        assert cold.count(source, target) == 2
        assert cold_cache.persistent.stats.stores >= 2  # the plan and the memo
        cold_cache.persistent.close()

        warm_cache = EngineCache()
        warm_cache.attach_persistent(PersistentCache(path, backend="indexed"))
        warm = IndexedBackend(cache=warm_cache)
        assert warm.count(source, target) == 2
        assert warm_cache.persistent.stats.hits >= 2
        # A persistent hit is still an in-memory miss: the layer counters
        # keep measuring this process's working set.
        assert warm_cache.result_stats.misses == 1
        assert warm_cache.result_stats.hits == 0
        warm_cache.persistent.close()

    def test_invalidate_propagates_to_the_store(self, tmp_path):
        path = tmp_path / "store.db"
        source = (Atom("R", (x, y)),)
        target = (Atom("R", (a, b)),)

        cache = EngineCache()
        cache.attach_persistent(PersistentCache(path, backend="indexed"))
        backend = IndexedBackend(cache=cache)
        backend.count(source, target)
        assert cache.invalidate(target) > 0
        cache.persistent.close()

        # A fresh process must not see any row for the invalidated target.
        fresh = EngineCache()
        fresh.attach_persistent(PersistentCache(path, backend="indexed"))
        rebuilt = IndexedBackend(cache=fresh)
        stats = fresh.persistent.stats
        assert rebuilt.count(source, target) == 1
        assert stats.hits == 0
        fresh.persistent.close()

    def test_invalidate_all_clears_the_store_too(self, tmp_path):
        path = tmp_path / "store.db"
        cache = EngineCache()
        cache.attach_persistent(PersistentCache(path, backend="indexed"))
        backend = IndexedBackend(cache=cache)
        backend.count((Atom("R", (x, y)),), (Atom("R", (a, b)),))
        assert cache.invalidate() > 0
        assert cache.persistent.info()["entries"] == 0
        cache.persistent.close()

    def test_invalidate_survives_non_tuple_plan_entry_keys(self, tmp_path):
        # Regression: the plans-layer sweep used to index key[1]
        # unconditionally, crashing on any plan_entry key that is not a
        # tuple of length ≥ 2.
        cache = EngineCache()
        cache.plan_entry("exotic-string-key", lambda: "plan")
        cache.plan_entry(("short",), lambda: "plan")
        assert cache.invalidate((Atom("R", (a, b)),)) == 0
        assert cache.plan_entry("exotic-string-key", lambda: "rebuilt") == "plan"

    def test_detach_stops_consulting_the_store(self, tmp_path):
        path = tmp_path / "store.db"
        cache = EngineCache()
        store = PersistentCache(path, backend="indexed")
        cache.attach_persistent(store)
        backend = IndexedBackend(cache=cache)
        backend.count((Atom("R", (x, y)),), (Atom("R", (a, b)),))
        cache.attach_persistent(None)
        lookups_before = store.stats.lookups
        cache.clear()
        backend.count((Atom("R", (x, y)),), (Atom("R", (a, b)),))
        assert store.stats.lookups == lookups_before
        store.close()


class TestSchemaBumpStory:
    def test_stale_schema_rows_are_invisible_not_fatal(self, tmp_path):
        """The documented bump rule: old rows miss, new rows accumulate."""
        path = tmp_path / "store.db"
        key = ("session", ("memo",))
        with PersistentCache(path, schema_version=1) as old:
            old.store("results", key, pickle.dumps("an old layout, opaque here"))
        with PersistentCache(path, schema_version=2) as new:
            assert new.load("results", key) is MISS
            new.store("results", key, "the new layout")
            assert new.load("results", key) == "the new layout"
            assert sorted(new.info()["schemas"]) == [1, 2]


class TestPruning:
    """``prune_age`` / ``prune_lru``: pruned rows read as misses, never errors."""

    @staticmethod
    def memo_key(index):
        return ("session", ("memo", index))

    def seeded(self, tmp_path, count=5):
        store = PersistentCache(tmp_path / "store.db")
        for index in range(count):
            assert store.store("results", self.memo_key(index), index)
        return store

    def test_prune_lru_keeps_the_most_recently_used(self, tmp_path):
        store = self.seeded(tmp_path)
        # Touch two entries so their access time outranks the others.
        assert store.load("results", self.memo_key(1)) == 1
        assert store.load("results", self.memo_key(3)) == 3
        assert store.prune_lru(2) == 3
        survivors = {
            index
            for index in range(5)
            if store.load("results", self.memo_key(index)) is not MISS
        }
        assert survivors == {1, 3}
        assert store.stats.errors == 0  # pruned rows are misses, not failures
        assert store.stats.invalidated == 3
        store.close()

    def test_prune_lru_with_enough_room_drops_nothing(self, tmp_path):
        store = self.seeded(tmp_path)
        assert store.prune_lru(10) == 0
        assert store.info()["entries"] == 5
        store.close()

    def test_prune_age_drops_only_stale_rows(self, tmp_path):
        store = self.seeded(tmp_path)
        # Backdate two rows a week; everything else was written just now.
        week = 7 * 86400.0
        with store._lock:
            store._connection.execute(
                "UPDATE entries SET created = created - ?, accessed = 0 "
                "WHERE rowid IN (1, 2)",
                (week,),
            )
        assert store.prune_age(1.0) == 2
        assert store.load("results", self.memo_key(0)) is MISS
        assert store.load("results", self.memo_key(1)) is MISS
        assert store.load("results", self.memo_key(2)) == 2
        assert store.stats.errors == 0
        store.close()

    def test_recent_access_rescues_an_old_row_from_age_pruning(self, tmp_path):
        store = self.seeded(tmp_path, count=2)
        week = 7 * 86400.0
        with store._lock:
            store._connection.execute(
                "UPDATE entries SET created = created - ?", (week,)
            )
        # A fresh hit stamps the access time, so MAX(accessed, created)
        # keeps the touched row inside the window.
        assert store.load("results", self.memo_key(0)) == 0
        assert store.prune_age(1.0) == 1
        assert store.load("results", self.memo_key(0)) == 0
        assert store.load("results", self.memo_key(1)) is MISS
        store.close()

    def test_prune_on_a_dead_store_is_a_counted_noop(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_text("this is not sqlite")
        store = PersistentCache(path)
        assert store.prune_age(1.0) == 0
        assert store.prune_lru(1) == 0
        store.close()


class TestAccessedColumnMigration:
    """Stores written before the ``accessed`` column still open and prune."""

    def legacy_store(self, tmp_path):
        """Build a store, then strip it back to the pre-eviction schema."""
        path = tmp_path / "store.db"
        with PersistentCache(path) as store:
            assert store.store("results", ("session", ("memo",)), "value")
        with sqlite3.connect(path) as raw:
            raw.execute("ALTER TABLE entries DROP COLUMN accessed")
        return path

    def test_reopening_migrates_and_backfills(self, tmp_path):
        path = self.legacy_store(tmp_path)
        with PersistentCache(path) as store:
            assert store.load("results", ("session", ("memo",))) == "value"
            with store._lock:
                row = store._connection.execute(
                    "SELECT accessed, created FROM entries"
                ).fetchone()
            # Backfilled access times start at the creation time (then move
            # forward as hits stamp them).
            assert row[0] >= row[1] > 0

    def test_migrated_store_prunes_by_age(self, tmp_path):
        path = self.legacy_store(tmp_path)
        with PersistentCache(path) as store:
            assert store.prune_age(1.0) == 0  # created just now: kept
            with store._lock:
                store._connection.execute(
                    "UPDATE entries SET created = created - ?, accessed = 0",
                    (7 * 86400.0,),
                )
            assert store.prune_age(1.0) == 1
            assert store.load("results", ("session", ("memo",))) is MISS
            assert store.stats.errors == 0
