"""Tests for the top-level public API surface.

A downstream user should be able to work entirely from ``import repro``;
these tests pin the names the README and the examples rely on, and run the
README quickstart end to end.
"""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart(self):
        q1 = repro.parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")
        q2 = repro.parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")
        assert repro.decide_bag_containment(q1, q2).contained
        result = repro.decide_bag_containment(q2, q1)
        assert not result.contained
        assert result.counterexample is not None
        assert "multiplicity" in result.counterexample.describe()

        a, b = repro.Constant("a"), repro.Constant("b")
        bag = repro.BagInstance({repro.Atom("R", (a, b)): 2, repro.Atom("P", (b, b)): 1})
        assert repro.evaluate_bag(q1, bag)[(a, b)] == 4

    def test_compare_is_exposed(self):
        q1 = repro.parse_cq("q(x) <- R(x, x)")
        spectrum = repro.compare(q1, q1.with_name("copy"))
        assert spectrum.relationship is repro.Relationship.EQUIVALENT

    def test_core_helpers_are_exposed(self):
        query = repro.parse_cq("q(x1) <- R(x1, c1)")
        assert len(repro.probe_tuples(query)) == 2
        assert len(repro.most_general_probe_tuple(query)) == 1
        encoding = repro.encode_most_general(query, query.with_name("copy"))
        assert encoding.dimension == 1
