"""Unit tests for the exact-arithmetic helpers."""

from fractions import Fraction

import pytest

from repro.exceptions import DimensionMismatchError
from repro.linalg.rationals import (
    as_fraction_vector,
    clear_denominators,
    dot,
    is_zero_vector,
    normalize_integer_vector,
    scale_to_natural,
)


class TestConversions:
    def test_as_fraction_vector(self):
        assert as_fraction_vector([1, "1/2", 0.5]) == (Fraction(1), Fraction(1, 2), Fraction(1, 2))

    def test_clear_denominators(self):
        assert clear_denominators([Fraction(1, 2), Fraction(1, 3)]) == (3, 2)
        assert clear_denominators([Fraction(2), Fraction(3)]) == (2, 3)
        assert clear_denominators([]) == ()

    def test_normalize_integer_vector(self):
        assert normalize_integer_vector([4, 6, 8]) == (2, 3, 4)
        assert normalize_integer_vector([0, 0]) == (0, 0)
        assert normalize_integer_vector([3, 5]) == (3, 5)
        assert normalize_integer_vector([-4, 6]) == (-2, 3)

    def test_scale_to_natural(self):
        assert scale_to_natural([Fraction(1, 2), Fraction(3, 2)]) == (1, 3)
        assert scale_to_natural([Fraction(0), Fraction(2)]) == (0, 1)

    def test_scale_to_natural_rejects_negative_components(self):
        with pytest.raises(DimensionMismatchError):
            scale_to_natural([Fraction(-1, 2), Fraction(1)])


class TestDot:
    def test_dot_product(self):
        assert dot([1, 2, 3], [4, 5, 6]) == 32
        assert dot([Fraction(1, 2), 2], [2, Fraction(1, 4)]) == Fraction(3, 2)

    def test_dot_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            dot([1, 2], [1])

    def test_is_zero_vector(self):
        assert is_zero_vector([0, Fraction(0)])
        assert not is_zero_vector([0, 1])
