"""Unit tests for homogeneous strict inequality systems."""

from fractions import Fraction

import pytest

from repro.exceptions import DimensionMismatchError, LinearSystemError
from repro.linalg.systems import HomogeneousStrictSystem


class TestConstruction:
    def test_rows_are_converted_to_fractions(self):
        system = HomogeneousStrictSystem([[1, -2], [0.5, 1]])
        assert system.rows[1][0] == Fraction(1, 2)
        assert system.dimension == 2
        assert len(system) == 2

    def test_empty_system_needs_explicit_dimension(self):
        with pytest.raises(LinearSystemError):
            HomogeneousStrictSystem([])
        assert HomogeneousStrictSystem([], dimension=3).dimension == 3

    def test_inconsistent_row_lengths_are_rejected(self):
        with pytest.raises(DimensionMismatchError):
            HomogeneousStrictSystem([[1, 2], [1]])

    def test_equality_and_hash(self):
        first = HomogeneousStrictSystem([[1, 2]])
        second = HomogeneousStrictSystem([[1, 2]])
        assert first == second
        assert hash(first) == hash(second)


class TestEvaluation:
    def test_is_solution(self):
        system = HomogeneousStrictSystem([[1, -1], [0, 1]])
        assert system.is_solution([3, 1])
        assert not system.is_solution([1, 1])   # first row evaluates to 0, not > 0
        assert not system.is_solution([0, -1])

    def test_slack_and_violated_rows(self):
        system = HomogeneousStrictSystem([[1, -1], [0, 1]])
        assert system.slack([2, 5]) == (Fraction(-3), Fraction(5))
        assert system.violated_rows([2, 5]) == [0]
        assert system.violated_rows([5, 2]) == []

    def test_is_solution_checks_dimension(self):
        system = HomogeneousStrictSystem([[1, -1]])
        with pytest.raises(DimensionMismatchError):
            system.is_solution([1])

    def test_empty_system_accepts_everything(self):
        system = HomogeneousStrictSystem([], dimension=2)
        assert system.is_solution([0, 0])


class TestDerivedSystems:
    def test_with_positivity_adds_identity_rows(self):
        system = HomogeneousStrictSystem([[1, -1]])
        positive = system.with_positivity()
        assert len(positive) == 3
        assert positive.is_solution([2, 1])
        assert not positive.is_solution([2, 0])    # positivity row fails

    def test_restricted_to(self):
        system = HomogeneousStrictSystem([[1, 0], [0, 1], [1, 1]])
        restricted = system.restricted_to([0, 2])
        assert len(restricted) == 2
        assert restricted.rows[0] == (Fraction(1), Fraction(0))

    def test_max_coefficient_sum(self):
        system = HomogeneousStrictSystem([[1, -3], [2, 2]])
        assert system.max_coefficient_sum() == 4
        assert HomogeneousStrictSystem([], dimension=2).max_coefficient_sum() == 0


class TestIntegerFastPath:
    def test_integer_rows_scale_away_denominators(self):
        from fractions import Fraction

        system = HomogeneousStrictSystem([[Fraction(1, 2), Fraction(-1, 3)], [1, 0]])
        assert system.integer_rows() == ((3, -2), (1, 0))

    def test_integer_and_fraction_paths_agree(self):
        from fractions import Fraction
        from itertools import product

        system = HomogeneousStrictSystem(
            [[Fraction(1, 2), Fraction(-1, 3), 0], [1, -1, 1], [0, 0, 1]]
        )
        for vector in product(range(4), repeat=3):
            integer_verdict = system.is_solution(vector)
            fraction_verdict = all(value > 0 for value in system.slack(vector))
            assert integer_verdict == fraction_verdict

    def test_non_integer_vectors_use_the_exact_path(self):
        from fractions import Fraction

        system = HomogeneousStrictSystem([[1, -1]])
        assert system.is_solution((Fraction(1, 2), Fraction(1, 3)))
        assert not system.is_solution((Fraction(1, 3), Fraction(1, 2)))

    def test_integer_rows_are_gcd_normalized_at_construction(self):
        # Non-reduced rational input (Fraction(2,4)-style coefficients and
        # common factors across a row) must still produce primitive integer
        # rows, so the fast path multiplies the smallest possible numbers.
        system = HomogeneousStrictSystem(
            [
                [Fraction(2, 4), Fraction(6, 4)],   # == (1/2, 3/2) -> (1, 3)
                [2, 4],                              # common factor 2 -> (1, 2)
                [Fraction(10, 5), Fraction(-20, 5)], # == (2, -4)    -> (1, -2)
                [0, 0],                              # zero row stays zero
            ]
        )
        assert system.integer_rows() == ((1, 3), (1, 2), (1, -2), (0, 0))
        # The rational view is untouched (phi of Lemma 5.1 depends on it).
        assert system.rows[1] == (Fraction(2), Fraction(4))
        assert system.max_coefficient_sum() == 6

    def test_gcd_normalized_fast_path_agrees_with_slack(self):
        from itertools import product

        system = HomogeneousStrictSystem([[Fraction(2, 4), Fraction(6, 4)], [3, -6]])
        for vector in product(range(-2, 3), repeat=2):
            assert system.is_solution(vector) == all(
                value > 0 for value in system.slack(vector)
            )
