"""Unit tests for the exact Fourier-Motzkin feasibility solver."""

from fractions import Fraction

import pytest

from repro.exceptions import LinearSystemError
from repro.linalg.fourier_motzkin import feasibility_witness, is_feasible, solve_strict_system
from repro.linalg.systems import HomogeneousStrictSystem


class TestFeasibility:
    def test_single_satisfiable_row(self):
        system = HomogeneousStrictSystem([[1, -1]])
        result = solve_strict_system(system)
        assert result.feasible
        assert system.is_solution(result.witness)

    def test_contradictory_rows(self):
        # x > 0 and -x > 0 cannot both hold.
        system = HomogeneousStrictSystem([[1], [-1]])
        assert not is_feasible(system)

    def test_zero_row_is_infeasible(self):
        system = HomogeneousStrictSystem([[0, 0]])
        assert not is_feasible(system)

    def test_paper_section4_system(self):
        # The system derived from the Section 4 example:
        #   -5ε1 +  ε2 + 3ε3 > 0
        #   -3ε1 -  ε2 + 3ε3 > 0
        #   - ε1 -  ε2 + 3ε3 > 0
        system = HomogeneousStrictSystem([[-5, 1, 3], [-3, -1, 3], [-1, -1, 3]])
        result = solve_strict_system(system)
        assert result.feasible
        assert system.is_solution(result.witness)
        # The paper's own solution also satisfies it.
        assert system.is_solution([0, 2, 1])

    def test_infeasible_three_dimensional_system(self):
        # Rows sum to the negation of each other: (1,1,-1), (-1,-1,1) cannot both be positive.
        system = HomogeneousStrictSystem([[1, 1, -1], [-1, -1, 1]])
        assert not is_feasible(system)

    def test_empty_system_is_feasible(self):
        system = HomogeneousStrictSystem([], dimension=3)
        result = solve_strict_system(system)
        assert result.feasible
        assert result.witness == (Fraction(0),) * 3

    def test_require_positive_changes_the_answer(self):
        # -x + y > 0 is feasible, and with positivity (0 < x < y) still feasible;
        # but -x > 0 alone is feasible only without positivity.
        assert is_feasible(HomogeneousStrictSystem([[-1, 1]]), require_positive=True)
        assert is_feasible(HomogeneousStrictSystem([[-1]]), require_positive=False)
        assert not is_feasible(HomogeneousStrictSystem([[-1]]), require_positive=True)

    def test_positive_witness_is_componentwise_positive(self):
        system = HomogeneousStrictSystem([[-5, 1, 3], [-3, -1, 3], [-1, -1, 3]])
        result = solve_strict_system(system, require_positive=True)
        assert result.feasible
        assert all(value > 0 for value in result.witness)
        assert system.is_solution(result.witness)

    def test_duplicate_and_scaled_rows_are_merged(self):
        system = HomogeneousStrictSystem([[1, -1], [2, -2], [Fraction(1, 2), Fraction(-1, 2)]])
        result = solve_strict_system(system)
        assert result.feasible
        assert system.is_solution(result.witness)

    def test_row_cap_raises(self):
        # Every column has three positive and three negative coefficients, so any
        # elimination step must create 9 combined rows, exceeding the tiny cap.
        # No row is the opposite or the summed implication of two others — the
        # redundancy pass would otherwise settle the system before eliminating.
        rows = [
            [1, -1, 2],
            [-1, 1, 3],
            [2, 1, -1],
            [-2, -1, 2],
            [1, -2, -1],
            [-1, 2, -2],
        ]
        system = HomogeneousStrictSystem(rows)
        with pytest.raises(LinearSystemError):
            solve_strict_system(system, row_cap=3)

    def test_opposite_rows_are_settled_before_elimination(self):
        # a and -a cannot both be strictly positive; the redundancy pass
        # detects the zero-sum pair and answers without combining anything.
        system = HomogeneousStrictSystem([[2, 1, -1], [-2, -1, 1], [1, 0, 0]])
        assert not solve_strict_system(system).feasible


class TestWitnessExtraction:
    def test_feasibility_witness_wrapper(self):
        witness = feasibility_witness([[1, -2]], dimension=2)
        assert witness is not None
        assert witness[0] - 2 * witness[1] > 0
        assert feasibility_witness([[0, 0]], dimension=2) is None

    def test_witness_for_larger_random_like_system(self):
        rows = [
            [3, -1, 0, -1],
            [-1, 2, -1, 0],
            [0, -1, 3, -1],
            [-1, 0, -1, 4],
        ]
        system = HomogeneousStrictSystem(rows)
        result = solve_strict_system(system, require_positive=True)
        assert result.feasible
        assert system.with_positivity().is_solution(result.witness)
