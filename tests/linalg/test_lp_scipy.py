"""Unit tests for the scipy-LP fast path, cross-checked against Fourier-Motzkin."""

import pytest

from repro.linalg.fourier_motzkin import is_feasible
from repro.linalg.lp_scipy import lp_feasibility, lp_witness
from repro.linalg.systems import HomogeneousStrictSystem


class TestLpFeasibility:
    def test_feasible_system_has_positive_margin_and_exact_witness(self):
        system = HomogeneousStrictSystem([[1, -1]])
        outcome = lp_feasibility(system)
        assert outcome.feasible
        assert outcome.margin > 0
        assert outcome.witness is not None
        assert system.is_solution(outcome.witness)
        assert outcome.exact

    def test_infeasible_system(self):
        system = HomogeneousStrictSystem([[1], [-1]])
        outcome = lp_feasibility(system)
        assert not outcome.feasible
        assert outcome.witness is None

    def test_empty_system(self):
        system = HomogeneousStrictSystem([], dimension=2)
        assert lp_feasibility(system).feasible

    def test_paper_section4_system(self):
        system = HomogeneousStrictSystem([[-5, 1, 3], [-3, -1, 3], [-1, -1, 3]])
        outcome = lp_feasibility(system, require_positive=True)
        assert outcome.feasible
        assert outcome.witness is not None
        assert all(value > 0 for value in outcome.witness)

    def test_lp_witness_wrapper(self):
        system = HomogeneousStrictSystem([[2, -1]])
        witness = lp_witness(system)
        assert witness is not None
        assert system.is_solution(witness)
        assert lp_witness(HomogeneousStrictSystem([[0, 0]])) is None


class TestAgreementWithExactSolver:
    @pytest.mark.parametrize(
        "rows, dimension",
        [
            ([[1, -1], [-1, 2]], 2),
            ([[1, 1], [-1, -1]], 2),
            ([[-5, 1, 3], [-3, -1, 3], [-1, -1, 3]], 3),
            ([[1, 0, 0], [0, 1, 0], [0, 0, 1]], 3),
            ([[1, -2, 1], [-1, 1, -1], [0, 1, -1]], 3),
            ([[3, -1, 0, -1], [-1, 2, -1, 0], [0, -1, 3, -1], [-1, 0, -1, 4]], 4),
        ],
    )
    @pytest.mark.parametrize("require_positive", [False, True])
    def test_verdicts_agree(self, rows, dimension, require_positive):
        system = HomogeneousStrictSystem(rows, dimension)
        exact = is_feasible(system, require_positive=require_positive)
        lp = lp_feasibility(system, require_positive=require_positive)
        # A feasible LP answer with an exact witness is authoritative; an
        # infeasible LP answer must match the exact solver on these
        # well-conditioned systems.
        assert lp.feasible == exact
