"""Unit tests for conjunctive queries in bag representation."""

import pytest

from repro.exceptions import NotProjectionFreeError, QueryError, UnificationError
from repro.queries.builder import QueryBuilder
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import SetInstance
from repro.relational.substitutions import Substitution
from repro.relational.terms import CanonicalConstant, Constant, Variable

x1, x2, y1, y2, y3, y4 = (Variable(name) for name in ("x1", "x2", "y1", "y2", "y3", "y4"))
c1, c2 = Constant("c1"), Constant("c2")


def paper_query() -> ConjunctiveQuery:
    """The Section 2 running example with duplicate atoms given positionally."""
    return ConjunctiveQuery(
        (x1, x2),
        [
            Atom("R", (x1, y1)),
            Atom("R", (x1, y1)),
            Atom("R", (x1, y2)),
            Atom("P", (y2, y3)),
            Atom("P", (y2, y3)),
            Atom("P", (x2, y4)),
        ],
        name="q",
    )


class TestBagRepresentation:
    def test_duplicate_atoms_become_multiplicities(self):
        query = paper_query()
        assert query.multiplicity(Atom("R", (x1, y1))) == 2
        assert query.multiplicity(Atom("R", (x1, y2))) == 1
        assert query.multiplicity(Atom("P", (y2, y3))) == 2
        assert query.multiplicity(Atom("P", (x2, y4))) == 1
        assert len(query.body_atoms()) == 4
        assert query.degree() == 6

    def test_mapping_construction_matches_positional(self):
        from_mapping = ConjunctiveQuery(
            (x1, x2),
            {
                Atom("R", (x1, y1)): 2,
                Atom("R", (x1, y2)): 1,
                Atom("P", (y2, y3)): 2,
                Atom("P", (x2, y4)): 1,
            },
        )
        assert from_mapping == paper_query()

    def test_zero_multiplicity_atoms_are_dropped(self):
        query = ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): 1, Atom("S", (x1,)): 0})
        assert len(query.body_atoms()) == 1

    def test_multiplicity_of_absent_atom_is_zero(self):
        assert paper_query().multiplicity(Atom("T", (x1,))) == 0

    def test_empty_body_is_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((x1,), {})

    def test_unsafe_queries_are_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((x1, x2), [Atom("R", (x1, x1))])

    def test_negative_multiplicities_are_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): -1})

    def test_non_variable_head_is_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((c1,), [Atom("R", (c1, c1))])  # type: ignore[arg-type]


class TestStructure:
    def test_variables_and_existential_variables(self):
        query = paper_query()
        assert query.head_variables() == frozenset({x1, x2})
        assert query.existential_variables() == frozenset({y1, y2, y3, y4})
        assert query.variables() == frozenset({x1, x2, y1, y2, y3, y4})

    def test_projection_free_detection(self):
        assert not paper_query().is_projection_free()
        projection_free = ConjunctiveQuery((x1, x2), [Atom("R", (x1, x2))])
        assert projection_free.is_projection_free()
        projection_free.require_projection_free()
        with pytest.raises(NotProjectionFreeError):
            paper_query().require_projection_free()

    def test_boolean_and_ground_queries(self):
        boolean = ConjunctiveQuery((), [Atom("R", (c1, c2))])
        assert boolean.is_boolean()
        assert boolean.is_ground()
        assert boolean.is_projection_free()
        assert not paper_query().is_boolean()

    def test_active_domain_and_relations(self):
        query = ConjunctiveQuery((x1,), [Atom("R", (x1, c1)), Atom("S", (c2,))], name="q")
        assert query.active_domain() == frozenset({c1, c2})
        assert query.relation_names() == frozenset({"R", "S"})
        assert query.schema().arity_of("R") == 2

    def test_repeated_head_variables_are_allowed(self):
        query = ConjunctiveQuery((x1, x1), [Atom("R", (x1, x1))])
        assert query.arity == 2
        assert query.head == (x1, x1)


class TestCanonicalInstance:
    def test_variables_are_frozen(self):
        query = ConjunctiveQuery((x1,), [Atom("R", (x1, c1))])
        assert query.canonical_instance() == SetInstance(
            [Atom("R", (CanonicalConstant("x1"), c1))]
        )

    def test_canonical_bag_keeps_multiplicities(self):
        query = ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): 3})
        bag = query.canonical_bag()
        assert bag[Atom("R", (CanonicalConstant("x1"), CanonicalConstant("x1")))] == 3

    def test_canonical_bag_sums_collapsing_atoms(self):
        # R(x1, y1) and R(x1, y2) stay distinct after freezing, but a query
        # where two distinct atoms become equal can only arise through
        # substitution, so here we simply check both frozen atoms exist.
        query = ConjunctiveQuery((x1,), {Atom("R", (x1, y1)): 1, Atom("R", (x1, y2)): 2})
        assert len(query.canonical_bag()) == 2


class TestSubstitutionApplication:
    def test_equation_1_sums_collapsing_multiplicities(self):
        query = paper_query()
        sigma = Substitution({y1: x2, y2: x2, y3: x2, y4: x2})
        image = query.apply_substitution(sigma)
        assert image.multiplicity(Atom("R", (x1, x2))) == 3
        assert image.multiplicity(Atom("P", (x2, x2))) == 3
        assert len(image.body_atoms()) == 2

    def test_head_follows_the_substitution(self):
        query = ConjunctiveQuery((x1, x2), [Atom("R", (x1, x2))])
        image = query.apply_substitution(Substitution({x2: x1}))
        assert image.head == (x1, x1)

    def test_grounding_on_constants(self):
        query = ConjunctiveQuery((x1, x2), {Atom("R", (x1, x2)): 2})
        grounded = query.ground((c1, c2))
        assert grounded.is_boolean()
        assert grounded.is_ground()
        assert grounded.multiplicity(Atom("R", (c1, c2))) == 2

    def test_grounding_with_repeated_head_variable(self):
        query = ConjunctiveQuery((x1, x1), [Atom("R", (x1, x1))])
        grounded = query.ground((c1, c1))
        assert grounded.multiplicity(Atom("R", (c1, c1))) == 1
        with pytest.raises(UnificationError):
            query.ground((c1, c2))

    def test_grounding_rejects_variables_in_probe(self):
        query = ConjunctiveQuery((x1,), [Atom("R", (x1, x1))])
        with pytest.raises(UnificationError):
            query.ground((y1,))

    def test_grounding_merges_atoms_that_collapse(self):
        query = ConjunctiveQuery((x1, x2), {Atom("R", (x1, x2)): 1, Atom("R", (x2, x1)): 2})
        grounded = query.ground((c1, c1))
        assert grounded.multiplicity(Atom("R", (c1, c1))) == 3


class TestTransformations:
    def test_rename_variables(self):
        query = ConjunctiveQuery((x1,), [Atom("R", (x1, y1))])
        renamed = query.rename_variables({x1: x2, y1: y2})
        assert renamed.head == (x2,)
        assert renamed.multiplicity(Atom("R", (x2, y2))) == 1

    def test_rename_requires_injectivity(self):
        query = ConjunctiveQuery((x1,), [Atom("R", (x1, y1))])
        with pytest.raises(QueryError):
            query.rename_variables({x1: x2, y1: x2})

    def test_set_body_collapses_multiplicities(self):
        query = ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): 5})
        assert query.set_body().multiplicity(Atom("R", (x1, x1))) == 1

    def test_with_name_and_with_head(self):
        query = ConjunctiveQuery((x1, x2), [Atom("R", (x1, x2))], name="q")
        assert query.with_name("p").name == "p"
        assert query.with_head((x2, x1)).head == (x2, x1)

    def test_conjoin_sums_bodies_and_concatenates_heads(self):
        left = ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): 1})
        right = ConjunctiveQuery((x2,), {Atom("R", (x2, x2)): 2, Atom("R", (x1, x1)): 1})
        combined = left.conjoin(right)
        assert combined.head == (x1, x2)
        assert combined.multiplicity(Atom("R", (x1, x1))) == 2
        assert combined.multiplicity(Atom("R", (x2, x2))) == 2


class TestEqualityAndDisplay:
    def test_equality_ignores_name(self):
        first = ConjunctiveQuery((x1,), [Atom("R", (x1, x1))], name="a")
        second = ConjunctiveQuery((x1,), [Atom("R", (x1, x1))], name="b")
        assert first == second
        assert hash(first) == hash(second)

    def test_equality_respects_multiplicities(self):
        first = ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): 1})
        second = ConjunctiveQuery((x1,), {Atom("R", (x1, x1)): 2})
        assert first != second

    def test_str_mentions_multiplicities(self):
        rendered = str(QueryBuilder("q").head("x1").atom("R", "x1", "x1", multiplicity=2).build())
        assert "R^2" in rendered
