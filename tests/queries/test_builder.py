"""Unit tests for the fluent query builder."""

import pytest

from repro.exceptions import QueryError
from repro.queries.builder import QueryBuilder
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable


class TestQueryBuilder:
    def test_builds_paper_example(self):
        built = (
            QueryBuilder("q")
            .head("x1", "x2")
            .atom("R", "x1", "y1", multiplicity=2)
            .atom("R", "x1", "y2")
            .atom("P", "y2", "y3", multiplicity=2)
            .atom("P", "x2", "y4")
            .build()
        )
        parsed = parse_cq("q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)")
        assert built == parsed

    def test_string_constants_follow_parser_conventions(self):
        query = QueryBuilder("q").head("x").atom("R", "x", "alice").build()
        assert Constant("alice") in query.active_domain()

    def test_terms_are_accepted_verbatim(self):
        query = QueryBuilder("q").head(Variable("x")).atom("R", Variable("x"), Constant("x")).build()
        assert query.multiplicity(Atom("R", (Variable("x"), Constant("x")))) == 1

    def test_integer_constants(self):
        query = QueryBuilder("q").head("x").atom("R", "x", 7).build()
        assert Constant(7) in query.active_domain()

    def test_repeated_atom_calls_accumulate(self):
        query = QueryBuilder("q").head("x").atom("R", "x", "x").atom("R", "x", "x").build()
        assert query.multiplicity(Atom("R", (Variable("x"), Variable("x")))) == 2

    def test_add_head_appends(self):
        query = QueryBuilder("q").add_head("x").add_head("y").atom("R", "x", "y").build()
        assert query.head == (Variable("x"), Variable("y"))

    def test_atoms_bulk_add(self):
        atom = Atom("R", (Variable("x"), Variable("x")))
        query = QueryBuilder("q").head("x").atoms([atom, atom]).build()
        assert query.multiplicity(atom) == 2

    def test_head_rejects_constants(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").head("a")

    def test_zero_multiplicity_is_rejected(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").atom("R", "x", multiplicity=0)

    def test_builder_is_reusable(self):
        builder = QueryBuilder("q").head("x").atom("R", "x", "x")
        first = builder.build()
        builder.atom("S", "x")
        second = builder.build()
        assert len(first.body_atoms()) == 1
        assert len(second.body_atoms()) == 2
