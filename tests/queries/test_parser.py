"""Unit tests for the datalog-style parser."""

import pytest

from repro.exceptions import ParseError
from repro.queries.parser import parse_atom, parse_cq, parse_term, parse_ucq
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable


class TestParseTerm:
    def test_variable_prefixes(self):
        assert parse_term("x1") == Variable("x1")
        assert parse_term("y") == Variable("y")
        assert parse_term("Z3") == Variable("Z3")

    def test_constants(self):
        assert parse_term("a") == Constant("a")
        assert parse_term("c1") == Constant("c1")
        assert parse_term("42") == Constant(42)
        assert parse_term("-7") == Constant(-7)

    def test_quoted_constants(self):
        assert parse_term("'x1'") == Constant("x1")
        assert parse_term('"hello"') == Constant("hello")

    def test_question_mark_forces_variable(self):
        assert parse_term("?alice") == Variable("alice")

    def test_custom_variable_prefixes(self):
        assert parse_term("foo", variable_prefixes=frozenset("f")) == Variable("foo")
        assert parse_term("x", variable_prefixes=frozenset("f")) == Constant("x")

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_term("")
        with pytest.raises(ParseError):
            parse_term("?")
        with pytest.raises(ParseError):
            parse_term("x-y")


class TestParseAtom:
    def test_plain_atom(self):
        atom, multiplicity = parse_atom("R(x, a)")
        assert atom == Atom("R", (Variable("x"), Constant("a")))
        assert multiplicity == 1

    def test_multiplicity_superscript(self):
        atom, multiplicity = parse_atom("R^3(x, y)")
        assert multiplicity == 3
        assert atom.relation == "R"

    def test_nullary_atom(self):
        atom, multiplicity = parse_atom("Flag()")
        assert atom == Atom("Flag", ())
        assert multiplicity == 1

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_atom("R(x")
        with pytest.raises(ParseError):
            parse_atom("R x, y)")


class TestParseCq:
    def test_paper_example(self):
        query = parse_cq("q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)")
        assert query.name == "q"
        assert query.head == (Variable("x1"), Variable("x2"))
        assert query.multiplicity(Atom("R", (Variable("x1"), Variable("y1")))) == 2
        assert query.degree() == 6

    def test_repeated_atoms_accumulate(self):
        query = parse_cq("q(x) <- R(x, x), R(x, x), R^2(x, x)")
        assert query.multiplicity(Atom("R", (Variable("x"), Variable("x")))) == 4

    def test_prolog_style_arrow(self):
        query = parse_cq("q(x) :- R(x, a)")
        assert query.multiplicity(Atom("R", (Variable("x"), Constant("a")))) == 1

    def test_constants_in_body(self):
        query = parse_cq("q(x1) <- R(x1, c1), R(c2, x1)")
        assert Constant("c1") in query.active_domain()
        assert Constant("c2") in query.active_domain()

    def test_boolean_query(self):
        query = parse_cq("q() <- R(a, b)")
        assert query.is_boolean()
        assert query.is_ground()

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_cq("q(x) R(x, y)")

    def test_head_must_use_variables(self):
        with pytest.raises(ParseError):
            parse_cq("q(a) <- R(a, a)")

    def test_empty_body(self):
        with pytest.raises(ParseError):
            parse_cq("q(x) <- ")

    def test_round_trip_with_str(self):
        query = parse_cq("q(x1, x2) <- R^2(x1, y1), P(x2, y1)")
        assert parse_cq(str(query)) == query


class TestParseUcq:
    def test_newline_separated_rules(self):
        ucq = parse_ucq("q(x) <- R(x, y)\nq(x) <- S(x)")
        assert len(ucq) == 2
        assert ucq.arity == 1

    def test_semicolon_separated_rules(self):
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert len(ucq) == 2

    def test_list_of_rules(self):
        ucq = parse_ucq(["q(x) <- R(x, y)", "q(x) <- S(x)"])
        assert len(ucq) == 2

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_ucq("")

    def test_mismatched_arities_are_rejected(self):
        with pytest.raises(Exception):
            parse_ucq("q(x) <- R(x, y); q(x, y) <- R(x, y)")
