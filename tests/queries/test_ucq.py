"""Unit tests for unions of conjunctive queries."""

import pytest

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.atoms import Atom
from repro.relational.terms import Variable

x, y = Variable("x"), Variable("y")
edge = ConjunctiveQuery((x,), [Atom("R", (x, y))], name="edge")
loop = ConjunctiveQuery((x,), [Atom("R", (x, x))], name="loop")
binary = ConjunctiveQuery((x, y), [Atom("R", (x, y))], name="binary")


class TestConstruction:
    def test_requires_at_least_one_disjunct(self):
        with pytest.raises(QueryError):
            UnionOfConjunctiveQueries([])

    def test_requires_uniform_arity(self):
        with pytest.raises(QueryError):
            UnionOfConjunctiveQueries([edge, binary])

    def test_of_constructor(self):
        ucq = UnionOfConjunctiveQueries.of(edge, loop, name="u")
        assert ucq.name == "u"
        assert len(ucq) == 2

    def test_duplicated_disjuncts_are_kept(self):
        ucq = UnionOfConjunctiveQueries([edge, edge])
        assert len(ucq) == 2


class TestStructure:
    def test_arity(self):
        assert UnionOfConjunctiveQueries([edge, loop]).arity == 1

    def test_variables_and_relations(self):
        ucq = UnionOfConjunctiveQueries([edge, loop])
        assert ucq.variables() == frozenset({x, y})
        assert ucq.relation_names() == frozenset({"R"})

    def test_schema(self):
        assert UnionOfConjunctiveQueries([edge]).schema().arity_of("R") == 2

    def test_projection_free_detection(self):
        assert UnionOfConjunctiveQueries([loop]).is_projection_free()
        assert not UnionOfConjunctiveQueries([edge]).is_projection_free()

    def test_equality_and_iteration(self):
        first = UnionOfConjunctiveQueries([edge, loop])
        second = UnionOfConjunctiveQueries([edge, loop])
        assert first == second
        assert list(first) == [edge, loop]
        assert hash(first) == hash(second)
