"""Unit tests for the pretty printers."""

from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.printer import (
    format_answer_bag,
    format_atom,
    format_bag_instance,
    format_query,
    format_set_instance,
    format_ucq,
)
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import CanonicalConstant, Constant, Variable


class TestFormatting:
    def test_format_atom_with_and_without_multiplicity(self):
        atom = Atom("R", (Variable("x"), Constant("a")))
        assert format_atom(atom) == "R(x, a)"
        assert format_atom(atom, 3) == "R^3(x, a)"

    def test_format_query_round_trips_through_the_parser(self):
        query = parse_cq("q(x1, x2) <- R^2(x1, y1), P(x2, y1)")
        assert parse_cq(format_query(query)) == query

    def test_format_query_shows_canonical_constants(self):
        grounded = parse_cq("q(x1) <- R(x1, x1)").ground((CanonicalConstant("x1"),))
        assert "^x1" in format_query(grounded)

    def test_format_ucq_one_disjunct_per_line(self):
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert format_ucq(ucq).count("\n") == 1

    def test_format_set_instance(self):
        instance = SetInstance([Atom("R", (Constant("a"), Constant("b")))])
        assert format_set_instance(instance) == "{R(a, b)}"

    def test_format_bag_instance(self):
        bag = BagInstance({Atom("R", (Constant("a"), Constant("b"))): 2})
        assert format_bag_instance(bag) == "{R^2(a, b)}"

    def test_format_answer_bag(self):
        rendered = format_answer_bag([((Constant("c1"), Constant("c2")), 10)])
        assert rendered == "{(c1, c2)^10}"
