"""Tests for the ``bagcq`` command line interface."""

import pytest

from repro.cli import build_parser, main


class TestDecide:
    def test_positive_containment_exits_zero(self, capsys):
        code = main(
            [
                "decide",
                "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)",
                "q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "⊑b" in captured.out

    def test_negative_containment_exits_one_and_prints_a_counterexample(self, capsys):
        code = main(
            [
                "decide",
                "q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)",
                "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "counterexample" in captured.out

    def test_verbose_prints_the_encoding(self, capsys):
        code = main(
            [
                "decide",
                "--verbose",
                "q1(x) <- R(x, x)",
                "q2(x) <- R(x, x), R(x, y)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "monomial" in captured.out

    def test_alternative_strategy(self, capsys):
        code = main(
            [
                "decide",
                "--strategy",
                "all-probes",
                "q1(x) <- R(x, x)",
                "q2(x) <- R(x, x)",
            ]
        )
        assert code == 0
        assert "all-probes" in capsys.readouterr().out

    def test_projection_in_the_containee_is_a_clean_error(self, capsys):
        code = main(["decide", "q1(x) <- R(x, y)", "q2(x) <- R(x, x)"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err


class TestOtherCommands:
    def test_set_decide(self, capsys):
        code = main(["set-decide", "q1(x) <- R(x, x)", "q2(x) <- R(x, y)"])
        assert code == 0
        assert "⊑s" in capsys.readouterr().out

    def test_evaluate(self, capsys):
        code = main(["evaluate", "q(x) <- R(x, y)", "R(a,b)=2", "R(a,c)=3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "(a)^5" in captured.out

    def test_evaluate_rejects_non_ground_facts(self, capsys):
        code = main(["evaluate", "q(x) <- R(x, y)", "R(a,x)=2"])
        assert code == 2

    def test_evaluate_rejects_bad_multiplicities(self, capsys):
        code = main(["evaluate", "q(x) <- R(x, y)", "R(a,b)=lots"])
        assert code == 2

    def test_encode(self, capsys):
        code = main(
            [
                "encode",
                "q1(x1, x2) <- R^2(x1, x2), R(c1, x2), R^3(x1, c2)",
                "q2(x1, x2) <- R^3(x1, x2), R^2(x1, y1), R^2(y2, y1)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "monomial" in captured.out and "polynomial" in captured.out

    def test_compare_equivalent_queries_exits_zero(self, capsys):
        code = main(["compare", "q(x) <- R(x, x), S(x)", "p(x) <- S(x), R(x, x)"])
        captured = capsys.readouterr()
        assert code == 0
        assert "bag-equivalent" in captured.out

    def test_compare_non_equivalent_queries_exits_one(self, capsys):
        code = main(
            [
                "compare",
                "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)",
                "q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "bag-contained" in captured.out

    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEngineFlags:
    def test_naive_backend_gives_the_same_verdict(self, capsys):
        args = [
            "decide",
            "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)",
            "q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)",
        ]
        assert main(["--engine-backend", "naive"] + args) == 0
        naive_out = capsys.readouterr().out
        assert main(["--engine-backend", "indexed"] + args) == 0
        indexed_out = capsys.readouterr().out
        assert naive_out == indexed_out

    def test_backend_selection_is_restored_after_the_command(self):
        from repro.engine import get_default_backend

        main(["--engine-backend", "naive", "set-decide", "q1(x) <- R(x, x)", "q2(x) <- R(x, y)"])
        assert get_default_backend().name == "indexed"

    def test_engine_stats_are_printed(self, capsys):
        code = main(["--engine-stats", "evaluate", "q(x) <- R(x, y)", "R(a,b)=2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "engine cache statistics" in captured.out
        assert "plans" in captured.out

    def test_engine_stats_are_printed_even_on_errors(self, capsys):
        code = main(["--engine-stats", "decide", "q1(x) <- R(x, y)", "q2(x) <- R(x, x)"])
        captured = capsys.readouterr()
        assert code == 2
        assert "engine cache statistics" in captured.out

    def test_unknown_backend_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine-backend", "quantum", "set-decide", "a", "b"])


class TestDecideBatch:
    @pytest.fixture()
    def corpus(self, tmp_path):
        """A small saved corpus to batch-decide."""
        path = str(tmp_path / "batch-corpus.json")
        code = main(
            [
                "fuzz",
                "--cases", "6",
                "--seed", "2",
                "--strategies", "most-general",
                "--mutation-rate", "0",
                "--no-shrink",
                "--save-corpus", path,
            ]
        )
        assert code == 0
        return path

    def test_batch_decides_every_pair_in_order(self, capsys, corpus):
        capsys.readouterr()
        code = main(["decide", "--batch", corpus])
        captured = capsys.readouterr()
        assert code == 0
        lines = [line for line in captured.out.splitlines() if line.startswith("case-")]
        assert [line.split(":")[0] for line in lines] == [f"case-{i}" for i in range(6)]
        assert "6 pairs" in captured.out

    def test_batch_with_jobs_matches_serial_output(self, capsys, corpus):
        capsys.readouterr()
        assert main(["decide", "--batch", corpus]) == 0
        serial = capsys.readouterr().out

        assert main(["decide", "--batch", corpus, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def verdicts(text):
            return [
                line.split(":")[1].split("[")[0].strip()
                for line in text.splitlines()
                if line.startswith("case-")
            ]

        assert verdicts(parallel) == verdicts(serial)
        assert "jobs=2" in parallel

    def test_batch_rejects_inline_queries(self, capsys, corpus):
        code = main(["decide", "--batch", corpus, "q(x) <- R(x, x)", "q(x) <- R(x, x)"])
        captured = capsys.readouterr()
        assert code == 2
        assert "not both" in captured.err

    def test_decide_without_queries_or_batch_is_a_clean_error(self, capsys):
        code = main(["decide"])
        captured = capsys.readouterr()
        assert code == 2
        assert "decide needs two inline queries" in captured.err


class TestFuzz:
    def test_smoke_campaign_is_clean(self, capsys):
        code = main(
            [
                "fuzz",
                "--cases", "6",
                "--seed", "0",
                "--strategies", "most-general,all-probes",
                "--mutation-rate", "0",
                "--no-shrink",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "no discrepancies found" in captured.out
        assert "6/6 cases" in captured.out

    def test_save_and_replay_corpus(self, capsys, tmp_path):
        corpus = str(tmp_path / "corpus.json")
        code = main(
            [
                "fuzz",
                "--cases", "4",
                "--seed", "1",
                "--strategies", "most-general",
                "--mutation-rate", "0",
                "--no-shrink",
                "--save-corpus", corpus,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "corpus saved" in captured.out

        code = main(["fuzz", "--replay", corpus])
        captured = capsys.readouterr()
        assert code == 0
        assert "replay clean" in captured.out

    def test_replay_of_a_drifted_corpus_fails(self, capsys, tmp_path):
        import json

        corpus = str(tmp_path / "drift.json")
        main(
            [
                "fuzz",
                "--cases", "3",
                "--seed", "2",
                "--strategies", "most-general",
                "--mutation-rate", "0",
                "--no-shrink",
                "--save-corpus", corpus,
            ]
        )
        capsys.readouterr()
        document = json.loads(open(corpus).read())
        flipped = False
        for entry in document["entries"]:
            if entry["expected"] is not None:
                entry["expected"] = not entry["expected"]
                flipped = True
        assert flipped
        open(corpus, "w").write(json.dumps(document))

        code = main(["fuzz", "--replay", corpus])
        captured = capsys.readouterr()
        assert code == 1
        assert "verdict-drift" in captured.out

    def test_backend_subset_campaign_is_clean(self, capsys):
        code = main(
            [
                "fuzz",
                "--cases", "5",
                "--seed", "3",
                "--backends", "interned",
                "--strategies", "most-general",
                "--mutation-rate", "0",
                "--no-shrink",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "no discrepancies found" in captured.out
        assert "5/5 cases" in captured.out

    def test_unknown_strategy_is_a_clean_error(self, capsys):
        code = main(["fuzz", "--cases", "1", "--strategies", "telepathy"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_unknown_backend_is_a_clean_error(self, capsys):
        code = main(["fuzz", "--cases", "1", "--backends", "gpu"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_replay_rejects_save_corpus(self, capsys, tmp_path):
        code = main(
            ["fuzz", "--replay", str(tmp_path / "c.json"), "--save-corpus", str(tmp_path / "d.json")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--save-corpus cannot be combined with --replay" in captured.err


class TestProfile:
    def test_profiles_a_named_workload(self, capsys):
        code = main(
            ["--engine-backend", "interned", "profile", "chain", "--cases", "5", "--top", "5"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "profiled 5 'chain' decisions on the interned backend" in captured.out
        assert "cumulative" in captured.out

    def test_sort_by_tottime(self, capsys):
        code = main(["profile", "star", "--cases", "3", "--top", "3", "--sort", "tottime"])
        captured = capsys.readouterr()
        assert code == 0
        assert "internal time" in captured.out

    def test_unknown_workload_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "fibonacci"])


class TestLint:
    def test_repo_tree_is_clean_in_check_mode(self, capsys):
        code = main(["lint", "--check", "src/repro"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""

    def test_findings_are_printed_and_exit_one(self, capsys, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("CACHE = {}\n")
        code = main(["lint", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "[global-mutable-state]" in captured.out

    def test_rule_filter_and_listing(self, capsys, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("CACHE = {}\ndef f(a=[]):\n    pass\n")
        assert main(["lint", "--rule", "bare-except", str(bad)]) == 0
        capsys.readouterr()
        code = main(["lint", "--list-rules"])
        captured = capsys.readouterr()
        assert code == 0
        assert "set-order-iteration" in captured.out

    def test_unknown_rule_is_a_clean_error(self, capsys):
        code = main(["lint", "--rule", "no-such-rule", "src/repro"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_timing_line_is_printed_in_normal_mode(self, capsys, tmp_path):
        clean = tmp_path / "module.py"
        clean.write_text("def f():\n    return 1\n")
        code = main(["lint", str(clean)])
        captured = capsys.readouterr()
        assert code == 0
        assert "one parse per file" in captured.out

    def test_timing_line_goes_to_stderr_in_check_mode(self, capsys, tmp_path):
        clean = tmp_path / "module.py"
        clean.write_text("def f():\n    return 1\n")
        code = main(["lint", "--check", str(clean)])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert "one parse per file" in captured.err


class TestAnalyze:
    def test_repo_tree_is_clean_in_check_mode(self, capsys):
        code = main(["analyze", "--check", "src/repro"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert "one parse per file" in captured.err

    def test_seeded_defect_is_reported_and_exits_one(self, capsys, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text(
            "import json\n"
            "def f(s: set):\n"
            "    xs = list(s)\n"
            "    return json.dumps(xs)\n"
        )
        code = main(["analyze", "--no-schema-lock", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "[determinism-taint]" in captured.out

    def test_rule_filter_selects_one_analyzer(self, capsys, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text(
            "import json\n"
            "def f(s: set):\n"
            "    xs = list(s)\n"
            "    return json.dumps(xs)\n"
        )
        code = main(
            ["analyze", "--no-schema-lock", "--rule", "fork-unpicklable", str(bad)]
        )
        assert code == 0  # the taint defect is outside the selected analyzer

    def test_explain_prints_the_rationale(self, capsys):
        code = main(["analyze", "--explain", "determinism-taint"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("determinism-taint:")
        assert len(captured.out.splitlines()) > 2  # summary + extended rationale

    def test_list_rules_shows_the_analyzers(self, capsys):
        code = main(["analyze", "--list-rules"])
        captured = capsys.readouterr()
        assert code == 0
        assert "fork-unpicklable" in captured.out
        assert "fork-shared-state" in captured.out

    def test_unknown_analyzer_is_a_clean_error(self, capsys):
        code = main(["analyze", "--rule", "no-such-analyzer", "src/repro"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_write_schema_lock_round_trips(self, capsys, tmp_path):
        lock = tmp_path / "persist-schema.lock"
        clean = tmp_path / "module.py"
        clean.write_text("def f():\n    return 1\n")
        code = main(["analyze", "--write-schema-lock", "--schema-lock", str(lock)])
        captured = capsys.readouterr()
        assert code == 0
        assert "schema lock written" in captured.out
        assert lock.exists()
        code = main(["analyze", "--schema-lock", str(lock), str(clean)])
        captured = capsys.readouterr()
        assert code == 0
        assert "lock matches" in captured.out

    def test_missing_schema_lock_fails_the_check(self, capsys, tmp_path):
        clean = tmp_path / "module.py"
        clean.write_text("def f():\n    return 1\n")
        code = main(["analyze", "--schema-lock", str(tmp_path / "absent.lock"), str(clean)])
        captured = capsys.readouterr()
        assert code == 1
        assert "persist-schema:" in captured.out


class TestCacheVacuum:
    @staticmethod
    def _seeded_store(tmp_path):
        from repro.engine.persist import PersistentCache

        path = tmp_path / "store.db"
        store = PersistentCache(path)
        for index in range(5):
            assert store.store("results", ("session", f"memo-{index}"), {"n": index})
        store.close()
        return path

    def test_prune_lru_keeps_the_requested_entries(self, capsys, tmp_path):
        path = self._seeded_store(tmp_path)
        code = main(["cache", "vacuum", str(path), "--prune-lru", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "3 entries pruned, vacuumed" in captured.out
        assert main(["cache", "info", str(path)]) == 0
        assert "entries: 2" in capsys.readouterr().out

    def test_prune_age_zero_days_drops_everything(self, capsys, tmp_path):
        path = self._seeded_store(tmp_path)
        code = main(["cache", "vacuum", str(path), "--prune-age", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "5 entries pruned, vacuumed" in captured.out

    def test_prune_flags_reject_other_actions(self, capsys, tmp_path):
        path = self._seeded_store(tmp_path)
        code = main(["cache", "info", str(path), "--prune-lru", "2"])
        captured = capsys.readouterr()
        assert code == 2
        assert "only apply to the vacuum action" in captured.err


class TestCacheDiagnostics:
    """Satellite: missing/corrupt stores get clean diagnostics, no traceback."""

    @pytest.mark.parametrize("action", ["info", "vacuum", "clear"])
    def test_missing_path_is_a_clean_error(self, capsys, tmp_path, action):
        code = main(["cache", action, str(tmp_path / "absent.db")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no persistent store at" in captured.err
        assert "Traceback" not in captured.err
        assert not (tmp_path / "absent.db").exists()  # info must not create one

    def test_corrupt_store_info_exits_nonzero_with_status(self, capsys, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"this is not a sqlite file, not even close....")
        code = main(["cache", "info", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "(unavailable)" in captured.out
        assert "sessions fall back to in-memory caching" in captured.err
        assert "Traceback" not in captured.err

    def test_info_reports_the_breaker(self, capsys, tmp_path):
        from repro.engine.persist import PersistentCache

        path = tmp_path / "store.db"
        PersistentCache(path).close()
        code = main(["cache", "info", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "breaker:  closed (0 opens, 0 half-opens, 0 closes)" in captured.out


class TestChaosCommand:
    def test_small_campaign_exits_zero_and_reports_the_invariant(self, capsys):
        code = main(
            ["chaos", "--cases", "12", "--seed", "2", "--schedule", "worker", "--jobs", "2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "chaos campaign (worker): 12 decisions" in captured.out
        assert "0 silently wrong" in captured.out
        assert "invariant holds" in captured.out


class TestDeadlineFlag:
    def test_deadline_degrades_batch_entries_honestly(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        code = main(["fuzz", "--cases", "3", "--seed", "1", "--save-corpus", str(corpus)])
        capsys.readouterr()
        assert code == 0
        # A 1ms budget is exhausted during admission for at least the
        # non-memoized first decision; every degraded entry must say so
        # rather than claim "not contained".
        code = main(["--deadline-ms", "1", "decide", "--batch", str(corpus)])
        captured = capsys.readouterr()
        assert code == 0  # degraded is honest, not an error
        assert "degraded (deadline)" in captured.out
        assert "degraded," in captured.out.splitlines()[-1]

    def test_generous_deadline_output_matches_undeadlined_run(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        assert main(["fuzz", "--cases", "4", "--seed", "3", "--save-corpus", str(corpus)]) == 0
        capsys.readouterr()
        import re

        def run(argv):
            code = main(argv)
            out = capsys.readouterr().out
            return code, re.sub(r"\[\d+\.\dms\]", "[ms]", out)

        plain = run(["decide", "--batch", str(corpus)])
        bounded = run(["--deadline-ms", "600000", "decide", "--batch", str(corpus)])
        assert plain == bounded
