"""End-to-end reproduction of every worked example and claim in the paper.

Each test class corresponds to one experiment of DESIGN.md's per-experiment
index (E1-E5, E8, E10); the scaling experiments E6/E7/E9 live in the
benchmark harness.
"""

from fractions import Fraction

from repro.containment.set_containment import is_set_contained
from repro.core.decision import decide_bag_containment
from repro.core.encoding import encode_most_general
from repro.core.probe_tuples import probe_tuples, reduced_probe_tuples
from repro.core.reductions import three_colorability_instance
from repro.diophantine.solver import decide_mpi
from repro.evaluation.bag_evaluation import evaluate_bag
from repro.relational.terms import Constant
from repro.workloads.graphs import complete_graph, cycle_graph, is_three_colorable
from repro.workloads.paper_examples import (
    section2_bag,
    section2_expected_answers,
    section2_q1,
    section2_q2,
    section2_q3,
    section2_query,
    section3_containee,
    section3_containing,
    section3_probe_example_query,
    section4_mpi_solutions,
)


class TestE1BagEvaluation:
    """Section 2 worked example: q^µ = {(c1,c2)^10, (c1,c5)^30}."""

    def test_the_answer_bag_matches_the_paper(self):
        answers = evaluate_bag(section2_query(), section2_bag())
        assert dict(answers.items()) == {
            tuple(answer): count for answer, count in section2_expected_answers().items()
        }


class TestE2ContainmentExamples:
    """The containment statements (1)-(3) at the end of Section 2."""

    def test_statement_1(self):
        assert decide_bag_containment(section2_q1(), section2_q2()).contained
        assert is_set_contained(section2_q2(), section2_q1())
        assert not decide_bag_containment(section2_q2(), section2_q1()).contained

    def test_statement_2(self):
        assert decide_bag_containment(section2_q1(), section2_q3()).contained
        assert decide_bag_containment(section2_q2(), section2_q3()).contained
        assert is_set_contained(section2_q1(), section2_q3())
        assert is_set_contained(section2_q2(), section2_q3())

    def test_statement_3(self):
        assert not is_set_contained(section2_q3(), section2_q1())
        assert not is_set_contained(section2_q3(), section2_q2())

    def test_statement_1_counterexample_matches_the_paper_bag(self):
        """The paper refutes q2 ⊑b q1 on {R^2(c1,c2), P(c2,c2)} with 8 > 4."""
        result = decide_bag_containment(section2_q2(), section2_q1())
        assert result.counterexample is not None
        # Our counterexample need not be the same bag, but it must be verified
        # and exhibit a strictly larger containee multiplicity.
        assert result.counterexample.containee_multiplicity > result.counterexample.containing_multiplicity


class TestE3ProbeTuples:
    """Section 3: the 16 probe tuples and the 10 non-isomorphic ones."""

    def test_counts(self):
        query = section3_probe_example_query()
        assert len(probe_tuples(query)) == 16
        assert len(reduced_probe_tuples(query)) == 10


class TestE4Encoding:
    """Definitions 3.2/3.3: the monomial and polynomial of the running pair."""

    def test_monomial_and_polynomial_values_match_the_paper(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        # Evaluate both sides on the paper's solutions: the polynomial and
        # monomial values must be exactly those computed in Section 4.
        values = {}
        for point_by_atom in [
            {"R(^x1, ^x2)": 1, "R(c1, ^x2)": 4, "R(^x1, c2)": 3},
            {"R(^x1, ^x2)": 1, "R(c1, ^x2)": 9, "R(^x1, c2)": 3},
        ]:
            point = tuple(point_by_atom[str(atom)] for atom in encoding.atoms)
            values[tuple(sorted(point_by_atom.values()))] = (
                encoding.polynomial.evaluate(point),
                encoding.monomial.evaluate(point),
            )
        assert values[(1, 3, 4)] == (98, 108)
        assert values[(1, 3, 9)] == (Fraction(1 + 81 * 2), Fraction(1 * 9 * 27))

    def test_three_containment_mappings(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        assert encoding.num_mappings == 3


class TestE5MpiDecision:
    """Section 4: the worked 3-MPI, its linear system, and its solutions."""

    def test_paper_solutions_solve_the_encoded_inequality(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        by_atom = {str(atom): index for index, atom in enumerate(encoding.atoms)}
        for u1, u2, u3 in section4_mpi_solutions():
            point = [0, 0, 0]
            point[by_atom["R(^x1, ^x2)"]] = u1
            point[by_atom["R(c1, ^x2)"]] = u2
            point[by_atom["R(^x1, c2)"]] = u3
            assert encoding.inequality.is_solution(tuple(point))

    def test_the_decision_produces_a_verified_witness_and_refutes_containment(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        decision = decide_mpi(encoding.inequality)
        assert decision.solvable
        assert encoding.inequality.is_solution(decision.witness)
        result = decide_bag_containment(section3_containee(), section3_containing())
        assert not result.contained
        assert result.counterexample is not None
        assert result.counterexample.verify(section3_containee(), section3_containing())


class TestE8Hardness:
    """Theorem 5.4: 3-colourability coincides with the reduced bag containment."""

    def test_k3_and_k4(self):
        for edges in (complete_graph(3), complete_graph(4), cycle_graph(5)):
            containee, containing = three_colorability_instance(edges)
            assert (
                decide_bag_containment(containee, containing).contained
                == is_three_colorable(edges)
            )


class TestE10SemanticsRelations:
    """Bag containment implies set containment; bag-set equals set containment."""

    def test_bag_implies_set_on_the_paper_pairs(self):
        pairs = [
            (section2_q1(), section2_q2()),
            (section2_q2(), section2_q1()),
            (section2_q1(), section2_q3()),
            (section2_q2(), section2_q3()),
        ]
        for containee, containing in pairs:
            if decide_bag_containment(containee, containing).contained:
                assert is_set_contained(containee, containing)

    def test_set_containment_does_not_imply_bag_containment(self):
        assert is_set_contained(section2_q2(), section2_q1())
        assert not decide_bag_containment(section2_q2(), section2_q1()).contained
