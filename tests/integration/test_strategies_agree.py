"""Integration tests: all decision paths agree — via the differential oracles.

The ad-hoc pairwise asserts this file used to carry are now one call into
:mod:`repro.verify.oracles`: a single oracle run covers every strategy ×
Diophantine path × backend combination, replays every counterexample
certificate, and cross-checks positive verdicts against the refuter
baselines and set semantics.  The tests below only pick the workloads.
"""

import pytest

from repro.core.decision import decide_via_most_general_probe
from repro.verify.corpus import BUILTIN_PAIR_TEXTS, builtin_pairs
from repro.verify.oracles import OracleConfig, run_differential_oracle
from repro.workloads.random_queries import (
    random_adversarial_pair,
    random_containment_pair,
    random_unrelated_pair,
)
from repro.workloads.structured import (
    amplified_query,
    chain_containment_pair,
    projection_free_chain,
    star_containment_pair,
)

#: Chain/star pairs grow exponentially many probe tuples, so the exhaustive
#: strategies are out; the structured families differential-test the
#: most-general path across both backends and both Diophantine routes.
FAST_ORACLE = OracleConfig(strategies=("most-general",))


def assert_oracle_clean(containee, containing, config=None):
    report = run_differential_oracle(containee, containing, config)
    assert report.ok, report.describe()
    assert report.consensus is not None
    return report


class TestStrategyAgreement:
    @pytest.mark.parametrize("pair_index", range(len(BUILTIN_PAIR_TEXTS)))
    def test_all_paths_agree_on_hand_written_pairs(self, pair_index):
        containee, containing = builtin_pairs()[pair_index]
        assert_oracle_clean(containee, containing)

    @pytest.mark.parametrize("seed", range(10))
    def test_all_paths_agree_on_random_containment_pairs(self, seed):
        containee, containing = random_containment_pair(seed, num_atoms=3, head_size=2)
        assert_oracle_clean(containee, containing)

    @pytest.mark.parametrize("seed", range(10))
    def test_all_paths_agree_on_adversarial_boundary_pairs(self, seed):
        containee, containing = random_adversarial_pair(seed, num_atoms=3, head_size=2)
        assert_oracle_clean(containee, containing)

    @pytest.mark.parametrize("seed", range(8))
    def test_all_paths_agree_on_unrelated_pairs(self, seed):
        containee, containing = random_unrelated_pair(seed, num_atoms=3, head_size=2)
        if not containee.is_projection_free():
            pytest.skip("generator produced a non-projection-free containee")
        assert_oracle_clean(containee, containing)


class TestStructuredFamilies:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_chain_pairs_scale(self, length):
        containee, containing = chain_containment_pair(length)
        report = assert_oracle_clean(containee, containing, FAST_ORACLE)
        assert report.consensus is True

    @pytest.mark.parametrize("rays", [1, 2, 3])
    def test_star_pairs_scale(self, rays):
        containee, containing = star_containment_pair(rays)
        report = assert_oracle_clean(containee, containing, FAST_ORACLE)
        assert report.consensus is True

    @pytest.mark.parametrize("factor", [2, 3, 5])
    def test_amplification_direction(self, factor):
        chain = projection_free_chain(2)
        amplified = amplified_query(chain, factor)
        assert decide_via_most_general_probe(chain, amplified).contained
        report = assert_oracle_clean(amplified, chain, FAST_ORACLE)
        assert report.consensus is False
