"""Integration tests: all decision paths agree with each other and with the baselines."""

import pytest

from repro.baselines.refuters import bounded_bag_refuter
from repro.containment.set_containment import is_set_contained
from repro.core.decision import (
    decide_via_all_probes,
    decide_via_most_general_probe,
)
from repro.queries.parser import parse_cq
from repro.workloads.random_queries import random_containment_pair, random_unrelated_pair
from repro.workloads.structured import (
    amplified_query,
    chain_containment_pair,
    projection_free_chain,
    star_containment_pair,
)


def hand_written_pairs():
    texts = [
        ("q1(x) <- R(x, x)", "q2(x) <- R(x, x)"),
        ("q1(x) <- R(x, x)", "q2(x) <- R^2(x, x)"),
        ("q1(x) <- R^2(x, x)", "q2(x) <- R(x, x)"),
        ("q1(x) <- R(x, x)", "q2(x) <- R(x, y)"),
        ("q1(x) <- R(x, a)", "q2(x) <- R(x, y), R(x, a)"),
        ("q1(x, y) <- R(x, y), S(y, x)", "q2(x, y) <- R(x, y), S(y, z)"),
        ("q1(x, y) <- R(x, y), S(y, x)", "q2(x, y) <- R(x, y), S(z, x)"),
        ("q1(x, y) <- R^2(x, y), S(y, x)", "q2(x, y) <- R(x, y), S(y, x)"),
        ("q1(x) <- R(x, a), R(x, b)", "q2(x) <- R(x, y)"),
        ("q1(x) <- R(x, a), R(x, b)", "q2(x) <- R(x, y), R(x, z)"),
    ]
    return [(parse_cq(left), parse_cq(right)) for left, right in texts]


class TestStrategyAgreement:
    @pytest.mark.parametrize("pair_index", range(10))
    def test_most_general_and_all_probes_agree_on_hand_written_pairs(self, pair_index):
        containee, containing = hand_written_pairs()[pair_index]
        most_general = decide_via_most_general_probe(containee, containing)
        all_probes = decide_via_all_probes(containee, containing)
        assert most_general.contained == all_probes.contained

    @pytest.mark.parametrize("seed", range(10))
    def test_most_general_and_all_probes_agree_on_random_containment_pairs(self, seed):
        containee, containing = random_containment_pair(seed, num_atoms=3, head_size=2)
        most_general = decide_via_most_general_probe(containee, containing)
        all_probes = decide_via_all_probes(containee, containing)
        assert most_general.contained == all_probes.contained

    @pytest.mark.parametrize("seed", range(10))
    def test_lp_and_exact_agree_on_random_pairs(self, seed):
        containee, containing = random_containment_pair(seed + 100, num_atoms=3, head_size=2)
        exact = decide_via_most_general_probe(containee, containing, use_lp=False)
        fast = decide_via_most_general_probe(containee, containing, use_lp=True)
        assert exact.contained == fast.contained


class TestSoundnessAgainstBaselines:
    @pytest.mark.parametrize("seed", range(8))
    def test_positive_verdicts_survive_bounded_refutation(self, seed):
        containee, containing = random_containment_pair(seed, num_atoms=3, head_size=2)
        result = decide_via_most_general_probe(containee, containing)
        if result.contained:
            assert not bounded_bag_refuter(containee, containing, max_multiplicity=3).refuted
            assert is_set_contained(containee, containing)

    @pytest.mark.parametrize("seed", range(8))
    def test_negative_verdicts_are_certified(self, seed):
        containee, containing = random_unrelated_pair(seed, num_atoms=3, head_size=2)
        if not containee.is_projection_free():
            pytest.skip("generator produced a non-projection-free containee")
        result = decide_via_most_general_probe(containee, containing)
        if not result.contained:
            assert result.counterexample is not None
            assert result.counterexample.verify(containee, containing)


class TestStructuredFamilies:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_chain_pairs_scale(self, length):
        containee, containing = chain_containment_pair(length)
        assert decide_via_most_general_probe(containee, containing).contained

    @pytest.mark.parametrize("rays", [1, 2, 3])
    def test_star_pairs_scale(self, rays):
        containee, containing = star_containment_pair(rays)
        assert decide_via_most_general_probe(containee, containing).contained

    @pytest.mark.parametrize("factor", [2, 3, 5])
    def test_amplification_direction(self, factor):
        chain = projection_free_chain(2)
        amplified = amplified_query(chain, factor)
        assert decide_via_most_general_probe(chain, amplified).contained
        assert not decide_via_most_general_probe(amplified, chain).contained
