"""Certificate replay: every negative verdict must verify under bag evaluation.

For each hand-written pair and each of the three decision strategies, any
:class:`ContainmentCounterexample` the strategy produces is replayed through
the bag-evaluation engine directly (not just via ``verify``), pinning the
end-to-end guarantee of Theorem 4.1's construction: the stored
multiplicities are exactly what Equation 2 computes, and they witness a
strict violation.
"""

import pytest

from repro.core.decision import (
    decide_via_all_probes,
    decide_via_bounded_guess,
    decide_via_most_general_probe,
)
from repro.evaluation.bag_evaluation import bag_multiplicity
from repro.verify.corpus import BUILTIN_PAIR_TEXTS, builtin_pairs

STRATEGY_FUNCTIONS = {
    "most-general": decide_via_most_general_probe,
    "all-probes": decide_via_all_probes,
    "bounded-guess": decide_via_bounded_guess,
}


@pytest.mark.parametrize("pair_index", range(len(BUILTIN_PAIR_TEXTS)))
@pytest.mark.parametrize("strategy", sorted(STRATEGY_FUNCTIONS))
def test_negative_verdicts_replay_under_direct_bag_evaluation(pair_index, strategy):
    containee, containing = builtin_pairs()[pair_index]
    result = STRATEGY_FUNCTIONS[strategy](containee, containing)
    if result.contained:
        assert result.counterexample is None
        return

    certificate = result.counterexample
    assert certificate is not None, f"{strategy} produced a bare negative verdict"

    # Replay both multiplicities from scratch with the evaluation engine.
    left = bag_multiplicity(containee, certificate.bag, certificate.probe)
    right = bag_multiplicity(containing, certificate.bag, certificate.probe)
    assert left == certificate.containee_multiplicity
    assert right == certificate.containing_multiplicity
    assert left > right, "certificate does not witness a violation"
    assert certificate.margin() == left - right >= 1

    # The library's own verifier agrees.
    assert certificate.verify(containee, containing)


@pytest.mark.parametrize("pair_index", range(len(BUILTIN_PAIR_TEXTS)))
def test_strategies_produce_equally_valid_certificates(pair_index):
    """All strategies that answer 'not contained' must all ship replayable bags."""
    containee, containing = builtin_pairs()[pair_index]
    verdicts = {}
    for strategy, decide in STRATEGY_FUNCTIONS.items():
        result = decide(containee, containing)
        verdicts[strategy] = result.contained
        if not result.contained:
            assert result.counterexample is not None
            assert result.counterexample.verify(containee, containing)
    assert len(set(verdicts.values())) == 1, f"strategies disagree: {verdicts}"
