"""Unit tests for the bag-containment decision procedures."""

import pytest

from repro.core.decision import (
    STRATEGIES,
    are_bag_equivalent,
    decide_bag_containment,
    decide_via_all_probes,
    decide_via_bounded_guess,
    decide_via_most_general_probe,
    is_bag_contained,
)
from repro.exceptions import ContainmentError, NotProjectionFreeError
from repro.queries.parser import parse_cq
from repro.workloads.paper_examples import (
    section2_q1,
    section2_q2,
    section2_q3,
    section3_containee,
    section3_containing,
)


class TestPaperSection2Examples:
    """The containment statements (1)-(3) listed at the end of Section 2."""

    def test_q1_is_bag_contained_in_q2(self):
        assert is_bag_contained(section2_q1(), section2_q2())

    def test_q2_is_not_bag_contained_in_q1(self):
        result = decide_bag_containment(section2_q2(), section2_q1())
        assert not result.contained
        assert result.counterexample is not None
        assert result.counterexample.verify(section2_q2(), section2_q1())

    def test_q1_and_q2_are_bag_contained_in_q3(self):
        assert is_bag_contained(section2_q1(), section2_q3())
        assert is_bag_contained(section2_q2(), section2_q3())

    def test_section3_pair_is_not_contained(self):
        result = decide_bag_containment(section3_containee(), section3_containing())
        assert not result.contained
        assert result.counterexample is not None
        assert result.counterexample.verify(section3_containee(), section3_containing())


class TestBasicLaws:
    def test_reflexivity(self):
        for query_text in [
            "q(x) <- R(x, x)",
            "q(x, y) <- R(x, y), S(y, x)",
            "q(x) <- R^3(x, x), S(x, a)",
        ]:
            query = parse_cq(query_text)
            assert is_bag_contained(query, query)

    def test_raising_a_multiplicity_on_the_containing_side_preserves_containment(self):
        containee = parse_cq("q(x, y) <- R(x, y)")
        containing = parse_cq("q(x, y) <- R^2(x, y)")
        assert is_bag_contained(containee, containing)
        assert not is_bag_contained(containing, containee)

    def test_extra_atom_on_the_containing_side_requires_it_to_be_implied(self):
        containee = parse_cq("q(x) <- R(x, x)")
        containing = parse_cq("q(x) <- R(x, x), S(x)")
        # S(x) can never be satisfied on the canonical instance of q1.
        assert not is_bag_contained(containee, containing)

    def test_existential_relaxation_is_contained(self):
        # Relaxing a join variable into an existential only increases the
        # multiplicity of every answer.
        containee = parse_cq("q(x, y) <- R(x, y), T(y)")
        containing = parse_cq("q(x, y) <- R(x, z), T(y)")
        assert is_bag_contained(containee, containing)
        assert not is_bag_contained(
            parse_cq("q(x, y) <- R^2(x, y), T(y)"), parse_cq("q(x, y) <- R(x, z), T(y)")
        )

    def test_existential_copy_dominates_a_duplicate_atom(self):
        # q2 multiplies by the full out-degree of x, which dominates the
        # single-fact square of q1 on every bag over q1's canonical instance;
        # Theorem 5.3 therefore declares the containment to hold.
        containee = parse_cq("q(x, y) <- R^2(x, y)")
        containing = parse_cq("q(x, y) <- R(x, y), R(x, z)")
        assert is_bag_contained(containee, containing)

    def test_arity_mismatch_is_never_contained(self):
        containee = parse_cq("q(x, y) <- R(x, y)")
        containing = parse_cq("q(x) <- R(x, x)")
        result = decide_bag_containment(containee, containing)
        assert not result.contained
        assert result.counterexample is not None

    def test_repeated_head_variable_in_the_containing_query(self):
        containee = parse_cq("q(x, y) <- R(x, y)")
        containing = parse_cq("q(x, x) <- R(x, x)")
        assert not is_bag_contained(containee, containing)

    def test_containee_must_be_projection_free(self):
        with pytest.raises(NotProjectionFreeError):
            decide_bag_containment(parse_cq("q(x) <- R(x, y)"), parse_cq("q(x) <- R(x, x)"))

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ContainmentError):
            decide_bag_containment(
                parse_cq("q(x) <- R(x, x)"), parse_cq("q(x) <- R(x, x)"), strategy="magic"
            )

    def test_bag_containment_implies_set_containment(self):
        from repro.containment.set_containment import is_set_contained

        pairs = [
            (section2_q1(), section2_q2()),
            (section2_q1(), section2_q3()),
            (parse_cq("q(x, y) <- R(x, y), T(y)"), parse_cq("q(x, y) <- R(x, z), T(y)")),
        ]
        for containee, containing in pairs:
            assert is_bag_contained(containee, containing)
            assert is_set_contained(containee, containing)


class TestEquivalence:
    def test_identical_queries_are_equivalent(self):
        q = parse_cq("q(x) <- R^2(x, x), S(x, a)")
        assert are_bag_equivalent(q, q)

    def test_set_equivalent_queries_need_not_be_bag_equivalent(self):
        assert not are_bag_equivalent(section2_q1(), section2_q2())

    def test_atom_order_is_irrelevant(self):
        first = parse_cq("q(x, y) <- R(x, y), S(y)")
        second = parse_cq("q(x, y) <- S(y), R(x, y)")
        assert are_bag_equivalent(first, second)


class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_agree_on_small_pairs(self, strategy):
        pairs = [
            (section2_q1(), section2_q2(), True),
            (section2_q2(), section2_q1(), False),
            (parse_cq("q(x) <- R(x, x)"), parse_cq("q(x) <- R(x, x), R(x, y)"), True),
            (parse_cq("q(x) <- R(x, a)"), parse_cq("q(x) <- R(x, y)"), True),
            (parse_cq("q(x) <- R(x, a)"), parse_cq("q(x) <- R(x, a), R(x, b)"), False),
        ]
        for containee, containing, expected in pairs:
            result = decide_bag_containment(containee, containing, strategy=strategy)
            assert result.contained == expected, (strategy, str(containee), str(containing))
            assert result.strategy == strategy

    def test_lp_fast_path_agrees_with_exact(self):
        pairs = [
            (section2_q1(), section2_q2()),
            (section2_q2(), section2_q1()),
            (section3_containee(), section3_containing()),
        ]
        for containee, containing in pairs:
            exact = decide_via_most_general_probe(containee, containing, use_lp=False)
            fast = decide_via_most_general_probe(containee, containing, use_lp=True)
            assert exact.contained == fast.contained

    def test_all_probes_path_returns_one_encoding_per_probe_on_positive_instances(self):
        containee = parse_cq("q(x) <- R(x, a)")
        containing = parse_cq("q(x) <- R(x, y)")
        result = decide_via_all_probes(containee, containing)
        assert result.contained
        # Probe domain is {x̂, a}: two probe tuples, hence two encodings.
        assert len(result.encodings) == 2

    def test_bounded_guess_enumeration_cap(self):
        containee = section3_containee()
        containing = section3_containing()
        with pytest.raises(ContainmentError):
            decide_via_bounded_guess(containee, containing, max_candidates=10)

    def test_bounded_guess_with_explicit_bound_finds_the_violation(self):
        result = decide_via_bounded_guess(section2_q2(), section2_q1(), bound=4)
        assert not result.contained
        assert result.counterexample is not None


class TestResultObject:
    def test_positive_result_contains_the_encoding_and_decision(self):
        result = decide_bag_containment(section2_q1(), section2_q2())
        assert result.contained
        assert len(result.encodings) == 1
        assert len(result.mpi_decisions) == 1
        assert not result.mpi_decisions[0].solvable
        assert result.counterexample is None
        assert "⊑b" in result.explain()

    def test_negative_result_is_verified(self):
        result = decide_bag_containment(section2_q2(), section2_q1())
        assert result.verified
        assert result.failing_probe is not None
        assert "⋢b" in result.explain()
        assert "counterexample" in result.explain()
