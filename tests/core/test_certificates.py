"""Unit tests for counterexample certificates."""

import pytest

from repro.core.certificates import (
    ContainmentCounterexample,
    counterexample_from_witness,
    uniform_counterexample,
)
from repro.core.encoding import encode_most_general
from repro.exceptions import CertificateError
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import CanonicalConstant
from repro.workloads.paper_examples import section2_q1, section2_q2


def negative_encoding():
    """Encoding of ``q2 ⊑b q1`` (which fails) at the most-general probe tuple."""
    return encode_most_general(section2_q2(), section2_q1())


class TestCounterexampleFromWitness:
    def test_witness_builds_a_verified_counterexample(self):
        encoding = negative_encoding()
        # (2, 1): R-multiplicity 2, P-multiplicity 1 — the bag used in the paper.
        witness_order = tuple(
            2 if atom.relation == "R" else 1 for atom in encoding.atoms
        )
        certificate = counterexample_from_witness(encoding, witness_order)
        assert certificate.containee_multiplicity == 8
        assert certificate.containing_multiplicity == 4
        assert certificate.margin() == 4
        assert certificate.verify(section2_q2(), section2_q1())

    def test_non_solution_witnesses_are_rejected(self):
        encoding = negative_encoding()
        with pytest.raises(CertificateError):
            counterexample_from_witness(encoding, (1,) * encoding.dimension)

    def test_wrong_dimension_is_rejected(self):
        encoding = negative_encoding()
        with pytest.raises(CertificateError):
            counterexample_from_witness(encoding, (2,))

    def test_negative_components_are_rejected(self):
        encoding = negative_encoding()
        with pytest.raises(CertificateError):
            counterexample_from_witness(encoding, (-1, 2))

    def test_describe_mentions_the_multiplicities(self):
        encoding = negative_encoding()
        witness = tuple(2 if atom.relation == "R" else 1 for atom in encoding.atoms)
        text = counterexample_from_witness(encoding, witness).describe()
        assert "8" in text and "4" in text


class TestUniformCounterexample:
    def test_non_unifiable_probe_has_the_all_ones_counterexample(self):
        containee = parse_cq("q1(x1, x2) <- R(x1, x2)")
        containing = parse_cq("q2(x1, x1) <- R(x1, x1)")
        encoding = encode_most_general(containee, containing)
        certificate = uniform_counterexample(encoding)
        assert certificate.containee_multiplicity == 1
        assert certificate.containing_multiplicity == 0
        assert certificate.verify(containee, containing)


class TestVerification:
    def test_verify_detects_tampered_multiplicities(self):
        containee = parse_cq("q1(x, y) <- R(x, y)")
        containing = parse_cq("q2(x, y) <- R^2(x, y)")
        bag = BagInstance({Atom("R", (CanonicalConstant("x"), CanonicalConstant("y"))): 3})
        tampered = ContainmentCounterexample(
            probe=(CanonicalConstant("x"), CanonicalConstant("y")),
            bag=bag,
            containee_multiplicity=99,
            containing_multiplicity=0,
        )
        with pytest.raises(CertificateError):
            tampered.verify(containee, containing)

    def test_verify_returns_false_for_a_consistent_non_violation(self):
        containee = parse_cq("q1(x, y) <- R(x, y)")
        containing = parse_cq("q2(x, y) <- R^2(x, y)")
        bag = BagInstance({Atom("R", (CanonicalConstant("x"), CanonicalConstant("y"))): 3})
        honest = ContainmentCounterexample(
            probe=(CanonicalConstant("x"), CanonicalConstant("y")),
            bag=bag,
            containee_multiplicity=3,
            containing_multiplicity=9,
        )
        assert honest.verify(containee, containing) is False
