"""Unit tests for probe tuples (Definition 3.1)."""

from repro.core.probe_tuples import (
    canonical_probe_representative,
    is_probe_tuple,
    most_general_probe_tuple,
    probe_domain,
    probe_tuples,
    reduced_probe_tuples,
)
from repro.queries.parser import parse_cq
from repro.relational.terms import CanonicalConstant, Constant
from repro.workloads.paper_examples import section3_probe_example_query

x1_hat, x2_hat = CanonicalConstant("x1"), CanonicalConstant("x2")
c1, c2 = Constant("c1"), Constant("c2")


class TestPaperExample:
    def test_sixteen_probe_tuples(self):
        query = section3_probe_example_query()
        tuples = probe_tuples(query)
        assert len(tuples) == 16
        domain = {x1_hat, x2_hat, c1, c2}
        assert set(tuples) == {(a, b) for a in domain for b in domain}

    def test_ten_reduced_probe_tuples(self):
        query = section3_probe_example_query()
        reduced = set(reduced_probe_tuples(query))
        assert len(reduced) == 10
        # Every probe tuple must be isomorphic to exactly one representative.
        representatives = {canonical_probe_representative(probe) for probe in probe_tuples(query)}
        assert len(representatives) == 10

    def test_probe_domain(self):
        query = section3_probe_example_query()
        assert set(probe_domain(query)) == {x1_hat, x2_hat, c1, c2}


class TestMostGeneralProbeTuple:
    def test_is_the_canonical_head(self):
        query = parse_cq("q(x1, x2) <- R(x1, x2), R(c1, x2)")
        assert most_general_probe_tuple(query) == (x1_hat, x2_hat)

    def test_repeated_head_variables(self):
        query = parse_cq("q(x1, x1) <- R(x1, x1)")
        assert most_general_probe_tuple(query) == (x1_hat, x1_hat)

    def test_boolean_query_has_the_empty_probe(self):
        query = parse_cq("q() <- R(c1, c2)")
        assert most_general_probe_tuple(query) == ()
        assert probe_tuples(query) == ((),)

    def test_most_general_probe_is_a_probe_tuple(self):
        query = section3_probe_example_query()
        assert is_probe_tuple(query, most_general_probe_tuple(query))


class TestUnifiabilityFilter:
    def test_repeated_head_variables_restrict_probe_tuples(self):
        query = parse_cq("q(x1, x1) <- R(x1, c1)")
        tuples = probe_tuples(query)
        # Only pairs with equal components are unifiable with (x1, x1).
        assert all(first == second for first, second in tuples)
        assert (CanonicalConstant("x1"), CanonicalConstant("x1")) in tuples
        assert (c1, c1) in tuples
        assert len(tuples) == 2

    def test_is_probe_tuple_checks_domain_and_arity(self):
        query = parse_cq("q(x1) <- R(x1, c1)")
        assert is_probe_tuple(query, (c1,))
        assert not is_probe_tuple(query, (Constant("unknown"),))
        assert not is_probe_tuple(query, (c1, c1))


class TestCanonicalRepresentative:
    def test_renaming_is_order_of_first_appearance(self):
        probe = (x2_hat, x1_hat, x2_hat, c1)
        representative = canonical_probe_representative(probe)
        assert representative == (
            CanonicalConstant("#1"),
            CanonicalConstant("#2"),
            CanonicalConstant("#1"),
            c1,
        )

    def test_isomorphic_tuples_share_a_representative(self):
        assert canonical_probe_representative((x1_hat, x2_hat)) == canonical_probe_representative(
            (x2_hat, x1_hat)
        )
        assert canonical_probe_representative((x1_hat, c1)) == canonical_probe_representative(
            (x2_hat, c1)
        )
        assert canonical_probe_representative((x1_hat, c1)) != canonical_probe_representative(
            (x1_hat, c2)
        )

    def test_probe_tuples_with_existential_variables_in_domain(self):
        # The probe domain uses *all* variables of the query, even for
        # non-projection-free queries (the canonical instance freezes them all).
        query = parse_cq("q(x1) <- R(x1, y1)")
        domain = set(probe_domain(query))
        assert CanonicalConstant("y1") in domain
        assert len(probe_tuples(query)) == 2
