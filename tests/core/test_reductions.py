"""Unit tests for the hardness and polynomial-encoding reductions."""

import pytest

from repro.core.decision import decide_bag_containment
from repro.core.reductions import (
    bag_for_polynomial_point,
    graph_query,
    polynomial_pair_to_ucqs,
    polynomial_to_ucq,
    three_colorability_instance,
    triangle_query,
)
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.evaluation.bag_evaluation import evaluate_bag_ucq
from repro.exceptions import WorkloadError
from repro.workloads.graphs import (
    bipartite_graph,
    complete_graph,
    cycle_graph,
    is_three_colorable,
)


class TestGraphQueries:
    def test_triangle_query_is_ground_and_boolean(self):
        query = triangle_query()
        assert query.is_ground()
        assert query.is_boolean()
        assert query.is_projection_free()

    def test_graph_query_uses_one_variable_per_vertex(self):
        query = graph_query([(1, 2), (2, 3)])
        assert len(query.variables()) == 3
        assert not query.is_projection_free()

    def test_graph_query_needs_edges(self):
        with pytest.raises(WorkloadError):
            graph_query([])

    def test_self_loops_are_rejected(self):
        with pytest.raises(WorkloadError):
            three_colorability_instance([(1, 1)])


class TestThreeColorabilityReduction:
    @pytest.mark.parametrize(
        "edges, expected",
        [
            (complete_graph(3), True),
            (complete_graph(4), False),
            (cycle_graph(5), True),
            (cycle_graph(4), True),
            (bipartite_graph(2, 2), True),
        ],
    )
    def test_containment_matches_three_colorability(self, edges, expected):
        assert is_three_colorable(edges) == expected
        containee, containing = three_colorability_instance(edges)
        result = decide_bag_containment(containee, containing)
        assert result.contained == expected

    def test_negative_instances_carry_counterexamples(self):
        containee, containing = three_colorability_instance(complete_graph(4))
        result = decide_bag_containment(containee, containing)
        assert not result.contained
        assert result.counterexample is not None
        assert result.counterexample.verify(containee, containing)

    def test_instance_shape(self):
        containee, containing = three_colorability_instance(cycle_graph(3))
        # The containee is the symmetric triangle: six ground edge facts.
        assert len(containee.body_atoms()) == 6
        assert containee.is_ground()
        # The containing query adds the graph's atoms on top of the triangle's.
        assert len(containing.body_atoms()) == 6 + 6


class TestPolynomialEncoding:
    def test_single_monomial_evaluation(self):
        # P(u1, u2) = u1^2 * u2 encoded as a Boolean UCQ.
        polynomial = Polynomial([Monomial(1, (2, 1))])
        ucq = polynomial_to_ucq(polynomial)
        for point in [(1, 1), (2, 3), (3, 0), (0, 5)]:
            bag = bag_for_polynomial_point(point)
            assert evaluate_bag_ucq(ucq, bag)[()] == polynomial.evaluate(point)

    def test_coefficients_become_repeated_disjuncts(self):
        polynomial = Polynomial([Monomial(3, (1,))])
        ucq = polynomial_to_ucq(polynomial)
        assert len(ucq) == 3
        bag = bag_for_polynomial_point((4,))
        assert evaluate_bag_ucq(ucq, bag)[()] == 12

    def test_multi_monomial_polynomial(self):
        polynomial = Polynomial.from_terms([(1, (2, 0)), (2, (0, 3))])
        ucq = polynomial_to_ucq(polynomial)
        for point in [(1, 1), (2, 2), (5, 1), (0, 2)]:
            bag = bag_for_polynomial_point(point)
            assert evaluate_bag_ucq(ucq, bag)[()] == polynomial.evaluate(point)

    def test_pair_encoding_reflects_pointwise_comparison(self):
        # P1 = u^2, P2 = 2u: P1 <= P2 fails at u = 3 and holds at u = 1, 2.
        left = Polynomial([Monomial(1, (2,))])
        right = Polynomial([Monomial(2, (1,))])
        ucq_left, ucq_right = polynomial_pair_to_ucqs(left, right)
        for value in (1, 2, 3, 4):
            bag = bag_for_polynomial_point((value,))
            left_count = evaluate_bag_ucq(ucq_left, bag)[()]
            right_count = evaluate_bag_ucq(ucq_right, bag)[()]
            assert (left_count <= right_count) == (value**2 <= 2 * value)

    def test_constant_terms_are_rejected(self):
        with pytest.raises(WorkloadError):
            polynomial_to_ucq(Polynomial.from_terms([(1, (0, 0))]))

    def test_zero_polynomial_is_rejected(self):
        with pytest.raises(WorkloadError):
            polynomial_to_ucq(Polynomial.zero(2))

    def test_non_natural_coefficients_are_rejected(self):
        from fractions import Fraction

        with pytest.raises(WorkloadError):
            polynomial_to_ucq(Polynomial([Monomial(Fraction(1, 2), (1,))]))

    def test_negative_points_are_rejected(self):
        with pytest.raises(WorkloadError):
            bag_for_polynomial_point((-1,))
