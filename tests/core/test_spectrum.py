"""Unit tests for the containment-spectrum comparison API."""

import pytest

from repro.core.spectrum import ContainmentSpectrum, Relationship, compare
from repro.queries.parser import parse_cq
from repro.workloads.paper_examples import section2_q1, section2_q2


class TestCompare:
    def test_identical_queries_are_equivalent(self):
        query = parse_cq("q(x, y) <- R(x, y), S^2(y, x)")
        spectrum = compare(query, query.with_name("copy"))
        assert spectrum.relationship is Relationship.EQUIVALENT
        assert spectrum.is_safe_substitution()
        assert spectrum.is_safe_for_distinct()

    def test_paper_pair_is_set_equivalent_only_in_one_bag_direction(self):
        spectrum = compare(section2_q1(), section2_q2())
        assert spectrum.set_forward and spectrum.set_backward
        assert spectrum.bag_forward is True
        assert spectrum.bag_backward is False
        assert spectrum.relationship is Relationship.CONTAINED
        assert not spectrum.is_safe_substitution()
        assert spectrum.is_safe_for_distinct()

    def test_duplicate_join_is_not_bag_comparable_but_set_equivalent(self):
        original = parse_cq("q(x, y) <- R^2(x, y)")
        minimised = parse_cq("q(x, y) <- R(x, y)")
        spectrum = compare(original, minimised)
        # original ⋢b minimised (squares vs single copy), minimised ⊑b original? no:
        # on multiplicity-2 bags the square wins, on multiplicity-1 they tie; the
        # reverse direction also fails since R < R^2 on... actually R ≤ R^2 for
        # multiplicities ≥ 1, so minimised ⊑b original holds.
        assert spectrum.set_forward and spectrum.set_backward
        assert spectrum.bag_forward is False
        assert spectrum.bag_backward is True
        assert spectrum.relationship is Relationship.CONTAINS

    def test_incomparable_queries(self):
        left = parse_cq("q(x) <- R(x, x)")
        right = parse_cq("q(x) <- S(x, x)")
        spectrum = compare(left, right)
        assert spectrum.relationship is Relationship.INCOMPARABLE
        assert not spectrum.is_safe_for_distinct()

    def test_projection_directions_are_reported_as_unknown(self):
        projected = parse_cq("q(x) <- R(x, y)")
        other = parse_cq("q(x) <- R(x, x)")
        spectrum = compare(projected, other)
        # Neither direction has a projection-free containee... the right-to-left
        # direction does (containee = other), so only the forward one is None.
        assert spectrum.bag_forward is None
        assert spectrum.bag_backward is True
        assert spectrum.relationship is Relationship.CONTAINS

    def test_fully_undecidable_directions_fall_back_to_set_information(self):
        left = parse_cq("q(x) <- R(x, y), S(y, z)")
        right = parse_cq("q(x) <- R(x, y), S(y, w)")
        spectrum = compare(left, right)
        assert spectrum.bag_forward is None and spectrum.bag_backward is None
        assert spectrum.set_forward and spectrum.set_backward
        assert spectrum.relationship is Relationship.UNKNOWN

    def test_set_containment_only(self):
        specific = parse_cq("q(x) <- R(x, x), S(x, x)")
        general = parse_cq("q(x) <- R(x, x)")
        spectrum = compare(specific, general)
        assert spectrum.set_forward and not spectrum.set_backward
        # Neither bag direction holds: forward fails because an S fact with
        # multiplicity 2 makes the specific query's count exceed the general
        # one's, backward fails because the general query's canonical instance
        # has no S fact at all.
        assert spectrum.bag_forward is False
        assert spectrum.bag_backward is False
        assert spectrum.relationship is Relationship.SET_CONTAINED_ONLY

    def test_describe_mentions_all_verdicts(self):
        text = compare(section2_q1(), section2_q2()).describe()
        assert "set:" in text and "bag:" in text


#: The full verdict table over (set_forward, set_backward, bag_forward,
#: bag_backward).  Rows where a bag direction claims True while its set
#: direction is False are omitted: bag containment implies set containment,
#: so such spectra cannot arise from compare().  ``None`` marks a direction
#: outside the decidable fragment; when its set containment fails, the bag
#: direction is refuted by implication, and when it holds, the direction is
#: genuinely open and the verdict must not overclaim.
VERDICT_TABLE = [
    # both bag directions decided
    (True, True, True, True, Relationship.EQUIVALENT),
    (True, True, True, False, Relationship.CONTAINED),
    (True, True, False, True, Relationship.CONTAINS),
    (True, True, False, False, Relationship.SET_EQUIVALENT_ONLY),
    (True, False, True, False, Relationship.CONTAINED),
    (True, False, False, False, Relationship.SET_CONTAINED_ONLY),
    (False, True, False, True, Relationship.CONTAINS),
    (False, True, False, False, Relationship.SET_CONTAINED_ONLY),
    (False, False, False, False, Relationship.INCOMPARABLE),
    # forward undecidable, refuted by a failing forward set containment
    (False, True, None, True, Relationship.CONTAINS),
    (False, True, None, False, Relationship.SET_CONTAINED_ONLY),
    (False, False, None, False, Relationship.INCOMPARABLE),
    # backward undecidable, refuted by a failing backward set containment
    (True, False, True, None, Relationship.CONTAINED),
    (True, False, False, None, Relationship.SET_CONTAINED_ONLY),
    (False, False, False, None, Relationship.INCOMPARABLE),
    # forward genuinely open (its set containment holds): never a definite
    # relationship the open direction could contradict
    (True, True, None, True, Relationship.UNKNOWN),
    (True, True, None, False, Relationship.UNKNOWN),
    (True, False, None, False, Relationship.UNKNOWN),
    # backward genuinely open
    (True, True, True, None, Relationship.UNKNOWN),
    (True, True, False, None, Relationship.UNKNOWN),
    (False, True, False, None, Relationship.UNKNOWN),
    # both undecidable
    (True, True, None, None, Relationship.UNKNOWN),
    (True, False, None, None, Relationship.UNKNOWN),
    (False, True, None, None, Relationship.UNKNOWN),
    (False, False, None, None, Relationship.INCOMPARABLE),
]


class TestVerdictTable:
    @pytest.mark.parametrize(
        "set_forward,set_backward,bag_forward,bag_backward,expected", VERDICT_TABLE
    )
    def test_relationship(self, set_forward, set_backward, bag_forward, bag_backward, expected):
        left = parse_cq("q(x) <- R(x, x)")
        spectrum = ContainmentSpectrum(
            left=left,
            right=left.with_name("copy"),
            set_forward=set_forward,
            set_backward=set_backward,
            bag_forward=bag_forward,
            bag_backward=bag_backward,
        )
        assert spectrum.relationship is expected

    def test_table_covers_every_consistent_combination(self):
        rows = {
            (set_f, set_b, bag_f, bag_b)
            for set_f, set_b, bag_f, bag_b, _ in VERDICT_TABLE
        }
        assert len(rows) == len(VERDICT_TABLE)  # no duplicate rows
        consistent = {
            (set_f, set_b, bag_f, bag_b)
            for set_f in (True, False)
            for set_b in (True, False)
            for bag_f in (True, False, None)
            for bag_b in (True, False, None)
            # bag containment implies set containment
            if not (bag_f is True and not set_f) and not (bag_b is True and not set_b)
        }
        assert rows == consistent

    def test_open_directions_never_support_a_definite_verdict(self):
        """The regression pinned here: one-sided ``None`` with the set
        containment holding used to fall through to ``CONTAINED`` /
        ``CONTAINS`` / ``SET_*`` verdicts the open direction could refute."""
        left = parse_cq("q(x) <- R(x, x)")
        for set_f, set_b, bag_f, bag_b, expected in VERDICT_TABLE:
            spectrum = ContainmentSpectrum(
                left=left,
                right=left.with_name("copy"),
                set_forward=set_f,
                set_backward=set_b,
                bag_forward=bag_f,
                bag_backward=bag_b,
            )
            open_forward = bag_f is None and set_f
            open_backward = bag_b is None and set_b
            if open_forward or open_backward:
                assert expected is Relationship.UNKNOWN
                assert spectrum.relationship is Relationship.UNKNOWN
