"""Unit tests for the containment-spectrum comparison API."""

from repro.core.spectrum import Relationship, compare
from repro.queries.parser import parse_cq
from repro.workloads.paper_examples import section2_q1, section2_q2


class TestCompare:
    def test_identical_queries_are_equivalent(self):
        query = parse_cq("q(x, y) <- R(x, y), S^2(y, x)")
        spectrum = compare(query, query.with_name("copy"))
        assert spectrum.relationship is Relationship.EQUIVALENT
        assert spectrum.is_safe_substitution()
        assert spectrum.is_safe_for_distinct()

    def test_paper_pair_is_set_equivalent_only_in_one_bag_direction(self):
        spectrum = compare(section2_q1(), section2_q2())
        assert spectrum.set_forward and spectrum.set_backward
        assert spectrum.bag_forward is True
        assert spectrum.bag_backward is False
        assert spectrum.relationship is Relationship.CONTAINED
        assert not spectrum.is_safe_substitution()
        assert spectrum.is_safe_for_distinct()

    def test_duplicate_join_is_not_bag_comparable_but_set_equivalent(self):
        original = parse_cq("q(x, y) <- R^2(x, y)")
        minimised = parse_cq("q(x, y) <- R(x, y)")
        spectrum = compare(original, minimised)
        # original ⋢b minimised (squares vs single copy), minimised ⊑b original? no:
        # on multiplicity-2 bags the square wins, on multiplicity-1 they tie; the
        # reverse direction also fails since R < R^2 on... actually R ≤ R^2 for
        # multiplicities ≥ 1, so minimised ⊑b original holds.
        assert spectrum.set_forward and spectrum.set_backward
        assert spectrum.bag_forward is False
        assert spectrum.bag_backward is True
        assert spectrum.relationship is Relationship.CONTAINS

    def test_incomparable_queries(self):
        left = parse_cq("q(x) <- R(x, x)")
        right = parse_cq("q(x) <- S(x, x)")
        spectrum = compare(left, right)
        assert spectrum.relationship is Relationship.INCOMPARABLE
        assert not spectrum.is_safe_for_distinct()

    def test_projection_directions_are_reported_as_unknown(self):
        projected = parse_cq("q(x) <- R(x, y)")
        other = parse_cq("q(x) <- R(x, x)")
        spectrum = compare(projected, other)
        # Neither direction has a projection-free containee... the right-to-left
        # direction does (containee = other), so only the forward one is None.
        assert spectrum.bag_forward is None
        assert spectrum.bag_backward is True
        assert spectrum.relationship is Relationship.CONTAINS

    def test_fully_undecidable_directions_fall_back_to_set_information(self):
        left = parse_cq("q(x) <- R(x, y), S(y, z)")
        right = parse_cq("q(x) <- R(x, y), S(y, w)")
        spectrum = compare(left, right)
        assert spectrum.bag_forward is None and spectrum.bag_backward is None
        assert spectrum.set_forward and spectrum.set_backward
        assert spectrum.relationship is Relationship.UNKNOWN

    def test_set_containment_only(self):
        specific = parse_cq("q(x) <- R(x, x), S(x, x)")
        general = parse_cq("q(x) <- R(x, x)")
        spectrum = compare(specific, general)
        assert spectrum.set_forward and not spectrum.set_backward
        # Neither bag direction holds: forward fails because an S fact with
        # multiplicity 2 makes the specific query's count exceed the general
        # one's, backward fails because the general query's canonical instance
        # has no S fact at all.
        assert spectrum.bag_forward is False
        assert spectrum.bag_backward is False
        assert spectrum.relationship is Relationship.SET_CONTAINED_ONLY

    def test_describe_mentions_all_verdicts(self):
        text = compare(section2_q1(), section2_q2()).describe()
        assert "set:" in text and "bag:" in text
