"""Unit tests for the MPI encoding (Definitions 3.2 and 3.3)."""

from fractions import Fraction

import pytest

from repro.core.encoding import encode, encode_most_general, unknown_name_for_atom
from repro.core.probe_tuples import most_general_probe_tuple
from repro.exceptions import NotProjectionFreeError
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.terms import CanonicalConstant, Constant
from repro.workloads.paper_examples import section3_containee, section3_containing

x1_hat, x2_hat = CanonicalConstant("x1"), CanonicalConstant("x2")
c1, c2 = Constant("c1"), Constant("c2")


class TestMonomialEncoding:
    def test_definition_3_2_example(self):
        """``M_{q1(x̂1 x̂2)}(u) = u1^2 · u2 · u3^3`` for the Section 3 containee."""
        containee = section3_containee()
        encoding = encode_most_general(containee, section3_containing())
        exponent_of = {
            atom: exponent
            for atom, exponent in zip(encoding.atoms, encoding.monomial.integer_exponents())
        }
        assert exponent_of[Atom("R", (x1_hat, x2_hat))] == 2
        assert exponent_of[Atom("R", (c1, x2_hat))] == 1
        assert exponent_of[Atom("R", (x1_hat, c2))] == 3
        assert encoding.dimension == 3
        assert encoding.monomial.coefficient == 1

    def test_monomial_exponents_follow_probe_collapses(self):
        # Grounding q(x1,x2) <- R(x1,x2), R(x2,x1) on (ĉ, ĉ) merges both atoms.
        containee = parse_cq("q1(x1, x2) <- R(x1, x2), R(x2, x1)")
        containing = parse_cq("q2(x1, x2) <- R(x1, x2)")
        encoding = encode(containee, containing, (x1_hat, x1_hat))
        assert encoding.dimension == 1
        assert encoding.monomial.integer_exponents() == (2,)

    def test_requires_projection_free_containee(self):
        with pytest.raises(NotProjectionFreeError):
            encode_most_general(parse_cq("q1(x1) <- R(x1, y1)"), parse_cq("q2(x1) <- R(x1, x1)"))


class TestPolynomialEncoding:
    def test_definition_3_3_example(self):
        """``P = u1^7 + u1^5·u2^2 + u1^3·u3^4`` with the paper's unknown numbering."""
        containee = section3_containee()
        containing = section3_containing()
        encoding = encode_most_general(containee, containing)
        assert encoding.num_mappings == 3
        assert len(encoding.polynomial) == 3

        # Re-index the exponent vectors by atom so the comparison does not
        # depend on the library's internal atom ordering.
        index_of = {atom: position for position, atom in enumerate(encoding.atoms)}
        base = Atom("R", (x1_hat, x2_hat))
        with_c1 = Atom("R", (c1, x2_hat))
        with_c2 = Atom("R", (x1_hat, c2))
        seen = set()
        for monomial in encoding.polynomial:
            exponents = monomial.exponents
            seen.add(
                (
                    int(exponents[index_of[base]]),
                    int(exponents[index_of[with_c1]]),
                    int(exponents[index_of[with_c2]]),
                )
            )
            assert monomial.coefficient == 1
        assert seen == {(7, 0, 0), (5, 2, 0), (3, 0, 4)}

    def test_identical_image_monomials_merge_their_coefficients(self):
        # The two symmetric mappings (y, z) -> (a, b) and (y, z) -> (b, a)
        # produce the same image query, hence the same monomial: the
        # polynomial merges them into a single monomial with coefficient 2.
        containee = parse_cq("q1(x1) <- R(x1, x1), S(x1, a), S(x1, b)")
        containing = parse_cq("q2(x1) <- R(x1, x1), S(x1, y), S(x1, z)")
        encoding = encode_most_general(containee, containing)
        assert encoding.num_mappings == 4
        assert len(encoding.polynomial) == 3
        assert sorted(monomial.coefficient for monomial in encoding.polynomial) == [1, 1, 2]

    def test_no_containment_mappings_gives_the_zero_polynomial(self):
        containee = parse_cq("q1(x1) <- R(x1, x1)")
        containing = parse_cq("q2(x1) <- S(x1, x1)")
        encoding = encode_most_general(containee, containing)
        assert encoding.polynomial.is_zero()
        assert encoding.num_mappings == 0
        assert encoding.probe_unifiable_with_containing

    def test_non_unifiable_probe_is_reported(self):
        containee = parse_cq("q1(x1, x2) <- R(x1, x2)")
        containing = parse_cq("q2(x1, x1) <- R(x1, x1)")
        encoding = encode_most_general(containee, containing)
        assert not encoding.probe_unifiable_with_containing
        assert encoding.polynomial.is_zero()

    def test_arity_mismatch_behaves_like_non_unifiable(self):
        containee = parse_cq("q1(x1, x2) <- R(x1, x2)")
        containing = parse_cq("q2(x1) <- R(x1, x1)")
        encoding = encode_most_general(containee, containing)
        assert not encoding.probe_unifiable_with_containing


class TestSpecificProbeTuples:
    def test_encoding_at_a_constant_probe(self):
        containee = parse_cq("q1(x1) <- R(x1, c1)")
        containing = parse_cq("q2(x1) <- R(x1, y)")
        probe = (c1,)
        encoding = encode(containee, containing, probe)
        assert encoding.probe == probe
        assert encoding.grounded_containee.is_ground()
        assert encoding.dimension == 1
        # One containment mapping: x1 -> c1, y -> c1.
        assert encoding.num_mappings == 1
        assert encoding.polynomial.monomials[0].exponents == (Fraction(1),)

    def test_describe_mentions_all_parts(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        text = encoding.describe()
        assert "monomial" in text and "polynomial" in text and "unifiable" in text

    def test_unknown_names_match_atoms(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        for index, (name, atom) in enumerate(zip(encoding.unknown_names, encoding.atoms)):
            assert name == unknown_name_for_atom(atom, index)
            assert encoding.atom_index(atom) == index

    def test_inequality_ties_polynomial_and_monomial_together(self):
        encoding = encode_most_general(section3_containee(), section3_containing())
        assert encoding.inequality.polynomial == encoding.polynomial
        assert encoding.inequality.monomial == encoding.monomial
