"""Smoke tests: every example script runs to completion and prints its key results."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["(c1, c2)^10", "(c1, c5)^30", "bag containment fails"],
    "query_optimization.py": ["set-equivalent?       True", "bag-equivalent to the original? True"],
    "view_selection.py": ["EXACT", "candidate v_orders_only"],
    "three_colorability.py": ["clique K4", "agrees"],
    "diophantine_explorer.py": ["is (1, 4, 3) a solution? True", "is the MPI solvable? True"],
}


@pytest.mark.parametrize("script_name", sorted(EXPECTED_OUTPUT))
def test_example_runs_and_prints_expected_output(script_name):
    script = EXAMPLES_DIR / script_name
    assert script.exists(), f"missing example {script_name}"
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    for expected in EXPECTED_OUTPUT[script_name]:
        assert expected in completed.stdout, (
            f"{script_name} output missing {expected!r}:\n{completed.stdout}"
        )


def test_every_example_is_covered_by_this_smoke_test():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)
