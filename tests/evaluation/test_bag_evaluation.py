"""Unit tests for bag-semantics evaluation (Equation 2)."""

import pytest

from repro.evaluation.bag_evaluation import (
    AnswerBag,
    bag_multiplicity,
    evaluate_bag,
    evaluate_bag_ucq,
)
from repro.evaluation.homomorphisms import query_homomorphisms
from repro.evaluation.bag_evaluation import homomorphism_contribution
from repro.queries.parser import parse_cq, parse_ucq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant
from repro.workloads.paper_examples import (
    section2_bag,
    section2_expected_answers,
    section2_query,
)

a, b, c = Constant("a"), Constant("b"), Constant("c")
c1, c2, c5 = Constant("c1"), Constant("c2"), Constant("c5")


class TestAnswerBag:
    def test_zero_counts_are_dropped(self):
        bag = AnswerBag({(a,): 0, (b,): 2})
        assert len(bag) == 1
        assert bag[(a,)] == 0
        assert bag[(b,)] == 2

    def test_subbag_relation(self):
        small = AnswerBag({(a,): 1})
        large = AnswerBag({(a,): 2, (b,): 1})
        assert small.is_subbag_of(large)
        assert not large.is_subbag_of(small)

    def test_violations(self):
        left = AnswerBag({(a,): 5, (b,): 1})
        right = AnswerBag({(a,): 2, (b,): 3})
        assert left.violations(right) == [((a,), 5, 2)]

    def test_add(self):
        combined = AnswerBag({(a,): 1}).add(AnswerBag({(a,): 2, (b,): 1}))
        assert combined[(a,)] == 3 and combined[(b,)] == 1

    def test_support_and_total(self):
        bag = AnswerBag({(a,): 2, (b,): 3})
        assert bag.support() == frozenset({(a,), (b,)})
        assert bag.total() == 5

    def test_equality(self):
        assert AnswerBag({(a,): 1}) == AnswerBag({(a,): 1, (b,): 0})


class TestPaperExample:
    def test_section2_answer_multiplicities(self):
        answers = evaluate_bag(section2_query(), section2_bag())
        expected = section2_expected_answers()
        assert answers[(c1, c2)] == expected[(c1, c2)] == 10
        assert answers[(c1, c5)] == expected[(c1, c5)] == 30
        assert answers.support() == frozenset(expected)

    def test_individual_multiplicity_matches_full_evaluation(self):
        assert bag_multiplicity(section2_query(), section2_bag(), (c1, c2)) == 10
        assert bag_multiplicity(section2_query(), section2_bag(), (c1, c5)) == 30
        assert bag_multiplicity(section2_query(), section2_bag(), (c1, c1)) == 0

    def test_homomorphism_contributions_sum_to_the_answer(self):
        query, bag = section2_query(), section2_bag()
        instance = bag.support()
        total = sum(
            homomorphism_contribution(query, bag, h)
            for h in query_homomorphisms(query, instance, answer=(c1, c2))
        )
        assert total == 10


class TestBasicProperties:
    def test_single_atom_query_returns_fact_multiplicities(self):
        bag = BagInstance({Atom("R", (a, b)): 4})
        query = parse_cq("q(x, y) <- R(x, y)")
        assert evaluate_bag(query, bag)[(a, b)] == 4

    def test_repeated_atom_raises_multiplicity_to_a_power(self):
        bag = BagInstance({Atom("R", (a, b)): 3})
        query = parse_cq("q(x, y) <- R^2(x, y)")
        assert evaluate_bag(query, bag)[(a, b)] == 9

    def test_projection_sums_over_existential_witnesses(self):
        bag = BagInstance({Atom("R", (a, b)): 2, Atom("R", (a, c)): 5})
        query = parse_cq("q(x) <- R(x, y)")
        assert evaluate_bag(query, bag)[(a,)] == 7

    def test_join_multiplies_multiplicities(self):
        bag = BagInstance({Atom("R", (a, b)): 2, Atom("S", (b, c)): 3})
        query = parse_cq("q(x, z) <- R(x, y), S(y, z)")
        assert evaluate_bag(query, bag)[(a, c)] == 6

    def test_boolean_query_counts_total(self):
        bag = BagInstance({Atom("R", (a, b)): 2, Atom("R", (b, c)): 3})
        query = parse_cq("q() <- R(x, y)")
        assert evaluate_bag(query, bag)[()] == 5

    def test_cartesian_product_of_disconnected_atoms(self):
        bag = BagInstance({Atom("R", (a, a)): 2, Atom("S", (b, b)): 3})
        query = parse_cq("q() <- R(x, x), S(y, y)")
        assert evaluate_bag(query, bag)[()] == 6

    def test_missing_fact_gives_zero(self):
        bag = BagInstance({Atom("R", (a, b)): 2})
        query = parse_cq("q(x) <- R(x, x)")
        assert len(evaluate_bag(query, bag)) == 0

    def test_uniform_bag_with_multiplicity_one_matches_homomorphism_count(self):
        bag = BagInstance({Atom("R", (a, b)): 1, Atom("R", (b, c)): 1, Atom("R", (a, c)): 1})
        query = parse_cq("q() <- R(x, y), R(y, z)")
        # Each pair of composable edges contributes 1; with multiplicity-1
        # facts the bag answer equals the number of homomorphisms.
        homs = sum(1 for _ in query_homomorphisms(query, bag.support()))
        assert evaluate_bag(query, bag)[()] == homs

    def test_arity_mismatch_in_bag_multiplicity_is_zero(self):
        # A tuple of the wrong arity is never an answer, so its multiplicity is 0.
        bag = BagInstance({Atom("R", (a, b)): 1})
        query = parse_cq("q(x, y) <- R(x, y)")
        assert bag_multiplicity(query, bag, (a,)) == 0


class TestUcqEvaluation:
    def test_disjunct_answers_are_summed(self):
        bag = BagInstance({Atom("R", (a, b)): 2, Atom("S", (a,)): 3})
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert evaluate_bag_ucq(ucq, bag)[(a,)] == 5

    def test_repeated_disjuncts_double_the_count(self):
        bag = BagInstance({Atom("R", (a, b)): 2})
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- R(x, y)")
        assert evaluate_bag_ucq(ucq, bag)[(a,)] == 4
