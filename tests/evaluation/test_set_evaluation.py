"""Unit tests for set-semantics evaluation."""

from repro.evaluation.set_evaluation import answer_tuples, evaluate_set, evaluate_set_ucq, holds
from repro.queries.parser import parse_cq, parse_ucq
from repro.relational.atoms import Atom
from repro.relational.instances import SetInstance
from repro.relational.terms import Constant
from repro.workloads.paper_examples import section2_instance, section2_query

a, b, c = Constant("a"), Constant("b"), Constant("c")
c1, c2, c5 = Constant("c1"), Constant("c2"), Constant("c5")


class TestEvaluateSet:
    def test_paper_example_answers(self):
        answers = evaluate_set(section2_query(), section2_instance())
        assert answers == frozenset({(c1, c2), (c1, c5)})

    def test_duplicate_atoms_do_not_change_set_answers(self):
        instance = SetInstance([Atom("R", (a, b))])
        single = parse_cq("q(x) <- R(x, y)")
        doubled = parse_cq("q(x) <- R^2(x, y)")
        assert evaluate_set(single, instance) == evaluate_set(doubled, instance)

    def test_projection(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("R", (a, c))])
        query = parse_cq("q(x) <- R(x, y)")
        assert evaluate_set(query, instance) == frozenset({(a,)})

    def test_empty_result(self):
        instance = SetInstance([Atom("R", (a, b))])
        query = parse_cq("q(x) <- R(x, x)")
        assert evaluate_set(query, instance) == frozenset()

    def test_boolean_query(self):
        instance = SetInstance([Atom("R", (a, b))])
        query = parse_cq("q() <- R(x, y)")
        assert evaluate_set(query, instance) == frozenset({()})
        assert holds(query, instance)

    def test_answer_tuples_are_distinct(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("R", (a, c))])
        query = parse_cq("q(x) <- R(x, y)")
        assert len(list(answer_tuples(query, instance))) == 1

    def test_constants_restrict_answers(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("R", (b, b))])
        query = parse_cq("q(x) <- R(x, b)", variable_prefixes=frozenset("xyz"))
        assert evaluate_set(query, instance) == frozenset({(a,), (b,)})


class TestEvaluateSetUcq:
    def test_union_of_answers(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("S", (c,))])
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert evaluate_set_ucq(ucq, instance) == frozenset({(a,), (c,)})

    def test_overlapping_disjuncts_do_not_duplicate(self):
        instance = SetInstance([Atom("R", (a, a))])
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- R(x, x)")
        assert evaluate_set_ucq(ucq, instance) == frozenset({(a,)})
