"""Unit tests for homomorphism and containment-mapping enumeration."""

from repro.evaluation.homomorphisms import (
    containment_mappings,
    containment_mappings_to_ground,
    count_homomorphisms,
    has_homomorphism,
    homomorphisms,
    query_homomorphisms,
)
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.instances import SetInstance
from repro.relational.terms import Constant, Variable
from repro.workloads.paper_examples import section2_instance, section2_query

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestHomomorphisms:
    def test_single_atom_matches_every_fact(self):
        target = [Atom("R", (a, b)), Atom("R", (b, c))]
        assert count_homomorphisms([Atom("R", (x, y))], target) == 2

    def test_repeated_variable_restricts_matches(self):
        target = [Atom("R", (a, b)), Atom("R", (b, b))]
        found = list(homomorphisms([Atom("R", (x, x))], target))
        assert len(found) == 1
        assert found[0].apply_term(x) == b

    def test_constants_in_source_must_match(self):
        target = [Atom("R", (a, b)), Atom("R", (b, c))]
        assert count_homomorphisms([Atom("R", (a, x))], target) == 1
        assert count_homomorphisms([Atom("R", (c, x))], target) == 0

    def test_join_across_atoms(self):
        target = [Atom("R", (a, b)), Atom("R", (b, c)), Atom("R", (a, c))]
        chain = [Atom("R", (x, y)), Atom("R", (y, z))]
        images = {(h.apply_term(x), h.apply_term(y), h.apply_term(z)) for h in homomorphisms(chain, target)}
        assert images == {(a, b, c)}

    def test_fixed_bindings_are_honoured(self):
        target = [Atom("R", (a, b)), Atom("R", (b, c))]
        found = list(homomorphisms([Atom("R", (x, y))], target, fixed={x: b}))
        assert len(found) == 1
        assert found[0].apply_term(y) == c

    def test_inconsistent_fixed_bindings_give_no_results(self):
        target = [Atom("R", (a, b))]
        assert not list(homomorphisms([Atom("R", (x, y))], target, fixed={x: c}))

    def test_has_homomorphism(self):
        target = [Atom("R", (a, b))]
        assert has_homomorphism([Atom("R", (x, y))], target)
        assert not has_homomorphism([Atom("S", (x,))], target)

    def test_target_atoms_may_contain_variables(self):
        # Containment-mapping style: map into a body with variables.
        target = [Atom("R", (x, y))]
        found = list(homomorphisms([Atom("R", (z, z))], target))
        assert not found  # z would need to equal both x and y
        found = list(homomorphisms([Atom("R", (z, y))], target))
        assert len(found) == 1

    def test_relation_names_must_match(self):
        assert count_homomorphisms([Atom("R", (x,))], [Atom("S", (a,))]) == 0

    def test_arity_must_match(self):
        assert count_homomorphisms([Atom("R", (x,))], [Atom("R", (a, b))]) == 0


class TestQueryHomomorphisms:
    def test_paper_example_has_four_homomorphisms(self):
        # The Section 2 analysis lists h1..h4: two per answer tuple.
        assert sum(1 for _ in query_homomorphisms(section2_query(), section2_instance())) == 4

    def test_answer_restriction(self):
        c1, c2, c5 = Constant("c1"), Constant("c2"), Constant("c5")
        homs = list(
            query_homomorphisms(section2_query(), section2_instance(), answer=(c1, c2))
        )
        assert len(homs) == 2
        homs = list(
            query_homomorphisms(section2_query(), section2_instance(), answer=(c1, c5))
        )
        assert len(homs) == 2

    def test_impossible_answer_gives_no_homomorphisms(self):
        c1 = Constant("c1")
        assert not list(
            query_homomorphisms(section2_query(), section2_instance(), answer=(c1, c1))
        )

    def test_empty_instance(self):
        query = parse_cq("q(x) <- R(x, y)")
        assert not list(query_homomorphisms(query, SetInstance()))


class TestContainmentMappings:
    def test_identity_between_syntactically_equal_queries(self):
        q1 = parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")
        q2 = parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")
        assert len(list(containment_mappings(q1, q2))) == 1
        assert len(list(containment_mappings(q2, q1))) == 1

    def test_paper_section2_mapping_counts(self):
        q1 = parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")
        q3 = parse_cq("q3(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)")
        # q3 maps into q1 in exactly one way (all existentials to x2)...
        assert len(list(containment_mappings(q3, q1))) == 1
        # ...but q1 does not map into q3 at all.
        assert not list(containment_mappings(q1, q3))

    def test_arity_mismatch_gives_no_mappings(self):
        q1 = parse_cq("q1(x) <- R(x, x)")
        q2 = parse_cq("q2(x, y) <- R(x, y)")
        assert not list(containment_mappings(q2, q1))

    def test_mappings_into_grounded_query(self):
        containee = parse_cq("q1(x1, x2) <- R^2(x1, x2), R(c1, x2), R^3(x1, c2)")
        containing = parse_cq("q2(x1, x2) <- R^3(x1, x2), R^2(x1, y1), R^2(y2, y1)")
        from repro.core.probe_tuples import most_general_probe_tuple

        probe = most_general_probe_tuple(containee)
        grounded = containee.ground(probe)
        mappings = list(containment_mappings_to_ground(containing, grounded, probe))
        # The paper lists exactly three containment mappings h1, h2, h3.
        assert len(mappings) == 3
