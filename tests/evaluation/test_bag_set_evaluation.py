"""Unit tests for bag-set semantics evaluation."""

from repro.evaluation.bag_evaluation import evaluate_bag
from repro.evaluation.bag_set_evaluation import (
    bag_set_multiplicity,
    evaluate_bag_set,
    evaluate_bag_set_ucq,
)
from repro.queries.parser import parse_cq, parse_ucq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Constant
from repro.workloads.paper_examples import section2_instance, section2_query

a, b, c = Constant("a"), Constant("b"), Constant("c")
c1, c2, c5 = Constant("c1"), Constant("c2"), Constant("c5")


class TestBagSetEvaluation:
    def test_multiplicity_is_the_homomorphism_count(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("R", (a, c))])
        query = parse_cq("q(x) <- R(x, y)")
        assert evaluate_bag_set(query, instance)[(a,)] == 2

    def test_atom_repetition_does_not_matter_under_bag_set_semantics(self):
        instance = SetInstance([Atom("R", (a, b))])
        single = parse_cq("q(x, y) <- R(x, y)")
        doubled = parse_cq("q(x, y) <- R^2(x, y)")
        assert evaluate_bag_set(single, instance) == evaluate_bag_set(doubled, instance)

    def test_paper_example_homomorphism_counts(self):
        answers = evaluate_bag_set(section2_query(), section2_instance())
        assert answers[(c1, c2)] == 2
        assert answers[(c1, c5)] == 2

    def test_matches_bag_semantics_on_multiplicity_one_bags(self):
        instance = section2_instance()
        uniform = BagInstance.uniform(instance, 1)
        query = section2_query()
        assert evaluate_bag(query, uniform) == evaluate_bag_set(query, instance)

    def test_single_answer_multiplicity(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("R", (b, c))])
        query = parse_cq("q() <- R(x, y), R(y, z)")
        assert bag_set_multiplicity(query, instance, ()) == 1

    def test_ucq_sums_disjunct_counts(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("S", (a,))])
        ucq = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert evaluate_bag_set_ucq(ucq, instance)[(a,)] == 2

    def test_projection_free_queries_have_multiplicity_at_most_one(self):
        instance = SetInstance([Atom("R", (a, b)), Atom("R", (b, c))])
        query = parse_cq("q(x, y) <- R(x, y)")
        answers = evaluate_bag_set(query, instance)
        assert all(count == 1 for _, count in answers.items())
