"""Unit tests for set and bag instances."""

import pytest

from repro.exceptions import InstanceError
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Constant, Variable

a, b, c = Constant("a"), Constant("b"), Constant("c")
Rab = Atom("R", (a, b))
Rbc = Atom("R", (b, c))
Sa = Atom("S", (a,))


class TestSetInstance:
    def test_deduplicates_facts(self):
        instance = SetInstance([Rab, Rab, Rbc])
        assert len(instance) == 2

    def test_rejects_non_ground_atoms(self):
        with pytest.raises(InstanceError):
            SetInstance([Atom("R", (a, Variable("x")))])

    def test_rejects_non_atoms(self):
        with pytest.raises(InstanceError):
            SetInstance(["R(a,b)"])  # type: ignore[list-item]

    def test_active_domain(self):
        instance = SetInstance([Rab, Sa])
        assert instance.active_domain() == frozenset({a, b})

    def test_schema(self):
        instance = SetInstance([Rab, Sa])
        assert instance.schema().arity_of("R") == 2
        assert instance.schema().arity_of("S") == 1

    def test_relation_selection(self):
        instance = SetInstance([Rab, Rbc, Sa])
        assert instance.relation("R") == frozenset({Rab, Rbc})

    def test_union_and_subset(self):
        first = SetInstance([Rab])
        second = SetInstance([Rbc])
        union = first.union(second)
        assert first.issubset(union)
        assert second.issubset(union)
        assert not union.issubset(first)

    def test_restrict(self):
        instance = SetInstance([Rab, Rbc])
        assert instance.restrict([Rab]) == SetInstance([Rab])

    def test_equality_and_hash(self):
        assert SetInstance([Rab, Rbc]) == SetInstance([Rbc, Rab])
        assert hash(SetInstance([Rab])) == hash(SetInstance([Rab]))

    def test_membership(self):
        assert Rab in SetInstance([Rab])
        assert Rbc not in SetInstance([Rab])


class TestBagInstance:
    def test_zero_multiplicities_are_dropped(self):
        bag = BagInstance({Rab: 2, Rbc: 0})
        assert len(bag) == 1
        assert bag[Rbc] == 0

    def test_absent_facts_have_multiplicity_zero(self):
        assert BagInstance({Rab: 2})[Sa] == 0

    def test_negative_multiplicities_are_rejected(self):
        with pytest.raises(InstanceError):
            BagInstance({Rab: -1})

    def test_non_integer_multiplicities_are_rejected(self):
        with pytest.raises(InstanceError):
            BagInstance({Rab: 1.5})  # type: ignore[dict-item]
        with pytest.raises(InstanceError):
            BagInstance({Rab: True})  # type: ignore[dict-item]

    def test_rejects_non_ground_facts(self):
        with pytest.raises(InstanceError):
            BagInstance({Atom("R", (a, Variable("x"))): 1})

    def test_uniform(self):
        bag = BagInstance.uniform([Rab, Rbc], multiplicity=3)
        assert bag[Rab] == 3 and bag[Rbc] == 3

    def test_support_and_total(self):
        bag = BagInstance({Rab: 2, Rbc: 3})
        assert bag.support() == SetInstance([Rab, Rbc])
        assert bag.total_multiplicity() == 5

    def test_subbag_relation(self):
        small = BagInstance({Rab: 1})
        large = BagInstance({Rab: 2, Rbc: 1})
        assert small.is_subbag_of(large)
        assert not large.is_subbag_of(small)

    def test_subbag_is_reflexive(self):
        bag = BagInstance({Rab: 2})
        assert bag.is_subbag_of(bag)

    def test_restrict(self):
        bag = BagInstance({Rab: 2, Rbc: 3})
        assert bag.restrict([Rab]) == BagInstance({Rab: 2})

    def test_scale(self):
        assert BagInstance({Rab: 2}).scale(3) == BagInstance({Rab: 6})
        assert BagInstance({Rab: 2}).scale(0) == BagInstance({})

    def test_scale_rejects_negative_factor(self):
        with pytest.raises(InstanceError):
            BagInstance({Rab: 1}).scale(-1)

    def test_updated(self):
        bag = BagInstance({Rab: 2}).updated(Rbc, 4)
        assert bag[Rbc] == 4
        assert bag[Rab] == 2

    def test_merge_max_and_merge_sum(self):
        first = BagInstance({Rab: 2, Rbc: 1})
        second = BagInstance({Rab: 1, Sa: 5})
        assert first.merge_max(second) == BagInstance({Rab: 2, Rbc: 1, Sa: 5})
        assert first.merge_sum(second) == BagInstance({Rab: 3, Rbc: 1, Sa: 5})

    def test_equality_and_hash(self):
        assert BagInstance({Rab: 2}) == BagInstance({Rab: 2})
        assert hash(BagInstance({Rab: 2})) == hash(BagInstance({Rab: 2}))
        assert BagInstance({Rab: 2}) != BagInstance({Rab: 3})

    def test_active_domain(self):
        assert BagInstance({Rab: 1}).active_domain() == frozenset({a, b})
