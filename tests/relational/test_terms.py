"""Unit tests for terms: variables, constants and canonical constants."""

import pytest

from repro.exceptions import InvalidTermError
from repro.relational.terms import (
    CanonicalConstant,
    Constant,
    Variable,
    canonical,
    decanonical,
    is_constant_like,
    is_term,
    make_constants,
    make_variables,
)


class TestVariable:
    def test_equality_is_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_is_hashable_and_usable_as_key(self):
        mapping = {Variable("x"): 1}
        assert mapping[Variable("x")] == 1

    def test_ordering_is_by_name(self):
        assert Variable("a") < Variable("b")

    def test_rejects_empty_name(self):
        with pytest.raises(InvalidTermError):
            Variable("")

    def test_rejects_non_string_name(self):
        with pytest.raises(InvalidTermError):
            Variable(42)  # type: ignore[arg-type]

    def test_str_is_the_name(self):
        assert str(Variable("x7")) == "x7"


class TestConstant:
    def test_equality_is_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_integer_values_are_allowed(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant("3")

    def test_rejects_unhashable_values(self):
        with pytest.raises(InvalidTermError):
            Constant([1, 2])

    def test_is_distinct_from_variable_with_same_name(self):
        assert Constant("x") != Variable("x")


class TestCanonicalConstant:
    def test_round_trip_with_canonical_and_decanonical(self):
        x = Variable("x")
        assert decanonical(canonical(x)) == x

    def test_is_distinct_from_language_constant(self):
        assert CanonicalConstant("c1") != Constant("c1")

    def test_is_distinct_from_its_variable(self):
        assert CanonicalConstant("x") != Variable("x")

    def test_variable_property(self):
        assert CanonicalConstant("y3").variable == Variable("y3")

    def test_rejects_empty_name(self):
        with pytest.raises(InvalidTermError):
            CanonicalConstant("")

    def test_canonical_rejects_non_variable(self):
        with pytest.raises(InvalidTermError):
            canonical(Constant("a"))  # type: ignore[arg-type]

    def test_decanonical_rejects_non_canonical(self):
        with pytest.raises(InvalidTermError):
            decanonical(Constant("a"))  # type: ignore[arg-type]

    def test_str_uses_hat_prefix(self):
        assert str(CanonicalConstant("x1")) == "^x1"


class TestPredicates:
    def test_is_term(self):
        assert is_term(Variable("x"))
        assert is_term(Constant("a"))
        assert is_term(CanonicalConstant("x"))
        assert not is_term("x")
        assert not is_term(None)

    def test_is_constant_like(self):
        assert is_constant_like(Constant("a"))
        assert is_constant_like(CanonicalConstant("x"))
        assert not is_constant_like(Variable("x"))


class TestFactories:
    def test_make_variables(self):
        assert make_variables("x", "y") == (Variable("x"), Variable("y"))

    def test_make_constants(self):
        assert make_constants("a", 1) == (Constant("a"), Constant(1))
