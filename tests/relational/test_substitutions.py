"""Unit tests for substitutions, unification and the canonical freezing."""

import pytest

from repro.exceptions import SubstitutionError, UnificationError
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution, canonical_substitution, unify_tuples
from repro.relational.terms import CanonicalConstant, Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestApplication:
    def test_applies_to_bound_variables_only(self):
        sigma = Substitution({x: a})
        assert sigma.apply_term(x) == a
        assert sigma.apply_term(y) == y
        assert sigma.apply_term(a) == a

    def test_applies_to_atoms(self):
        sigma = Substitution({x: a, y: b})
        assert sigma.apply_atom(Atom("R", (x, y, z))) == Atom("R", (a, b, z))

    def test_polymorphic_call(self):
        sigma = Substitution({x: a})
        assert sigma(x) == a
        assert sigma(Atom("R", (x,))) == Atom("R", (a,))
        assert sigma((x, y)) == (a, y)
        assert sigma([x, y]) == [a, y]

    def test_call_rejects_unknown_objects(self):
        with pytest.raises(SubstitutionError):
            Substitution({x: a})(42)

    def test_identity_bindings_are_dropped(self):
        sigma = Substitution({x: x, y: a})
        assert sigma.domain == frozenset({y})

    def test_variable_to_variable_bindings(self):
        sigma = Substitution({x: y})
        assert sigma.apply_atom(Atom("R", (x, x))) == Atom("R", (y, y))


class TestConstruction:
    def test_rejects_non_variable_sources(self):
        with pytest.raises(SubstitutionError):
            Substitution({a: b})  # type: ignore[dict-item]

    def test_rejects_non_term_targets(self):
        with pytest.raises(SubstitutionError):
            Substitution({x: "a"})  # type: ignore[dict-item]

    def test_equality_and_hash(self):
        assert Substitution({x: a}) == Substitution({x: a})
        assert hash(Substitution({x: a})) == hash(Substitution({x: a}))
        assert Substitution({x: a}) != Substitution({x: b})


class TestAlgebra:
    def test_compose_applies_self_then_other(self):
        first = Substitution({x: y})
        second = Substitution({y: a})
        composed = first.compose(second)
        assert composed.apply_term(x) == a
        assert composed.apply_term(y) == a

    def test_compose_respects_documented_equation(self):
        first = Substitution({x: y, z: a})
        second = Substitution({y: b})
        composed = first.compose(second)
        for term in (x, y, z, a):
            assert composed.apply_term(term) == second.apply_term(first.apply_term(term))

    def test_restrict(self):
        sigma = Substitution({x: a, y: b})
        assert sigma.restrict([x]) == Substitution({x: a})

    def test_extend_accepts_consistent_binding(self):
        sigma = Substitution({x: a}).extend(y, b)
        assert sigma == Substitution({x: a, y: b})

    def test_extend_rejects_conflicting_binding(self):
        with pytest.raises(SubstitutionError):
            Substitution({x: a}).extend(x, b)

    def test_merge(self):
        merged = Substitution({x: a}).merge(Substitution({y: b}))
        assert merged == Substitution({x: a, y: b})

    def test_merge_rejects_conflicts(self):
        with pytest.raises(SubstitutionError):
            Substitution({x: a}).merge(Substitution({x: b}))

    def test_domain_and_image(self):
        sigma = Substitution({x: a, y: b})
        assert sigma.domain == frozenset({x, y})
        assert sigma.image == frozenset({a, b})

    def test_is_ground_on(self):
        sigma = Substitution({x: a, y: z})
        assert sigma.is_ground_on([x])
        assert not sigma.is_ground_on([x, y])

    def test_identity(self):
        assert len(Substitution.identity()) == 0


class TestUnification:
    def test_simple_unification(self):
        sigma = unify_tuples((x, y), (a, b))
        assert sigma.apply_tuple((x, y)) == (a, b)

    def test_repeated_variables_must_be_consistent(self):
        assert unify_tuples((x, x), (a, a)).apply_term(x) == a
        with pytest.raises(UnificationError):
            unify_tuples((x, x), (a, b))

    def test_constants_in_pattern_must_match(self):
        assert unify_tuples((a, x), (a, b)).apply_term(x) == b
        with pytest.raises(UnificationError):
            unify_tuples((a, x), (b, b))

    def test_length_mismatch(self):
        with pytest.raises(UnificationError):
            unify_tuples((x,), (a, b))


class TestCanonicalSubstitution:
    def test_freezes_variables_to_canonical_constants(self):
        sigma = canonical_substitution([x, y])
        assert sigma.apply_term(x) == CanonicalConstant("x")
        assert sigma.apply_term(y) == CanonicalConstant("y")
        assert sigma.apply_term(z) == z
