"""Unit tests for database schemas."""

import pytest

from repro.exceptions import ArityMismatchError, RelationalError
from repro.relational.atoms import Atom, RelationSchema
from repro.relational.schema import DatabaseSchema
from repro.relational.terms import Constant, Variable


class TestConstruction:
    def test_from_arities(self):
        schema = DatabaseSchema.from_arities({"R": 2, "S": 1})
        assert schema.arity_of("R") == 2
        assert schema.arity_of("S") == 1
        assert schema.relation_names() == ("R", "S")

    def test_from_atoms_infers_arities(self):
        schema = DatabaseSchema.from_atoms(
            [Atom("R", (Variable("x"), Variable("y"))), Atom("S", (Constant("a"),))]
        )
        assert schema.arity_of("R") == 2
        assert schema.arity_of("S") == 1

    def test_conflicting_arities_are_rejected(self):
        with pytest.raises(ArityMismatchError):
            DatabaseSchema([RelationSchema("R", 1), RelationSchema("R", 2)])

    def test_duplicate_consistent_declarations_are_merged(self):
        schema = DatabaseSchema([RelationSchema("R", 2), RelationSchema("R", 2)])
        assert len(schema) == 1

    def test_rejects_non_relation_schema_items(self):
        with pytest.raises(RelationalError):
            DatabaseSchema(["R"])  # type: ignore[list-item]

    def test_union(self):
        left = DatabaseSchema.from_arities({"R": 2})
        right = DatabaseSchema.from_arities({"S": 1})
        union = left.union(right)
        assert set(union.relation_names()) == {"R", "S"}

    def test_union_with_conflicting_arities_fails(self):
        left = DatabaseSchema.from_arities({"R": 2})
        right = DatabaseSchema.from_arities({"R": 3})
        with pytest.raises(ArityMismatchError):
            left.union(right)


class TestValidation:
    def test_validate_atom_accepts_declared_relations(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        schema.validate_atom(Atom("R", (Variable("x"), Variable("y"))))

    def test_validate_atom_rejects_unknown_relation(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        with pytest.raises(RelationalError):
            schema.validate_atom(Atom("S", (Variable("x"),)))

    def test_validate_atom_rejects_wrong_arity(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        with pytest.raises(ArityMismatchError):
            schema.validate_atom(Atom("R", (Variable("x"),)))

    def test_is_compatible_with(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        good = [Atom("R", (Variable("x"), Variable("y")))]
        bad = [Atom("R", (Variable("x"),))]
        assert schema.is_compatible_with(good)
        assert not schema.is_compatible_with(bad)


class TestContainerProtocol:
    def test_contains_by_name_and_by_schema(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        assert "R" in schema
        assert RelationSchema("R", 2) in schema
        assert RelationSchema("R", 3) not in schema
        assert "S" not in schema

    def test_equality_and_hash(self):
        first = DatabaseSchema.from_arities({"R": 2, "S": 1})
        second = DatabaseSchema.from_arities({"S": 1, "R": 2})
        assert first == second
        assert hash(first) == hash(second)

    def test_iteration_is_sorted_by_name(self):
        schema = DatabaseSchema.from_arities({"Z": 1, "A": 2})
        assert [relation.name for relation in schema] == ["A", "Z"]
