"""Unit tests for atoms and relation schemas."""

import pytest

from repro.exceptions import ArityMismatchError, InvalidTermError
from repro.relational.atoms import Atom, RelationSchema, make_atom
from repro.relational.terms import CanonicalConstant, Constant, Variable


class TestRelationSchema:
    def test_callable_builds_atoms(self):
        R = RelationSchema("R", 2)
        atom = R(Variable("x"), Constant("a"))
        assert atom == Atom("R", (Variable("x"), Constant("a")))

    def test_rejects_negative_arity(self):
        with pytest.raises(ArityMismatchError):
            RelationSchema("R", -1)

    def test_rejects_empty_name(self):
        with pytest.raises(InvalidTermError):
            RelationSchema("", 1)

    def test_str(self):
        assert str(RelationSchema("Edge", 2)) == "Edge/2"


class TestAtom:
    def test_equality_is_structural(self):
        assert Atom("R", (Variable("x"),)) == Atom("R", (Variable("x"),))
        assert Atom("R", (Variable("x"),)) != Atom("R", (Variable("y"),))
        assert Atom("R", (Variable("x"),)) != Atom("S", (Variable("x"),))

    def test_arity_and_schema(self):
        atom = Atom("R", (Variable("x"), Constant("a")))
        assert atom.arity == 2
        assert atom.schema == RelationSchema("R", 2)

    def test_is_ground(self):
        assert Atom("R", (Constant("a"), CanonicalConstant("x"))).is_ground
        assert not Atom("R", (Constant("a"), Variable("x"))).is_ground

    def test_zero_arity_atom_is_ground(self):
        assert Atom("True", ()).is_ground

    def test_variables_and_constants(self):
        atom = Atom("R", (Variable("x"), Constant("a"), CanonicalConstant("y")))
        assert atom.variables() == frozenset({Variable("x")})
        assert atom.constants() == frozenset({Constant("a"), CanonicalConstant("y")})
        assert atom.language_constants() == frozenset({Constant("a")})
        assert atom.canonical_constants() == frozenset({CanonicalConstant("y")})

    def test_rejects_non_term_arguments(self):
        with pytest.raises(InvalidTermError):
            Atom("R", ("x",))  # type: ignore[arg-type]

    def test_rejects_empty_relation_name(self):
        with pytest.raises(InvalidTermError):
            Atom("", (Variable("x"),))

    def test_iteration_and_len(self):
        atom = Atom("R", (Variable("x"), Variable("y")))
        assert list(atom) == [Variable("x"), Variable("y")]
        assert len(atom) == 2

    def test_str(self):
        assert str(Atom("R", (Variable("x"), Constant("a")))) == "R(x, a)"

    def test_is_hashable(self):
        assert len({Atom("R", (Variable("x"),)), Atom("R", (Variable("x"),))}) == 1


class TestMakeAtom:
    def test_wraps_raw_values_as_constants(self):
        atom = make_atom("R", ["a", 1])
        assert atom == Atom("R", (Constant("a"), Constant(1)))

    def test_keeps_existing_terms(self):
        atom = make_atom("R", [Variable("x"), Constant("a")])
        assert atom == Atom("R", (Variable("x"), Constant("a")))
