"""Unit tests for query minimisation (cores)."""

from repro.containment.minimization import core, is_minimal, redundant_atoms
from repro.containment.set_containment import are_set_equivalent
from repro.core.decision import are_bag_equivalent
from repro.queries.parser import parse_cq


class TestCore:
    def test_redundant_atom_is_removed(self):
        query = parse_cq("q(x) <- R(x, y), R(x, z)")
        minimised = core(query)
        assert len(minimised.body_atoms()) == 1
        assert are_set_equivalent(query, minimised)

    def test_minimal_query_is_unchanged(self):
        query = parse_cq("q(x) <- R(x, y), S(y, x)")
        assert core(query) == query.set_body().with_name("core(q)")
        assert is_minimal(query)

    def test_redundant_atoms_listing(self):
        query = parse_cq("q(x) <- R(x, y), R(x, z)")
        assert len(redundant_atoms(query)) == 2  # either copy can be folded into the other

    def test_chain_folds_into_self_loop(self):
        query = parse_cq("q() <- R(x, y), R(y, x), R(x, x)")
        minimised = core(query)
        assert len(minimised.body_atoms()) == 1
        assert are_set_equivalent(query, minimised)

    def test_head_variables_are_preserved(self):
        query = parse_cq("q(x, z) <- R(x, y), R(x, z)")
        minimised = core(query)
        # R(x, z) cannot be folded away because z is free, but R(x, y) can.
        assert minimised.body_atoms() == (parse_cq("q(x, z) <- R(x, z)").body_atoms()[0],)
        assert are_set_equivalent(query, minimised)

    def test_core_is_idempotent(self):
        query = parse_cq("q(x) <- R(x, y), R(x, z), R(x, w)")
        once = core(query)
        twice = core(once)
        assert len(once.body_atoms()) == len(twice.body_atoms()) == 1

    def test_multiplicities_are_collapsed(self):
        query = parse_cq("q(x) <- R^4(x, y)")
        assert core(query).multiplicity(query.body_atoms()[0]) == 1


class TestDuplicatedAtoms:
    """Regression tests: candidate atoms are removed by position, not ``!=``.

    Filtering with ``!=`` drops *every* syntactically equal occurrence at
    once: the fold target loses all copies (so a duplicated atom can never
    be folded into its twin) and a single greedy step can delete several
    occurrences.  Removal must always be positional.
    """

    def test_duplicate_occurrences_fold_into_each_other(self):
        from repro.containment.minimization import _folds_without_position
        from repro.relational.atoms import Atom
        from repro.relational.terms import Variable

        x, y = Variable("x"), Variable("y")
        atoms = (Atom("R", (x, y)), Atom("R", (x, y)))
        # Removing one occurrence leaves its twin; the identity endomorphism
        # folds the full list into the remainder.  The old ``!=`` filter
        # emptied the target and answered False.
        assert _folds_without_position(atoms, (x,), 0)
        assert _folds_without_position(atoms, (x,), 1)

    def test_core_of_query_with_duplicated_atom(self):
        query = parse_cq("q(x) <- R^2(x, y), R(x, z)")
        minimised = core(query)
        assert len(minimised.body_atoms()) == 1
        assert minimised.degree() == 1  # multiplicities collapse: set notion
        assert are_set_equivalent(query, minimised)

    def test_redundant_atoms_with_duplicated_atom(self):
        query = parse_cq("q(x) <- R^3(x, y)")
        # The body has a single distinct atom; under set semantics there is
        # nothing to fold it into, duplicated occurrences notwithstanding.
        assert redundant_atoms(query) == []
        assert is_minimal(query)
        assert core(query) == parse_cq("q(x) <- R(x, y)").with_name("core(q)")


class TestBagSemanticsCaveat:
    def test_set_minimisation_is_not_bag_sound(self):
        """Dropping a duplicate atom preserves set semantics but not bag semantics.

        This is the SQL-rewrite pitfall the paper's introduction warns about:
        the minimised query is set-equivalent but NOT bag-equivalent.
        """
        original = parse_cq("q(x, y) <- R^2(x, y)")
        minimised = parse_cq("q(x, y) <- R(x, y)")
        assert are_set_equivalent(original, minimised)
        assert not are_bag_equivalent(original, minimised)
