"""Unit tests for bag-set semantics containment and equivalence."""

from repro.containment.bag_set_containment import (
    are_bag_set_equivalent,
    bag_set_counterexample_on_canonical,
    decide_bag_set_containment,
)
from repro.containment.set_containment import is_set_contained
from repro.queries.parser import parse_cq
from repro.workloads.paper_examples import section2_q1, section2_q2, section2_q3


class TestBagSetContainment:
    def test_agrees_with_set_containment_on_paper_queries(self):
        pairs = [
            (section2_q1(), section2_q2()),
            (section2_q2(), section2_q1()),
            (section2_q1(), section2_q3()),
            (section2_q3(), section2_q1()),
        ]
        for containee, containing in pairs:
            assert decide_bag_set_containment(containee, containing) == is_set_contained(
                containee, containing
            )

    def test_atom_multiplicities_are_irrelevant(self):
        single = parse_cq("q(x, y) <- R(x, y)")
        doubled = parse_cq("q(x, y) <- R^2(x, y)")
        assert decide_bag_set_containment(single, doubled)
        assert decide_bag_set_containment(doubled, single)

    def test_counterexample_on_canonical_instance(self):
        containee = parse_cq("q(x) <- R(x, y)")
        containing = parse_cq("q(x) <- R(x, x)")
        assert bag_set_counterexample_on_canonical(containee, containing) is not None
        assert bag_set_counterexample_on_canonical(containing, containee) is None


class TestBagSetEquivalence:
    def test_isomorphic_queries_are_equivalent(self):
        first = parse_cq("q(x) <- R(x, y), S(y)")
        second = parse_cq("q(x) <- R(x, z), S(z)")
        assert are_bag_set_equivalent(first, second)

    def test_set_equivalent_but_different_body_sizes_are_not_equivalent(self):
        redundant = parse_cq("q(x) <- R(x, y), R(x, z)")
        minimal = parse_cq("q(x) <- R(x, y)")
        assert not are_bag_set_equivalent(redundant, minimal)

    def test_different_shapes_are_not_equivalent(self):
        chain = parse_cq("q(x) <- R(x, y), R(y, z)")
        fork = parse_cq("q(x) <- R(x, y), R(x, z)")
        assert not are_bag_set_equivalent(chain, fork)

    def test_multiplicities_do_not_matter_for_bag_set_equivalence(self):
        single = parse_cq("q(x, y) <- R(x, y)")
        doubled = parse_cq("q(x, y) <- R^2(x, y)")
        assert are_bag_set_equivalent(single, doubled)
