"""Unit tests for Chandra-Merlin set containment."""

from repro.containment.set_containment import (
    are_set_equivalent,
    decide_set_containment,
    decide_set_containment_ucq,
    is_set_contained,
)
from repro.evaluation.set_evaluation import evaluate_set
from repro.queries.parser import parse_cq, parse_ucq
from repro.workloads.paper_examples import section2_q1, section2_q2, section2_q3


class TestPaperExamples:
    def test_q1_and_q2_are_set_equivalent(self):
        assert is_set_contained(section2_q1(), section2_q2())
        assert is_set_contained(section2_q2(), section2_q1())
        assert are_set_equivalent(section2_q1(), section2_q2())

    def test_q1_and_q2_are_contained_in_q3(self):
        assert is_set_contained(section2_q1(), section2_q3())
        assert is_set_contained(section2_q2(), section2_q3())

    def test_q3_is_not_contained_in_q1_or_q2(self):
        assert not is_set_contained(section2_q3(), section2_q1())
        assert not is_set_contained(section2_q3(), section2_q2())


class TestGeneralBehaviour:
    def test_every_query_contains_itself(self):
        query = parse_cq("q(x) <- R(x, y), S(y)")
        assert is_set_contained(query, query)

    def test_adding_atoms_to_the_containee_preserves_containment(self):
        small = parse_cq("q(x) <- R(x, y)")
        large = parse_cq("q(x) <- R(x, y), S(y)")
        assert is_set_contained(large, small)
        assert not is_set_contained(small, large)

    def test_projection_direction(self):
        specific = parse_cq("q(x) <- R(x, x)")
        general = parse_cq("q(x) <- R(x, y)")
        assert is_set_contained(specific, general)
        assert not is_set_contained(general, specific)

    def test_constants_block_containment(self):
        with_constant = parse_cq("q(x) <- R(x, a)")
        general = parse_cq("q(x) <- R(x, y)")
        assert is_set_contained(with_constant, general)
        assert not is_set_contained(general, with_constant)

    def test_arity_mismatch_is_never_contained(self):
        unary = parse_cq("q(x) <- R(x, x)")
        binary = parse_cq("q(x, y) <- R(x, y)")
        assert not is_set_contained(unary, binary)
        assert not is_set_contained(binary, unary)

    def test_result_carries_a_witness_mapping(self):
        containee = parse_cq("q(x) <- R(x, x)")
        containing = parse_cq("q(x) <- R(x, y)")
        result = decide_set_containment(containee, containing)
        assert result.contained
        assert result.witness is not None
        # The witness maps the containing query's body into the containee's.
        mapped = {result.witness.apply_atom(atom) for atom in containing.body_atoms()}
        assert mapped <= set(containee.body_atoms())

    def test_explanations_mention_the_verdict(self):
        containee = parse_cq("q(x) <- R(x, x)")
        containing = parse_cq("q(x) <- R(x, y)")
        assert "⊑s" in decide_set_containment(containee, containing).explain()
        assert "⋢s" in decide_set_containment(containing, containee).explain()

    def test_containment_is_semantically_sound_on_canonical_instances(self):
        containee = parse_cq("q(x) <- R(x, y), R(y, x)")
        containing = parse_cq("q(x) <- R(x, y)")
        assert is_set_contained(containee, containing)
        canonical = containee.canonical_instance()
        assert evaluate_set(containee, canonical) <= evaluate_set(containing, canonical)


class TestUcqContainment:
    def test_each_disjunct_must_be_covered(self):
        containee = parse_ucq("q(x) <- R(x, x); q(x) <- S(x)")
        containing = parse_ucq("q(x) <- R(x, y); q(x) <- S(x)")
        assert decide_set_containment_ucq(containee, containing)
        assert not decide_set_containment_ucq(containing, containee)
