"""Crash safety and concurrent access for the persistent cache tier.

The tentpole robustness claims, tested with real processes:

* **Kill/restart campaign** — sessions replaying a corpus against a shared
  store are SIGKILLed at ≥20 random points mid-run; the store must stay
  serviceable after every kill, and a final warm run must produce stdout
  **byte-identical** (modulo per-case wall-clock timings) to a cold run
  without any persistence, with zero discrepancies and zero unhandled
  exceptions anywhere.
* **Two processes, one store** — concurrent full runs over the same store
  must both succeed with identical output; a reader overlapping a writer's
  open transaction degrades to a miss, never an error surface; racing
  store *creation* from two processes yields one healthy store.

The torn-write/truncation simulations live in
``tests/engine/test_persist.py``; here everything crosses real process
boundaries.
"""

import os
import random
import re
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.persist import PersistentCache

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: How many random interruption points the kill/restart campaign uses.
INTERRUPTIONS = 20


def _cli(args, env_extra=None, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (REPO_SRC, env.get("PYTHONPATH")) if path
    )
    env.update(env_extra or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **kwargs,
    )


def _run_cli(args, env_extra=None):
    process = _cli(args, env_extra=env_extra)
    stdout, stderr = process.communicate(timeout=300)
    return process.returncode, stdout, stderr


def _strip_timings(text: str) -> str:
    """Per-case wall-clock is the only legitimately unstable stdout content."""
    return re.sub(r" \[\d+\.\d+ms\]", "", text)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A replayable decision corpus, generated once for the module."""
    path = tmp_path_factory.mktemp("corpus") / "corpus.json"
    code, stdout, stderr = _run_cli(
        ["fuzz", "--cases", "30", "--seed", "11", "--no-shrink", "--save-corpus", str(path)]
    )
    assert code == 0, f"corpus generation failed:\n{stdout}\n{stderr}"
    assert path.exists()
    return path


class TestKillRestartCampaign:
    def test_warm_restarts_reproduce_the_cold_run(self, corpus, tmp_path):
        store = tmp_path / "campaign-store.db"

        # The reference: a cold run with no persistence at all.
        code, cold_stdout, cold_stderr = _run_cli(["decide", "--batch", str(corpus)])
        assert code == 0, f"cold reference run failed:\n{cold_stdout}\n{cold_stderr}"
        assert "Traceback" not in cold_stderr

        # SIGKILL a persisting session at a random point, INTERRUPTIONS
        # times.  Delays are seeded (reproducible) and spread from
        # mid-import to mid-corpus; whatever half-written state each kill
        # leaves behind, the next session must start and the store must
        # keep serving.
        rng = random.Random(0xC0FFEE)
        killed = 0
        for round_index in range(INTERRUPTIONS):
            process = _cli(["decide", "--batch", str(corpus), "--persist", str(store)])
            time.sleep(rng.uniform(0.05, 1.0))
            process.send_signal(signal.SIGKILL)
            stdout, stderr = process.communicate(timeout=60)
            if process.returncode == -signal.SIGKILL:
                killed += 1
            assert "Traceback" not in (stderr or ""), (
                f"interrupted run {round_index} raised:\n{stderr}"
            )
        # Most rounds must genuinely interrupt (a few may finish first —
        # that only warms the store further).
        assert killed >= INTERRUPTIONS // 2, f"only {killed} runs were interrupted"

        # The warm run after all that violence: same verdicts, same
        # certificates flags, same summary — byte for byte.
        code, warm_stdout, warm_stderr = _run_cli(
            ["decide", "--batch", str(corpus), "--persist", str(store)]
        )
        assert code == 0, f"warm run failed:\n{warm_stdout}\n{warm_stderr}"
        assert "Traceback" not in warm_stderr
        assert _strip_timings(warm_stdout) == _strip_timings(cold_stdout)
        assert "0 errors" in warm_stdout

        # And the campaign left a healthy, inspectable store behind.
        code, info_stdout, _ = _run_cli(["cache", "info", str(store)])
        assert code == 0
        assert "(ok)" in info_stdout


class TestTwoProcessesOneStore:
    def test_concurrent_full_runs_agree(self, corpus, tmp_path):
        store = tmp_path / "shared-store.db"
        first = _cli(["decide", "--batch", str(corpus), "--persist", str(store)])
        second = _cli(["decide", "--batch", str(corpus), "--persist", str(store)])
        first_stdout, first_stderr = first.communicate(timeout=300)
        second_stdout, second_stderr = second.communicate(timeout=300)
        assert first.returncode == 0, first_stderr
        assert second.returncode == 0, second_stderr
        assert "Traceback" not in first_stderr and "Traceback" not in second_stderr
        assert _strip_timings(first_stdout) == _strip_timings(second_stdout)

    def test_reader_during_writers_open_transaction(self, tmp_path):
        store_path = tmp_path / "store.db"
        writer = PersistentCache(store_path)
        writer.store("results", ("session", ("committed",)), "visible")

        # A second connection holds an open write transaction with an
        # uncommitted row; WAL readers must see the last committed state —
        # a hit for the committed row, a clean miss (no error) for the
        # uncommitted one.
        blocker = sqlite3.connect(store_path, isolation_level=None)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            blocker.execute(
                "INSERT INTO entries (layer, key, backend, limits, schema, target, value, created) "
                "VALUES ('results', 'uncommitted', 'indexed', '', 1, '', x'00', 0)"
            )
            reader = PersistentCache(store_path)
            assert reader.load("results", ("session", ("committed",))) == "visible"
            assert reader.stats.errors == 0
            reader.close()
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
        writer.close()

    def test_writer_behind_a_held_write_lock_counts_an_error(self, tmp_path, monkeypatch):
        store_path = tmp_path / "store.db"
        bootstrap = PersistentCache(store_path)
        bootstrap.close()

        blocker = sqlite3.connect(store_path, isolation_level=None)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            store = PersistentCache(store_path)
            # Shrink the busy timeout so the lock loss resolves in test time.
            store._connection.execute("PRAGMA busy_timeout = 50")
            assert not store.store("results", ("session", ("blocked",)), "value")
            assert store.stats.errors == 1
            store.close()
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()

    def test_racing_store_creation(self, corpus, tmp_path):
        # Two processes create the same (absent) store path concurrently —
        # the classic worker-race on first use.  Both must come up and
        # serve; the file must end up healthy.
        store = tmp_path / "raced" / "store.db"
        first = _cli(["decide", "--batch", str(corpus), "--persist", str(store)])
        second = _cli(["decide", "--batch", str(corpus), "--persist", str(store)])
        for process in (first, second):
            stdout, stderr = process.communicate(timeout=300)
            assert process.returncode == 0, stderr
            assert "Traceback" not in stderr
        with PersistentCache(store) as check:
            assert check.info()["status"] == "ok"
            assert check.info()["entries"] > 0
