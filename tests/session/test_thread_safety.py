"""Regression tests: backend selection must not leak across threads.

Before the session redesign, ``use_backend`` / ``set_default_backend``
mutated a process-global, so a backend switched in one thread silently
changed the decision paths of every other thread.  Selection is now
``contextvars``-backed: each thread resolves its own default.
"""

import threading

import pytest

from repro.engine import get_default_backend, set_default_backend, use_backend
from repro.queries.parser import parse_cq
from repro.session import Session, use_session


class TestThreadIsolation:
    def test_use_backend_does_not_leak_across_threads(self):
        switched = threading.Event()
        observed = threading.Event()
        names: dict[str, str] = {}
        errors: list[BaseException] = []

        def switcher():
            try:
                with use_backend("naive"):
                    names["switcher"] = get_default_backend().name
                    switched.set()
                    # Hold the switch until the observer has looked.
                    assert observed.wait(5)
                names["switcher-after"] = get_default_backend().name
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)
                switched.set()

        def observer():
            try:
                assert switched.wait(5)
                names["observer"] = get_default_backend().name
            finally:
                observed.set()

        threads = [threading.Thread(target=switcher), threading.Thread(target=observer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert names["switcher"] == "naive"
        assert names["observer"] == "indexed"  # the switch never leaked
        assert names["switcher-after"] == "indexed"

    def test_set_default_backend_is_thread_local(self):
        results: dict[str, str] = {}
        ready = threading.Event()
        done = threading.Event()

        def setter():
            set_default_backend("naive")
            results["setter"] = get_default_backend().name
            ready.set()
            assert done.wait(5)

        def checker():
            assert ready.wait(5)
            results["checker"] = get_default_backend().name
            done.set()

        threads = [threading.Thread(target=setter), threading.Thread(target=checker)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert results == {"setter": "naive", "checker": "indexed"}

    def test_two_threads_run_two_sessions_concurrently(self):
        """Each thread decides through its own session, backend and cache."""
        q1 = parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")
        q2 = parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")
        sessions = {"a": Session(backend="indexed"), "b": Session(backend="naive")}
        barrier = threading.Barrier(2, timeout=10)
        backend_seen: dict[str, str] = {}
        verdicts: dict[str, bool] = {}

        def worker(key: str) -> None:
            session = sessions[key]
            with use_session(session):
                barrier.wait()  # both sessions are active at the same time
                backend_seen[key] = get_default_backend().name
                verdicts[key] = session.decide(q1, q2).verdict

        threads = [threading.Thread(target=worker, args=(key,)) for key in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        assert backend_seen == {"a": "indexed", "b": "naive"}
        assert verdicts == {"a": True, "b": True}
        # Only the indexed session compiled plans; the naive session's cache
        # saw nothing but its own decision memo (the naive backend bypasses
        # the plan/index layers entirely).
        assert sessions["a"].cache.snapshot()["plans"][1] > 0
        assert sessions["b"].cache.snapshot()["plans"] == (0, 0, 0)
        assert sessions["b"].cache.snapshot()["indexes"] == (0, 0, 0)

    def test_new_threads_start_from_the_base_default(self):
        with use_backend("naive"):
            seen: list[str] = []
            thread = threading.Thread(target=lambda: seen.append(get_default_backend().name))
            thread.start()
            thread.join(timeout=10)
        assert seen == ["indexed"]
