"""``Session(persist_path=...)``: warm starts through the service facade.

These tests cover the wiring the engine-level tests cannot: the session
memo layer (whole decision verdicts and certificates answered from disk),
the spec round-trip that hands parallel workers the same store, and the
CLI surface (``--persist`` on decide/fuzz, the ``cache`` subcommand).
"""

import pickle

import pytest

from repro.queries.parser import parse_cq
from repro.session import Session
from repro.session.session import Limits, SessionSpec

CONTAINEE = "q(x, y) <- R(x, y), R(y, x)"
CONTAINING = "p(x, y) <- R(x, y)"


def outcome_face(outcome):
    """The replay-visible face of an outcome, as comparable bytes."""
    explained = None
    if outcome.value is not None and hasattr(outcome.value, "explain"):
        explained = outcome.value.explain()
    return pickle.dumps(
        (outcome.verdict, repr(outcome.certificate), explained),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


class TestSessionWarmStart:
    def test_second_session_answers_from_the_store(self, tmp_path):
        store = tmp_path / "store.db"
        containee, containing = parse_cq(CONTAINEE), parse_cq(CONTAINING)

        cold = Session(persist_path=store)
        cold_outcome = cold.decide(containee, containing)
        assert cold.persistent.stats.stores >= 1
        cold.close()

        warm = Session(persist_path=store)
        warm_outcome = warm.decide(containee, containing)
        assert warm.persistent.stats.hits >= 1
        assert outcome_face(warm_outcome) == outcome_face(cold_outcome)
        warm.close()

    def test_counterexample_certificates_replay_byte_identically(self, tmp_path):
        store = tmp_path / "store.db"
        # Not-contained pair: the verdict carries a counterexample bag.
        containee = parse_cq("q(x, y) <- R^2(x, y)")
        containing = parse_cq("p(x, y) <- R(x, y)")

        cold = Session(persist_path=store)
        cold_outcome = cold.decide(containee, containing)
        assert cold_outcome.verdict is False
        assert cold_outcome.certificate is not None
        cold.close()

        warm = Session(persist_path=store)
        warm_outcome = warm.decide(containee, containing)
        assert warm.persistent.stats.hits >= 1
        assert outcome_face(warm_outcome) == outcome_face(cold_outcome)
        warm.close()

    def test_renamed_queries_do_not_share_memoised_verdicts(self, tmp_path):
        store = tmp_path / "store.db"
        containee, containing = parse_cq(CONTAINEE), parse_cq(CONTAINING)
        first = Session(persist_path=store)
        first.decide(containee, containing)
        first.close()

        second = Session(persist_path=store)
        outcome = second.decide(containee.with_name("renamed"), containing)
        # The renamed copy must compute fresh (its explain() prints its own
        # name), not hit the original's row.
        assert outcome.value.explain().find("renamed") != -1
        second.close()

    def test_limits_change_invalidates_silently(self, tmp_path):
        store = tmp_path / "store.db"
        containee, containing = parse_cq(CONTAINEE), parse_cq(CONTAINING)
        small = Session(persist_path=store, limits=Limits(bounded_guess_max_candidates=10))
        small.decide(containee, containing)
        small.close()

        large = Session(persist_path=store, limits=Limits(bounded_guess_max_candidates=10_000))
        outcome = large.decide(containee, containing)
        assert outcome.verdict is not None
        assert large.persistent.stats.hits == 0  # different limits: all misses
        large.close()

    def test_backend_change_invalidates_silently(self, tmp_path):
        store = tmp_path / "store.db"
        containee, containing = parse_cq(CONTAINEE), parse_cq(CONTAINING)
        indexed = Session(backend="indexed", persist_path=store)
        indexed_outcome = indexed.decide(containee, containing)
        indexed.close()

        interned = Session(backend="interned", persist_path=store)
        interned_outcome = interned.decide(containee, containing)
        assert interned.persistent.stats.hits == 0
        assert interned_outcome.verdict == indexed_outcome.verdict
        interned.close()

    def test_close_detaches_and_session_stays_usable(self, tmp_path):
        session = Session(persist_path=tmp_path / "store.db")
        containee, containing = parse_cq(CONTAINEE), parse_cq(CONTAINING)
        session.decide(containee, containing)
        session.close()
        assert session.persistent is None
        assert session.decide(containee, containing).verdict is not None
        session.close()  # idempotent

    def test_missing_parent_directories_are_created(self, tmp_path):
        deep = tmp_path / "a" / "b" / "store.db"
        session = Session(persist_path=deep)
        session.decide(parse_cq(CONTAINEE), parse_cq(CONTAINING))
        assert deep.exists()
        session.close()


class TestSpecRoundTrip:
    def test_spec_carries_the_persist_path(self, tmp_path):
        store = tmp_path / "store.db"
        session = Session(persist_path=store)
        spec = session.spec()
        assert spec.persist_path == str(store)
        worker = spec.build()
        assert worker.persistent is not None
        assert worker.persistent.path == store
        worker.close()
        session.close()

    def test_spec_without_persistence_builds_cold_workers(self):
        spec = Session().spec()
        assert spec.persist_path is None
        worker = spec.build()
        assert worker.persistent is None

    def test_spec_pickles_with_the_path(self, tmp_path):
        spec = Session(persist_path=tmp_path / "store.db").spec()
        assert pickle.loads(pickle.dumps(spec)).persist_path == spec.persist_path

    def test_rehydrated_worker_reads_the_parents_rows(self, tmp_path):
        store = tmp_path / "store.db"
        containee, containing = parse_cq(CONTAINEE), parse_cq(CONTAINING)
        parent = Session(persist_path=store)
        parent_outcome = parent.decide(containee, containing)

        worker = parent.spec().build()
        worker_outcome = worker.decide(containee, containing)
        assert worker.persistent.stats.hits >= 1
        assert outcome_face(worker_outcome) == outcome_face(parent_outcome)
        worker.close()
        parent.close()


#: A bag-contained pair (identical bodies), so ``decide`` exits 0.
CLI_CONTAINEE = "q(x, y) <- R(x, y)"
CLI_CONTAINING = "p(x, y) <- R(x, y)"


class TestCliPersist:
    def test_decide_persist_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store.db"
        argv = ["decide", CLI_CONTAINEE, CLI_CONTAINING, "--persist", str(store)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "persist" in cold.err  # stats on stderr, stdout stays clean
        assert store.exists()

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # byte-identical stdout across runs
        assert "1 hits" in warm.err

    def test_cache_info_vacuum_clear(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store.db"
        assert main(["decide", CLI_CONTAINEE, CLI_CONTAINING, "--persist", str(store)]) == 0
        capsys.readouterr()

        assert main(["cache", "info", str(store)]) == 0
        info = capsys.readouterr().out
        assert "entries:" in info and str(store) in info

        assert main(["cache", "vacuum", str(store)]) == 0
        assert "vacuumed" in capsys.readouterr().out

        assert main(["cache", "clear", str(store)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "info", str(store)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_maintenance_on_missing_store_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "vacuum", str(tmp_path / "absent.db")]) == 2
        assert "error" in capsys.readouterr().err

    def test_fuzz_persist_smoke(self, tmp_path, capsys):
        from repro.cli import main

        def verdict_lines(text):
            # The campaign report interleaves timings and cache statistics,
            # which legitimately vary run to run; the substance — verdict
            # tallies and discrepancy lines — must not.
            return [
                line
                for line in text.splitlines()
                if line.startswith("verdicts:") or "discrepanc" in line
            ]

        store = tmp_path / "store.db"
        argv = ["fuzz", "--cases", "5", "--seed", "3", "--persist", str(store)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "persist" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert verdict_lines(second.out) == verdict_lines(first.out)
        assert "no discrepancies found" in second.out
