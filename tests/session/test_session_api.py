"""Tests for the Session service facade: requests, outcomes, isolation."""

import pytest

from repro.engine import EngineCache, get_default_backend
from repro.engine.backends import Backend, NaiveBackend
from repro.exceptions import SessionError
from repro.queries.parser import parse_cq, parse_ucq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Constant
from repro.session import (
    ContainmentRequest,
    EvaluationRequest,
    Limits,
    MpiRequest,
    Outcome,
    Session,
    backend_names,
    current_session,
    register_backend,
    register_strategy,
    strategy_names,
    use_session,
)


@pytest.fixture
def q1():
    return parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")


@pytest.fixture
def q2():
    return parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")


@pytest.fixture
def tiny_bag():
    a, b = Constant("a"), Constant("b")
    return BagInstance({Atom("R", (a, b)): 2, Atom("P", (b, b)): 1})


class TestDecide:
    def test_bag_containment_outcome(self, q1, q2):
        session = Session()
        outcome = session.decide(q1, q2)
        assert outcome.verdict is True
        assert outcome.value.contained
        assert outcome.certificate is None
        assert outcome.elapsed >= 0
        assert "plans" in outcome.cache
        assert outcome.ok

    def test_negative_verdict_carries_the_counterexample(self, q1, q2):
        outcome = Session().decide(q2, q1)
        assert outcome.verdict is False
        assert outcome.certificate is not None
        assert outcome.certificate.verify(q2, q1)

    def test_request_object_form(self, q1, q2):
        session = Session()
        request = ContainmentRequest(q1, q2, strategy="all-probes")
        outcome = session.decide(request)
        assert outcome.request is request
        assert outcome.verdict is True
        assert outcome.value.strategy == "all-probes"

    def test_set_semantics(self, q1, q2):
        outcome = Session().decide(q1, q2, semantics="set")
        assert outcome.verdict is True
        assert outcome.certificate is not None  # the witnessing mapping

    def test_bag_set_semantics(self, q1, q2):
        outcome = Session().decide(q1, q2, semantics="bag-set")
        assert outcome.verdict is True

    def test_unknown_semantics_is_rejected(self, q1, q2):
        with pytest.raises(SessionError):
            Session().decide(q1, q2, semantics="fuzzy")

    def test_request_and_options_are_mutually_exclusive(self, q1, q2):
        with pytest.raises(SessionError):
            Session().decide(ContainmentRequest(q1, q2), q2)

    def test_lp_path(self, q1, q2):
        pytest.importorskip("scipy")
        outcome = Session().decide(q1, q2, diophantine_path="lp")
        assert outcome.verdict is True


class TestEvaluate:
    def test_bag_evaluation(self, q1, tiny_bag):
        outcome = Session().evaluate(q1, tiny_bag)
        a, b = Constant("a"), Constant("b")
        assert outcome.verdict is None
        assert outcome.value[(a, b)] == 4

    def test_answer_pinned_evaluation(self, q1, tiny_bag):
        a, b = Constant("a"), Constant("b")
        outcome = Session().evaluate(EvaluationRequest(q1, tiny_bag, answer=(a, b)))
        assert outcome.value == 4

    def test_set_semantics_accepts_bags_and_sets(self, q1, tiny_bag):
        session = Session()
        a, b = Constant("a"), Constant("b")
        from_bag = session.evaluate(q1, tiny_bag, semantics="set")
        from_set = session.evaluate(q1, tiny_bag.support(), semantics="set")
        assert from_bag.value == from_set.value
        assert (a, b) in from_bag.value

    def test_bag_set_semantics(self, q1, tiny_bag):
        outcome = Session().evaluate(q1, tiny_bag, semantics="bag-set")
        a, b = Constant("a"), Constant("b")
        assert outcome.value[(a, b)] == 1

    def test_ucq_evaluation(self, tiny_bag):
        ucq = parse_ucq(["q(x, y) <- R(x, y)", "q(x, y) <- P(x, y)"])
        outcome = Session().evaluate(ucq, tiny_bag)
        assert outcome.value.total() == 3

    def test_bag_semantics_requires_a_bag(self, q1, tiny_bag):
        with pytest.raises(SessionError):
            Session().evaluate(q1, tiny_bag.support())


class TestMpi:
    def test_encode_only(self, q1, q2):
        outcome = Session().mpi(q1, q2)
        assert outcome.verdict is None
        assert outcome.value.dimension >= 1

    def test_encode_and_decide(self, q1, q2):
        outcome = Session().mpi(MpiRequest(q2, q1, decide=True))
        encoding, decision = outcome.value
        assert outcome.verdict is decision.solvable is True
        assert outcome.certificate is decision.witness


class TestSpectrumVerifyFuzz:
    def test_containment_spectrum(self, q1):
        outcome = Session().containment_spectrum(q1, q1.with_name("copy"))
        assert outcome.verdict is True

    def test_verify_single_pair(self, q1, q2):
        outcome = Session().verify(q1, q2)
        assert outcome.verdict is True
        assert outcome.value.ok

    def test_fuzz_smoke_campaign(self):
        session = Session()
        outcome = session.fuzz(cases=4, seed=0, strategies=("most-general",), mutation_rate=0.0, shrink_failures=False)
        assert outcome.verdict is True
        assert outcome.value.cases_run == 4
        # The campaign ran inside the session: its cache saw the traffic.
        assert sum(counts[0] + counts[1] for counts in session.cache.snapshot().values()) > 0


class TestBatch:
    def test_streaming_heterogeneous_batch(self, q1, q2, tiny_bag):
        session = Session()
        requests = [
            ContainmentRequest(q1, q2),
            EvaluationRequest(q1, tiny_bag),
            MpiRequest(q1, q2),
        ]
        outcomes = list(session.batch(requests))
        assert [outcome.request for outcome in outcomes] == requests
        assert outcomes[0].verdict is True
        assert outcomes[1].value.total() > 0
        assert outcomes[2].value.dimension >= 1

    def test_batch_memoises_repeated_decisions(self, q1, q2):
        session = Session()
        outcomes = list(session.batch([ContainmentRequest(q1, q2)] * 5))
        assert len(outcomes) == 5
        assert len({outcome.verdict for outcome in outcomes}) == 1
        result_hits = sum(outcome.cache.get("results", (0, 0, 0))[0] for outcome in outcomes)
        assert result_hits >= 4  # requests 2..5 are answered from the memo

    def test_batch_amortises_plans_without_memoisation(self, q1, q2):
        session = Session(memoize=False)
        outcomes = list(session.batch([ContainmentRequest(q1, q2)] * 5))
        plan_hits = sum(outcome.cache.get("plans", (0, 0, 0))[0] for outcome in outcomes)
        assert plan_hits > 0  # later requests reuse the first request's compiled plan
        assert all(outcome.verdict is True for outcome in outcomes)

    def test_memo_distinguishes_renamed_queries(self, q1, q2):
        """Query equality is structural (names ignored); outcomes must not be."""
        session = Session()
        first = session.decide(q1, q2)
        renamed = session.decide(q1.with_name("mine"), q2.with_name("yours"))
        assert first.verdict == renamed.verdict
        assert renamed.value.containee.name == "mine"
        assert renamed.value.containing.name == "yours"
        assert "mine" in renamed.value.explain()

    def test_memoised_outcomes_match_fresh_ones(self, q1, q2):
        memoised = Session()
        first = memoised.decide(q2, q1)
        second = memoised.decide(q2, q1)
        fresh = Session(memoize=False).decide(q2, q1)
        assert first.value == second.value
        assert second.verdict == fresh.verdict
        assert second.value.counterexample == fresh.value.counterexample

    def test_batch_is_lazy(self, q1, q2):
        session = Session()
        stream = session.batch(ContainmentRequest(q1, q2) for _ in range(1000))
        first = next(stream)
        assert first.verdict is True  # no SessionError: nothing else was consumed

    def test_max_batch_size_limit(self, q1, q2):
        session = Session(limits=Limits(max_batch_size=2))
        with pytest.raises(SessionError):
            list(session.batch([ContainmentRequest(q1, q2)] * 3))

    def test_capture_errors_keeps_the_stream_alive(self, q1, tiny_bag):
        bad = EvaluationRequest(q1, tiny_bag.support())  # bag semantics on a set
        good = EvaluationRequest(q1, tiny_bag)
        outcomes = list(Session().batch([bad, good], capture_errors=True))
        assert not outcomes[0].ok and outcomes[0].error is not None
        assert outcomes[1].ok and outcomes[1].value.total() > 0


class TestIsolationAndContext:
    def test_sessions_own_their_caches(self, q1, q2):
        first, second = Session(), Session()
        first.decide(q1, q2)
        assert sum(counts[1] for counts in first.cache.snapshot().values()) > 0
        assert sum(counts[1] for counts in second.cache.snapshot().values()) == 0

    def test_use_session_activates_and_restores(self):
        session = Session(backend="naive")
        assert current_session() is None
        with use_session(session) as active:
            assert active is session
            assert current_session() is session
            assert get_default_backend() is session.backend
        assert current_session() is None
        assert get_default_backend().name == "indexed"

    def test_nested_sessions_restore_in_order(self):
        outer, inner = Session(name="outer"), Session(name="inner", backend="naive")
        with use_session(outer):
            with use_session(inner):
                assert current_session() is inner
                assert get_default_backend().name == "naive"
            assert current_session() is outer
            assert get_default_backend() is outer.backend

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(SessionError):
            Session(backend="quantum")

    def test_shared_cache_injection(self, q1, q2):
        cache = EngineCache()
        session = Session(cache=cache)
        session.decide(q1, q2)
        assert session.cache is cache
        assert sum(counts[1] for counts in cache.snapshot().values()) > 0


class TestRegistries:
    def test_register_backend_makes_the_name_available_everywhere(self, q1, q2):
        class EchoBackend(NaiveBackend):
            name = "echo-test"

        register_backend("echo-test", lambda cache: EchoBackend(), replace=True)
        assert "echo-test" in backend_names()
        session = Session(backend="echo-test")
        assert session.backend.name == "echo-test"
        assert session.decide(q1, q2).verdict is True

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(Exception):
            register_backend("indexed", lambda cache: NaiveBackend())

    def test_register_strategy_is_selectable_by_sessions(self, q1, q2):
        from repro.core.decision import decide_via_most_general_probe

        calls = []

        def recording_strategy(containee, containing, **options):
            calls.append((containee.name, containing.name))
            return decide_via_most_general_probe(containee, containing)

        register_strategy("recording-test", recording_strategy, replace=True)
        assert "recording-test" in strategy_names()
        outcome = Session().decide(q1, q2, strategy="recording-test")
        assert outcome.verdict is True
        assert calls == [("q1", "q2")]

    def test_register_strategy_rejects_duplicates(self):
        with pytest.raises(Exception):
            register_strategy("most-general", lambda *args, **kwargs: None)


class TestLimits:
    def test_bounded_guess_budget_comes_from_the_session(self):
        from repro.exceptions import EnumerationBudgetError

        big_containee = parse_cq("q1(x1, x2, x3) <- R(x1, x2), R(x2, x3), R(x3, x1)")
        big_containing = parse_cq("q2(x1, x2, x3) <- R(x1, x2), R(x2, x3)")
        tight = Session(limits=Limits(bounded_guess_max_candidates=1))
        with pytest.raises(EnumerationBudgetError):
            tight.decide(big_containee, big_containing, strategy="bounded-guess")

    def test_invalid_limits_are_rejected(self):
        with pytest.raises(SessionError):
            Limits(max_batch_size=0)
        with pytest.raises(SessionError):
            Limits(fuzz_time_budget=0.0)

    def test_outcome_explain_mentions_timing(self, q1, q2):
        text = Session().decide(q1, q2).explain()
        assert "ms" in text and "verdict=True" in text
