"""Tests for the legacy deprecation shims over the default module session."""

import warnings

import pytest

import repro
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant
from repro.session import Session
from repro.session.shims import DEPRECATED_SHIMS, reset_shim_warnings


@pytest.fixture
def q1():
    return parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")


@pytest.fixture
def q2():
    return parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")


@pytest.fixture
def tiny_bag():
    a, b = Constant("a"), Constant("b")
    return BagInstance({Atom("R", (a, b)): 2, Atom("P", (b, b)): 1})


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    reset_shim_warnings()
    yield
    reset_shim_warnings()


def _call_and_catch(func, *args, **kwargs):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = func(*args, **kwargs)
    return value, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestWarningBehaviour:
    def test_every_shim_advertises_its_replacement(self):
        assert "decide_bag_containment" in DEPRECATED_SHIMS
        for name, replacement in DEPRECATED_SHIMS.items():
            assert replacement, name
            assert getattr(repro, name).__deprecated_replacement__ == replacement

    def test_warning_fires_exactly_once_per_call_site(self, q1, q2):
        _, first = _call_and_catch(repro.decide_bag_containment, q1, q2)
        _, second = _call_and_catch(repro.decide_bag_containment, q1, q2)
        assert len(first) == 1
        assert "Session.decide()" in str(first[0].message)
        assert second == []

    def test_warning_fires_again_after_a_reset(self, q1, q2):
        _, first = _call_and_catch(repro.decide_bag_containment, q1, q2)
        reset_shim_warnings()
        _, again = _call_and_catch(repro.decide_bag_containment, q1, q2)
        assert len(first) == len(again) == 1

    def test_warning_is_attributed_to_the_caller(self, q1, q2):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.evaluate_bag(q1, BagInstance({}))
        assert caught and caught[0].filename == __file__

    def test_use_backend_shim_warns_and_still_switches(self):
        from repro.engine import get_default_backend

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with repro.use_backend("naive") as backend:
                assert backend.name == "naive"
                assert get_default_backend().name == "naive"
        assert get_default_backend().name == "indexed"
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_set_default_backend_shim_warns_and_still_sets(self):
        from repro.engine import get_default_backend

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            previous = repro.set_default_backend("naive")
            try:
                assert get_default_backend().name == "naive"
            finally:
                repro.set_default_backend(previous)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)


class TestShimResultsMatchSessions:
    def test_decide_matches_session_decide(self, q1, q2):
        session = Session()
        for containee, containing in [(q1, q2), (q2, q1)]:
            legacy, _ = _call_and_catch(repro.decide_bag_containment, containee, containing)
            fresh = session.decide(containee, containing)
            assert legacy.contained == fresh.verdict
            assert legacy.strategy == fresh.value.strategy
            assert legacy.reason == fresh.value.reason
            assert legacy.counterexample == fresh.certificate

    def test_decide_matches_across_strategies(self, q1, q2):
        session = Session()
        for strategy in ("most-general", "all-probes", "bounded-guess"):
            legacy, _ = _call_and_catch(repro.decide_bag_containment, q2, q1, strategy=strategy)
            fresh = session.decide(q2, q1, strategy=strategy)
            assert legacy.contained == fresh.verdict
            assert legacy.counterexample == fresh.certificate

    def test_evaluate_matches_session_evaluate(self, q1, tiny_bag):
        legacy, _ = _call_and_catch(repro.evaluate_bag, q1, tiny_bag)
        assert legacy == Session().evaluate(q1, tiny_bag).value

    def test_set_and_bag_set_containment_match(self, q1, q2):
        session = Session()
        legacy_set, _ = _call_and_catch(repro.decide_set_containment, q1, q2)
        assert legacy_set.contained == session.decide(q1, q2, semantics="set").verdict
        legacy_bag_set, _ = _call_and_catch(repro.decide_bag_set_containment, q1, q2)
        assert legacy_bag_set == session.decide(q1, q2, semantics="bag-set").verdict

    def test_compare_matches_containment_spectrum(self, q1, q2):
        legacy, _ = _call_and_catch(repro.compare, q1, q2)
        fresh = Session().containment_spectrum(q1, q2)
        assert legacy == fresh.value

    def test_encode_matches_session_mpi(self, q1, q2):
        legacy, _ = _call_and_catch(repro.encode_most_general, q1, q2)
        fresh = Session().mpi(q1, q2).value
        assert legacy.inequality == fresh.inequality
        assert legacy.probe == fresh.probe

    def test_run_differential_oracle_matches_session_verify(self, q1, q2):
        legacy, _ = _call_and_catch(repro.run_differential_oracle, q1, q2)
        fresh = Session().verify(q1, q2).value
        assert legacy.consensus == fresh.consensus
        assert legacy.discrepancies == fresh.discrepancies

    def test_shims_honor_an_explicit_backend_selection(self, q1, q2, monkeypatch):
        """A legacy ``use_backend`` scope must govern shimmed calls (regression).

        The shim's default-session activation used to override the
        context's explicit backend with the session's ``indexed`` instance.
        """
        from repro.engine.backends import NaiveBackend

        calls = []
        original = NaiveBackend.iterate

        def spy(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(NaiveBackend, "iterate", spy)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with repro.use_backend("naive"):
                assert repro.decide_bag_containment(q1, q2).contained
        assert calls, "the shimmed decision must run on the explicitly selected backend"

    def test_warning_fires_again_from_a_second_call_site(self, q1, q2):
        """Dedup is per call *site*: two lines in one module both warn."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.is_bag_contained(q1, q2)  # first call site
            repro.is_bag_contained(q1, q2)  # second call site (distinct line)
            repro.is_bag_contained(q1, q2)  # repeat of... a third line: warns too
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 3

    def test_cross_check_honors_an_explicit_backend_selection(self, q1, q2, monkeypatch):
        from repro.engine.backends import NaiveBackend

        calls = []
        original = NaiveBackend.iterate

        def spy(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(NaiveBackend, "iterate", spy)
        from repro.baselines.comparison import cross_check
        from repro.engine import use_backend

        with use_backend("naive"):
            report = cross_check(q1, q2)
        assert report.consistent
        assert calls, "cross_check must run on the explicitly selected backend"

    def test_shims_honor_an_active_session(self, q1, q2):
        session = Session(backend="naive")
        from repro.session import use_session

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with use_session(session):
                repro.decide_bag_containment(q1, q2)
        from repro.session import default_session

        # The active session governed the call: the default session's plan
        # layers saw no traffic from it (naive bypasses them anyway, but the
        # decision must not have re-activated the default session at all).
        assert session.cache is not default_session().cache

    def test_default_session_is_a_singleton_under_concurrency(self):
        import threading

        from repro.session import default_session
        from repro.session import session as session_module

        original = session_module._DEFAULT_SESSION
        session_module._DEFAULT_SESSION = None
        try:
            barrier = threading.Barrier(8, timeout=10)
            seen = []

            def grab():
                barrier.wait()
                seen.append(default_session())

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert len(seen) == 8
            assert len({id(instance) for instance in seen}) == 1
        finally:
            session_module._DEFAULT_SESSION = original

    def test_shims_run_over_the_default_session(self, q1, q2):
        from repro.engine import backends as engine_backends
        from repro.session import default_session

        # A context with no explicit backend choice (earlier tests may have
        # left a set_default_backend selection behind, which shims honor).
        token = engine_backends._ACTIVE_BACKEND.set(None)
        try:
            cache = default_session().cache
            before = {layer: counts for layer, counts in cache.snapshot().items()}
            _call_and_catch(repro.decide_bag_containment, q1.with_name("warm"), q2)
            after = cache.snapshot()
            assert sum(c[0] + c[1] for c in after.values()) > sum(
                c[0] + c[1] for c in before.values()
            )
        finally:
            engine_backends._ACTIVE_BACKEND.reset(token)


class TestInternalHygiene:
    def test_no_internal_module_calls_a_shim(self, q1, q2, tiny_bag):
        """Exercising the service paths raises no repro-attributed warnings.

        The pytest filter escalates ``DeprecationWarning``s attributed to
        ``repro.*`` modules to errors, so this test fails loudly if any
        internal code path routes through a deprecated shim.
        """
        session = Session()
        session.decide(q1, q2)
        session.decide(q2, q1)
        session.evaluate(q1, tiny_bag)
        session.containment_spectrum(q1, q2)
        session.verify(q1, q2)
        session.fuzz(cases=3, seed=0, mutation_rate=0.5, shrink_failures=False)
        repro.cross_check(q1, q2)
