"""Property test: ``Session.decide()`` is the legacy decision procedure.

300 seeded adversarial pairs (shared core, one perturbed multiplicity — the
regime where the decision procedures have least slack) are decided through
a fresh :class:`Session` and through the legacy
``repro.core.decision.decide_bag_containment`` path, across strategies and
backends.  Verdicts, strategies, reasons and counterexample certificates
must be identical everywhere.
"""

import pytest

from repro.core.decision import decide_bag_containment
from repro.engine import use_backend
from repro.session import ContainmentRequest, Session
from repro.workloads.random_queries import random_adversarial_pair

CASES = 300

#: (strategy, backend) grid; bounded-guess is covered on a slice of the
#: seeds below to keep the enumeration inside the test budget.
GRID = [
    ("most-general", "indexed"),
    ("most-general", "naive"),
    ("all-probes", "indexed"),
    ("all-probes", "naive"),
]


def _legacy(containee, containing, strategy, backend, **kwargs):
    with use_backend(backend):
        return decide_bag_containment(containee, containing, strategy=strategy, **kwargs)


@pytest.mark.parametrize("chunk", range(10))
def test_session_matches_legacy_on_adversarial_pairs(chunk):
    seeds = range(chunk * (CASES // 10), (chunk + 1) * (CASES // 10))
    for seed in seeds:
        containee, containing = random_adversarial_pair(seed, num_atoms=3, head_size=2)
        strategy, backend = GRID[seed % len(GRID)]
        session = Session(backend=backend)

        legacy = _legacy(containee, containing, strategy, backend)
        fresh = session.decide(ContainmentRequest(containee, containing, strategy=strategy))

        context = f"seed={seed} strategy={strategy} backend={backend}"
        assert fresh.verdict == legacy.contained, context
        assert fresh.value.strategy == legacy.strategy == strategy, context
        assert fresh.value.reason == legacy.reason, context
        assert fresh.certificate == legacy.counterexample, context
        if not legacy.contained:
            assert fresh.certificate is not None, context
            assert fresh.certificate.verify(containee, containing), context


def test_session_matches_legacy_with_bounded_guess():
    """The guess-&-check strategy agrees too (smaller slice: it enumerates)."""
    checked = 0
    for seed in range(40):
        containee, containing = random_adversarial_pair(seed, num_atoms=2, head_size=1)
        session = Session(backend="indexed")
        from repro.exceptions import EnumerationBudgetError

        try:
            legacy = _legacy(
                containee, containing, "bounded-guess", "indexed", max_candidates=20_000
            )
        except EnumerationBudgetError:
            continue
        fresh = session.decide(
            ContainmentRequest(containee, containing, strategy="bounded-guess")
        )
        assert fresh.verdict == legacy.contained, f"seed={seed}"
        assert fresh.certificate == legacy.counterexample, f"seed={seed}"
        checked += 1
    assert checked >= 10  # the budget skip must not hollow the test out
