"""Tests for parallel-batch fault survival (``repro.parallel``).

The contract under test: a worker crash on one request is retried, the
crashing shard is bisected, and only the poison request is quarantined —
every other request completes with its normal outcome in request order;
``ParallelError`` chains the worker's original exception (with its remote
traceback) and names the failing request's index and fingerprint; and a
*hung* worker is recovered through ``task_timeout`` by rebuilding the
pool without charging innocent shards any retry budget.
"""

import pytest

from repro.exceptions import FaultInjected, ParallelError
from repro.faults import FaultPlan, FaultRule
from repro.session import Session
from repro.workloads.scale import mixed_requests

POISON = 3


def _requests(count=8):
    return mixed_requests(count, seed=21, verify_certificates=False)


def _crash_plan():
    return FaultPlan(seed=1, rules=(FaultRule("parallel.request", "crash", keys=(POISON,)),))


class TestQuarantine:
    def test_only_the_poison_request_is_quarantined_in_order(self):
        requests = _requests()
        oracle = list(Session(name="oracle").batch(requests, capture_errors=True))
        session = Session(name="faulted", fault_plan=_crash_plan())
        outcomes = list(
            session.batch(
                requests, capture_errors=True, jobs=2, chunk_size=2, task_timeout=30.0
            )
        )
        assert len(outcomes) == len(requests)
        for index, (request, expected, outcome) in enumerate(
            zip(requests, oracle, outcomes)
        ):
            assert outcome.request is request  # original identity, in order
            if index == POISON:
                assert outcome.degraded == "quarantined"
                assert outcome.verdict is None
                assert f"request {POISON}" in outcome.error
                assert "injected worker crash" in outcome.error
            else:
                assert outcome.degraded is None
                assert outcome.verdict == expected.verdict
                assert outcome.certificate == expected.certificate
                assert str(outcome.error) == str(expected.error)

    def test_quarantine_error_names_the_fingerprint(self):
        requests = _requests(6)
        session = Session(fault_plan=_crash_plan())
        outcomes = list(
            session.batch(requests, capture_errors=True, jobs=2, chunk_size=2)
        )
        message = outcomes[POISON].error
        assert "quarantined after repeated worker failure" in message
        # The 16-hex-digit request fingerprint makes the poison request
        # findable without re-running the batch.
        inside = message.split("(")[1].split(")")[0]
        assert len(inside) == 16 and all(c in "0123456789abcdef" for c in inside)


class TestErrorChaining:
    def test_parallel_error_names_request_and_chains_the_original(self):
        requests = _requests(6)
        session = Session(fault_plan=_crash_plan())
        with pytest.raises(ParallelError) as excinfo:
            list(session.batch(requests, jobs=2, chunk_size=2))
        message = str(excinfo.value)
        assert f"on request {POISON}" in message
        cause = excinfo.value.__cause__
        assert isinstance(cause, FaultInjected)
        # The remote detail rides as the revived exception's own cause, so
        # the worker-side failure survives the process boundary verbatim.
        assert cause.__cause__ is not None
        assert "injected worker crash" in str(cause.__cause__)

    def test_raised_worker_errors_carry_the_remote_traceback(self):
        from repro.session import ContainmentRequest
        from repro.workloads.structured import chain_containment_pair

        containee, containing = chain_containment_pair(2)
        poison = ContainmentRequest(containing, containee)  # raises in the worker
        session = Session()
        with pytest.raises(ParallelError) as excinfo:
            list(
                session.batch(
                    [poison, ContainmentRequest(containee, containing)],
                    jobs=2,
                    chunk_size=1,
                )
            )
        remote = excinfo.value.__cause__.__cause__
        assert remote is not None
        assert "Traceback (most recent call last)" in str(remote)

    def test_request_errors_chain_without_faults(self):
        # A genuinely broken request (not an injected fault) gets the same
        # index/fingerprint annotation when capture_errors is off.
        from repro.workloads.structured import chain_containment_pair
        from repro.session import ContainmentRequest

        containee, containing = chain_containment_pair(2)
        good = ContainmentRequest(containee, containing, verify_certificates=False)
        poison = ContainmentRequest(containing, containee)  # existential containee
        requests = [good, poison, good, good]
        session = Session()
        with pytest.raises(ParallelError, match="on request 1") as excinfo:
            list(session.batch(requests, jobs=2, chunk_size=1))
        assert type(excinfo.value.__cause__).__name__ == "NotProjectionFreeError"


class TestHangRecovery:
    def test_hung_worker_is_recovered_and_innocents_complete(self):
        requests = _requests(6)
        plan = FaultPlan(
            rules=(
                FaultRule("parallel.request", "hang", keys=(POISON,), delay_ms=60_000.0),
            )
        )
        oracle = list(Session(name="oracle").batch(requests, capture_errors=True))
        session = Session(fault_plan=plan)
        outcomes = list(
            session.batch(
                requests, capture_errors=True, jobs=2, chunk_size=2, task_timeout=1.0
            )
        )
        assert len(outcomes) == len(requests)
        for index, (expected, outcome) in enumerate(zip(oracle, outcomes)):
            if index == POISON:
                assert outcome.degraded == "quarantined"
                assert "task_timeout" in outcome.error
            else:
                # Innocent shards sharing the pool with the hung worker
                # must not burn retry budget or degrade.
                assert outcome.degraded is None
                assert outcome.verdict == expected.verdict
