"""Tests for the parallel sharded batch layer (``repro.parallel``).

The contract under test: ``Session.batch(requests, jobs=N)`` yields the
same outcome stream as the serial path — same order, same verdicts,
certificates, values and captured errors — while sharding the work across
worker processes; worker cache deltas merge into the parent session; and
the pool shuts down cleanly on worker failures, including
``KeyboardInterrupt``.
"""

import multiprocessing
import pickle
import time

import pytest

from repro.engine.cache import EngineCache
from repro.exceptions import ParallelError, SessionError
from repro.parallel import (
    default_chunk_size,
    merged_cache_stats,
    pool_imap,
    shard,
)
from repro.session import ContainmentRequest, Limits, Session, SessionSpec
from repro.workloads.random_queries import random_adversarial_pair
from repro.workloads.scale import mixed_requests
from repro.workloads.structured import chain_containment_pair


def _poison_request() -> ContainmentRequest:
    """A request whose containee has existential variables: decide() raises."""
    containee, containing = chain_containment_pair(2)
    return ContainmentRequest(containing, containee)


def _assert_no_leaked_children() -> None:
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children(), "worker processes leaked"


# --------------------------------------------------------------------- #
# Serial/parallel equivalence (the 300-case property test)
# --------------------------------------------------------------------- #
CASES = 300

#: (strategy, backend) grid, matching the session-vs-legacy property test;
#: bounded-guess rides along on a slice of small pairs further down.
GRID = [
    ("most-general", "indexed"),
    ("most-general", "naive"),
    ("all-probes", "indexed"),
    ("all-probes", "naive"),
]


@pytest.mark.parametrize("grid_index", range(len(GRID)))
def test_parallel_batch_matches_serial_across_strategies_and_backends(grid_index):
    strategy, backend = GRID[grid_index]
    per_cell = CASES // len(GRID)
    seeds = range(grid_index * per_cell, (grid_index + 1) * per_cell)
    requests = [
        ContainmentRequest(
            *random_adversarial_pair(seed, num_atoms=3, head_size=2), strategy=strategy
        )
        for seed in seeds
    ]

    serial = list(Session(backend=backend).batch(requests))
    parallel = list(Session(backend=backend).batch(requests, jobs=3))

    assert len(parallel) == len(serial) == per_cell
    for index, (expected, actual) in enumerate(zip(serial, parallel)):
        context = f"{strategy}/{backend} seed={seeds[index]}"
        assert actual.request is requests[index], context
        assert actual.verdict == expected.verdict, context
        assert actual.certificate == expected.certificate, context
        assert actual.value == expected.value, context
        assert actual.error is None and expected.error is None, context


def test_parallel_batch_matches_serial_with_bounded_guess():
    """The enumeration strategy agrees too; budget errors match by string."""
    requests = [
        ContainmentRequest(
            *random_adversarial_pair(seed, num_atoms=2, head_size=1),
            strategy="bounded-guess",
        )
        for seed in range(24)
    ]
    serial = list(Session().batch(requests, capture_errors=True))
    parallel = list(Session().batch(requests, jobs=2, capture_errors=True))
    assert [o.verdict for o in serial] == [o.verdict for o in parallel]
    assert [o.error for o in serial] == [o.error for o in parallel]
    assert any(o.error is None for o in serial)  # the slice must decide something


# --------------------------------------------------------------------- #
# Cache-delta merging
# --------------------------------------------------------------------- #
def test_worker_cache_deltas_merge_into_parent_session():
    def fresh() -> Session:
        return Session(
            cache=EngineCache(max_plans=100_000, max_indexes=100_000, max_results=100_000)
        )

    requests = mixed_requests(60, seed=11, distinct=True, verify_certificates=False)
    serial_session, parallel_session = fresh(), fresh()
    serial = list(serial_session.batch(requests))
    parallel = list(parallel_session.batch(requests, jobs=2))

    # Component-distinct requests share no cacheable work, so the merged
    # per-outcome deltas agree between the two execution shapes...
    assert merged_cache_stats(parallel) == merged_cache_stats(serial)
    # ...and the parent session absorbed exactly the fleet's counters (its
    # own cache ran nothing, so its totals are the absorbed deltas).
    assert parallel_session.cache.snapshot() == serial_session.cache.snapshot()


def test_absorb_delta_moves_only_counters():
    cache = EngineCache()
    cache.absorb_delta({"plans": (3, 2, 1), "results": (5, 0, 0), "unknown": (9, 9, 9)})
    assert cache.snapshot() == {
        "plans": (3, 2, 1),
        "indexes": (0, 0, 0),
        "results": (5, 0, 0),
    }
    assert len(cache._plans) == 0  # no entries were created


def test_outcome_elapsed_is_measured_in_the_worker():
    requests = mixed_requests(8, seed=3)
    outcomes = list(Session().batch(requests, jobs=2))
    assert all(outcome.elapsed > 0 for outcome in outcomes)


# --------------------------------------------------------------------- #
# Ordering, sharding, limits
# --------------------------------------------------------------------- #
def test_outcomes_stream_in_request_order_under_skewed_chunking():
    requests = mixed_requests(30, seed=4)
    outcomes = list(Session().batch(requests, jobs=3, chunk_size=1))
    assert [outcome.request for outcome in outcomes] == requests


def test_shard_and_chunk_size_helpers():
    assert shard([1, 2, 3, 4, 5], 2) == [(0, (1, 2)), (2, (3, 4)), (4, (5,))]
    with pytest.raises(ParallelError):
        shard([1], 0)
    assert default_chunk_size(0, 4) == 1
    assert default_chunk_size(1000, 4) == 32  # capped
    assert default_chunk_size(8, 4) == 1  # several chunks per worker
    assert 1 <= default_chunk_size(100, 3) <= 32


def test_parallel_batch_respects_max_batch_size():
    session = Session(limits=Limits(max_batch_size=5))
    requests = mixed_requests(8, seed=1)
    with pytest.raises(SessionError, match="max_batch_size"):
        list(session.batch(requests, jobs=2))


def test_session_spec_is_picklable_and_rehydrates():
    session = Session(
        backend="naive",
        cache=EngineCache(max_plans=7, max_indexes=5, max_results=3),
        limits=Limits(bounded_guess_max_candidates=123),
        memoize=False,
    )
    spec = pickle.loads(pickle.dumps(session.spec()))
    assert isinstance(spec, SessionSpec)
    twin = spec.build()
    assert twin.backend_name == "naive"
    assert twin.limits == session.limits
    assert twin.memoize is False
    assert twin.cache.capacities == (7, 5, 3)
    assert twin.cache is not session.cache


# --------------------------------------------------------------------- #
# Failure handling and clean shutdown
# --------------------------------------------------------------------- #
def test_capture_errors_matches_serial_rendering():
    requests = mixed_requests(6, seed=2)
    requests.insert(3, _poison_request())
    serial = list(Session().batch(requests, capture_errors=True))
    parallel = list(Session().batch(requests, jobs=2, capture_errors=True))
    assert [o.error for o in serial] == [o.error for o in parallel]
    assert serial[3].error is not None and "NotProjectionFree" in serial[3].error


def test_worker_exception_raises_parallel_error_and_cleans_up():
    requests = mixed_requests(6, seed=2) + [_poison_request()]
    with pytest.raises(ParallelError, match="NotProjectionFree"):
        list(Session().batch(requests, jobs=2, chunk_size=2))
    _assert_no_leaked_children()


def test_failed_worker_initializer_raises_instead_of_hanging():
    """A spec the worker cannot rehydrate (e.g. a plugin backend missing
    after ``spawn`` re-imports) must surface as ``ParallelError``: a raising
    initializer would kill the worker during bootstrap and the pool would
    respawn it forever while ``imap`` blocks."""
    import repro.parallel as parallel_module

    bad_spec = SessionSpec(backend="no-such-backend")
    requests = mixed_requests(2, seed=0)
    payloads = [(0, tuple(requests), False)]
    with pytest.raises(ParallelError, match="no-such-backend"):
        list(
            pool_imap(
                parallel_module._run_request_chunk,
                payloads,
                jobs=1,
                initializer=parallel_module._batch_worker_init,
                initargs=(bad_spec,),
            )
        )
    _assert_no_leaked_children()


def _raise_keyboard_interrupt(payload):
    raise KeyboardInterrupt("simulated ctrl-c in a worker")


def _identity(payload):
    return payload


def test_keyboard_interrupt_in_worker_propagates_and_cleans_up():
    with pytest.raises(KeyboardInterrupt):
        list(pool_imap(_raise_keyboard_interrupt, [1, 2, 3], jobs=2))
    _assert_no_leaked_children()
    # The harness is reusable after the failure.
    assert list(pool_imap(_identity, [1, 2, 3], jobs=2)) == [1, 2, 3]


def test_closing_the_outcome_iterator_tears_the_pool_down():
    stream = Session().batch(mixed_requests(40, seed=6), jobs=2, chunk_size=2)
    assert next(stream).ok
    stream.close()
    _assert_no_leaked_children()


def test_single_request_and_jobs_one_fall_back_to_serial():
    requests = mixed_requests(1, seed=9)
    (outcome,) = list(Session().batch(requests, jobs=4))
    assert outcome.ok
    serial = list(Session().batch(mixed_requests(5, seed=9), jobs=1))
    assert all(outcome.ok for outcome in serial)
