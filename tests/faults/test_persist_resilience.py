"""Tests for the hardened persist tier: retries, breaker, torn writes.

The contract under test: transient (busy/locked-class) failures are
retried with bounded jittered backoff and absorbed; persistent failures
trip the circuit breaker, which skips round-trips while open, admits a
half-open probe after the cooldown, and closes on probe success; torn
writes degrade to counted misses on read-back; and none of it ever
surfaces an exception to the cache layer above.
"""

import time

import pytest

from repro.engine.persist import MISS, CircuitBreaker, PersistentCache
from repro.faults import FaultPlan, FaultRule, use_faults


def _store(tmp_path, **kwargs) -> PersistentCache:
    return PersistentCache(tmp_path / "store.db", **kwargs)


def _key(tag: str):
    return ("session", f"resilience-{tag}")


class TestRetries:
    def test_injected_busy_on_store_is_retried_and_absorbed(self, tmp_path):
        store = _store(tmp_path)
        plan = FaultPlan(rules=(FaultRule("persist.store", "busy", count=1),))
        try:
            with use_faults(plan):
                assert store.store("results", _key("busy"), {"n": 1}) is True
            assert store.stats.retries >= 1
            assert store.stats.errors == 0
            assert store.load("results", _key("busy")) == {"n": 1}
        finally:
            store.close()

    def test_injected_busy_on_load_is_retried_and_absorbed(self, tmp_path):
        store = _store(tmp_path)
        try:
            assert store.store("results", _key("load"), "value") is True
            plan = FaultPlan(rules=(FaultRule("persist.load", "busy", count=1),))
            with use_faults(plan):
                assert store.load("results", _key("load")) == "value"
            assert store.stats.retries >= 1
            assert store.stats.errors == 0
        finally:
            store.close()

    def test_retry_budget_is_bounded(self, tmp_path):
        # An unbounded busy storm must exhaust the retry budget and count
        # one error, not spin forever.
        store = _store(tmp_path)
        plan = FaultPlan(rules=(FaultRule("persist.store", "busy"),))
        try:
            with use_faults(plan):
                assert store.store("results", _key("storm"), 1) is False
            assert store.stats.errors == 1
        finally:
            store.close()

    def test_torn_write_degrades_to_a_miss_on_read_back(self, tmp_path):
        store = _store(tmp_path)
        plan = FaultPlan(rules=(FaultRule("persist.store", "torn-write", count=1),))
        try:
            with use_faults(plan):
                assert store.store("results", _key("torn"), {"big": "x" * 256}) is True
            assert store.load("results", _key("torn")) is MISS
            assert store.stats.errors == 1
            # The slot is still writable: a clean store repairs it.
            assert store.store("results", _key("torn"), {"big": "y"}) is True
            assert store.load("results", _key("torn")) == {"big": "y"}
        finally:
            store.close()

    def test_injected_load_error_is_a_counted_miss(self, tmp_path):
        store = _store(tmp_path)
        try:
            assert store.store("results", _key("err"), 7) is True
            plan = FaultPlan(rules=(FaultRule("persist.load", "error", count=1),))
            with use_faults(plan):
                assert store.load("results", _key("err")) is MISS
            assert store.stats.errors == 1
            assert store.load("results", _key("err")) == 7
        finally:
            store.close()


class TestBreaker:
    def test_unit_lifecycle(self):
        breaker = CircuitBreaker(threshold=2, cooldown=0.05)
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.transitions == ("open", "half-open", "closed")

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.transitions == ("open", "half-open", "open")

    def test_store_level_lifecycle_and_skip_accounting(self, tmp_path):
        store = _store(tmp_path, breaker_threshold=2, breaker_cooldown=0.10)
        plan = FaultPlan(rules=(FaultRule("persist.store", "error", count=2),))
        try:
            with use_faults(plan):
                assert store.store("results", _key("b0"), 0) is False
                assert store.store("results", _key("b1"), 1) is False
            assert store.breaker.state == "open"
            assert store.stats.errors == 2
            # While open, stores and loads are skipped without touching
            # sqlite — and without raising.
            assert store.store("results", _key("b2"), 2) is False
            assert store.load("results", _key("b0")) is MISS
            assert store.stats.breaker_skipped == 2
            time.sleep(0.12)
            assert store.store("results", _key("b3"), 3) is True  # half-open probe
            assert store.breaker.state == "closed"
            assert store.breaker.transitions == ("open", "half-open", "closed")
            assert store.load("results", _key("b3")) == 3
        finally:
            store.close()

    def test_info_and_describe_report_the_breaker(self, tmp_path):
        store = _store(tmp_path, breaker_threshold=1, breaker_cooldown=60.0)
        plan = FaultPlan(rules=(FaultRule("persist.store", "error", count=1),))
        try:
            with use_faults(plan):
                store.store("results", _key("rep"), 1)
            info = store.info()
            assert info["breaker"]["state"] == "open"
            assert info["breaker"]["opens"] == 1
            assert info["breaker"]["transitions"] == ["open"]
            assert "breaker open" in store.describe()
        finally:
            store.close()

    def test_healthy_path_stats_line_is_unchanged(self, tmp_path):
        # The warm-start CI job greps this line; a healthy store must not
        # grow a breaker suffix.
        store = _store(tmp_path)
        try:
            store.store("results", _key("h"), 1)
            assert "; breaker" not in store.describe()
            assert "0 errors" in store.stats.describe()
        finally:
            store.close()


class TestConnectFaults:
    def test_injected_connect_error_degrades_to_pass_through(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule("persist.connect", "error", count=1),))
        with use_faults(plan):
            store = _store(tmp_path)
        try:
            assert store.store("results", _key("dead"), 1) is False
            assert store.load("results", _key("dead")) is MISS
            assert store.stats.errors >= 1
            assert store.info()["status"] == "unavailable"
        finally:
            store.close()
