"""Tests for wall-clock deadlines (``repro.faults.runtime`` + Session).

The contract under test: ``Limits.deadline_ms`` bounds each request; an
exhausted budget yields an honest degraded Outcome (``verdict None``,
``degraded="deadline"``) instead of raising or guessing; degraded runs
never poison the session memo; and — the neutrality property — a generous
deadline changes *nothing* about the outcomes of requests that finish
under it, on every engine backend.
"""

import time

import pytest

from repro.engine import backend_names
from repro.exceptions import DeadlineExceeded, SessionError
from repro.faults import (
    FaultPlan,
    FaultRule,
    TICK_INTERVAL,
    check_deadline,
    deadline_scope,
    tick_handle,
    use_faults,
)
from repro.session import Limits, Session
from repro.workloads.scale import mixed_requests
from repro.workloads.structured import chain_containment_pair


def _small_pair():
    return chain_containment_pair(2)


class TestRuntimePrimitives:
    def test_limits_validation(self):
        with pytest.raises(SessionError, match="deadline_ms"):
            Limits(deadline_ms=0)
        with pytest.raises(SessionError, match="deadline_ms"):
            Limits(deadline_ms=-5)
        assert Limits(deadline_ms=100).deadline_ms == 100
        assert Limits().deadline_ms is None

    def test_check_deadline_raises_after_expiry(self):
        with deadline_scope(5):
            time.sleep(0.02)
            with pytest.raises(DeadlineExceeded):
                check_deadline()
        check_deadline()  # scope closed: no ambient deadline, no raise

    def test_deadline_scope_none_is_noop(self):
        with deadline_scope(None):
            check_deadline()

    def test_innermost_scope_wins(self):
        with deadline_scope(60_000):
            with deadline_scope(5):
                time.sleep(0.02)
                with pytest.raises(DeadlineExceeded):
                    check_deadline()
            check_deadline()  # back to the generous outer budget

    def test_tick_handle_inactive_is_none(self):
        assert tick_handle() is None

    def test_tick_handle_polls_deadline(self):
        with deadline_scope(5):
            tick = tick_handle()
            assert tick is not None
            time.sleep(0.02)
            with pytest.raises(DeadlineExceeded):
                tick()

    def test_tick_interval_bounds_polling_cost(self):
        assert TICK_INTERVAL == 64


class TestSessionDeadline:
    def test_admission_latency_past_deadline_degrades_honestly(self):
        containee, containing = _small_pair()
        plan = FaultPlan(
            rules=(FaultRule("session.execute", "latency", delay_ms=80.0),)
        )
        session = Session(limits=Limits(deadline_ms=25), fault_plan=plan)
        outcome = session.decide(containee, containing)
        assert outcome.degraded == "deadline"
        assert outcome.verdict is None
        assert outcome.value is None
        assert outcome.error is None
        assert outcome.elapsed >= 0.0
        assert "deadline" in outcome.explain()

    def test_engine_start_latency_past_deadline_degrades(self):
        containee, containing = _small_pair()
        plan = FaultPlan(rules=(FaultRule("executor.start", "latency", delay_ms=80.0),))
        session = Session(limits=Limits(deadline_ms=25), fault_plan=plan)
        outcome = session.decide(containee, containing)
        assert outcome.degraded == "deadline"
        assert outcome.verdict is None

    def test_degraded_run_does_not_poison_the_memo(self):
        containee, containing = _small_pair()
        plan = FaultPlan(
            rules=(FaultRule("session.execute", "latency", delay_ms=80.0, count=1),)
        )
        session = Session(limits=Limits(deadline_ms=25), fault_plan=plan)
        first = session.decide(containee, containing)
        assert first.degraded == "deadline"
        # The injected latency is exhausted (count=1): the retry must run
        # for real and produce a verdict — a memoized degraded outcome
        # would surface verdict None again.
        second = session.decide(containee, containing)
        assert second.degraded is None
        assert second.verdict is not None

    def test_verify_and_fuzz_ignore_the_per_request_deadline(self):
        # Campaign-style services manage their own budgets; a 1ms session
        # deadline must not abort them.
        session = Session(limits=Limits(deadline_ms=1))
        outcome = session.fuzz(cases=2, seed=0)
        assert outcome.degraded is None
        assert outcome.error is None


class TestDeadlineNeutrality:
    """Satellite: under-deadline requests are byte-identical modulo timing."""

    @pytest.mark.parametrize("backend", backend_names())
    def test_generous_deadline_changes_nothing(self, backend):
        requests = mixed_requests(8, seed=13, verify_certificates=False)
        plain = Session(backend=backend)
        bounded = Session(backend=backend, limits=Limits(deadline_ms=120_000))
        baseline = list(plain.batch(requests, capture_errors=True))
        guarded = list(bounded.batch(requests, capture_errors=True))
        assert len(baseline) == len(guarded) == len(requests)
        for request, a, b in zip(requests, baseline, guarded):
            assert a.request is request and b.request is request
            assert b.degraded is None
            assert a.degraded is None
            assert a.verdict == b.verdict
            assert a.certificate == b.certificate
            assert (type(a.error), str(a.error)) == (type(b.error), str(b.error))
            if a.value is not None:
                assert a.value == b.value
            else:
                assert b.value is None
