"""Tests for the fault-injection plane (``repro.faults.plan``).

The contract under test: plans are frozen picklable values validated at
construction; arming is ContextVar-scoped and costs nothing when off;
keyed rules fire scheduling-independently on exact request keys; count /
after / probability schedules are honoured; and the per-rule RNG streams
are a pure function of ``(plan seed, rule index)`` — two armings of the
same plan inject the same faults.
"""

import pickle

import pytest

from repro.exceptions import FaultError
from repro.faults import (
    SITES,
    ActiveFaults,
    FaultPlan,
    FaultRule,
    active_faults,
    check,
    current_request_key,
    request_scope,
    site_names,
    use_faults,
)


class TestSiteRegistry:
    def test_registered_sites(self):
        names = site_names()
        assert len(names) == len(set(names)) == len(SITES)
        assert set(names) == {
            "persist.connect",
            "persist.load",
            "persist.store",
            "parallel.request",
            "session.execute",
            "executor.start",
            "executor.tick",
        }

    def test_every_site_declares_actions(self):
        for site in SITES:
            assert site.actions, site.name
            assert site.boundary in ("sqlite", "process", "session", "engine")


class TestRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultRule("persist.nope", "error")

    def test_unsupported_action_rejected(self):
        with pytest.raises(FaultError, match="does not support action"):
            FaultRule("session.execute", "crash")

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"probability": 1.5}, "probability"),
            ({"probability": -0.1}, "probability"),
            ({"count": 0}, "count"),
            ({"after": -1}, "after"),
            ({"delay_ms": -1.0}, "delay_ms"),
        ],
    )
    def test_bad_schedules_rejected(self, kwargs, message):
        with pytest.raises(FaultError, match=message):
            FaultRule("persist.store", "busy", **kwargs)

    def test_keys_normalised_sorted_unique(self):
        rule = FaultRule("parallel.request", "crash", keys=(5, 1, 5, 3))
        assert rule.keys == (1, 3, 5)


class TestPlanValue:
    def test_plan_pickles_and_compares(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule("persist.store", "busy", probability=0.25),
                FaultRule("parallel.request", "crash", keys=(2,)),
            ),
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.sites == {"persist.store", "parallel.request"}

    def test_describe_lists_rules(self):
        plan = FaultPlan(rules=(FaultRule("persist.load", "error"),))
        assert "persist.load/error" in plan.describe()
        assert FaultPlan().describe() == "fault plan: empty"


class TestArming:
    def test_unarmed_check_is_none(self):
        assert active_faults() is None
        assert check("persist.store") is None

    def test_use_faults_scopes_and_resets(self):
        plan = FaultPlan(rules=(FaultRule("persist.store", "busy"),))
        with use_faults(plan) as active:
            assert active_faults() is active
            assert check("persist.store") is plan.rules[0]
            assert check("persist.load") is None
        assert active_faults() is None
        assert check("persist.store") is None

    def test_use_faults_none_is_noop(self):
        with use_faults(None) as active:
            assert active is None
            assert active_faults() is None

    def test_rearming_active_state_preserves_counters(self):
        plan = FaultPlan(rules=(FaultRule("persist.store", "busy", count=1),))
        armed = ActiveFaults(plan)
        with use_faults(armed):
            assert check("persist.store") is not None
        # Re-publishing the same armed state must not reset the count cap.
        with use_faults(armed):
            assert check("persist.store") is None
        assert armed.fired_summary() == (("persist.store", "busy", 1),)


class TestSchedules:
    def test_count_caps_firings(self):
        plan = FaultPlan(rules=(FaultRule("persist.store", "busy", count=2),))
        active = ActiveFaults(plan)
        fired = [active.check("persist.store") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_after_skips_initial_hits(self):
        plan = FaultPlan(rules=(FaultRule("persist.store", "busy", after=3),))
        active = ActiveFaults(plan)
        fired = [active.check("persist.store") is not None for _ in range(5)]
        assert fired == [False, False, False, True, True]

    def test_keyed_rule_fires_only_on_its_keys(self):
        plan = FaultPlan(rules=(FaultRule("parallel.request", "crash", keys=(1, 3)),))
        active = ActiveFaults(plan)
        assert active.check("parallel.request") is None  # no ambient key
        fired = []
        for key in range(5):
            with request_scope(key):
                assert current_request_key() == key
                fired.append(active.check("parallel.request") is not None)
        assert fired == [False, True, False, True, False]
        # An explicit key argument overrides the ambient one.
        assert active.check("parallel.request", key=3) is not None
        assert active.check("parallel.request", key=0) is None

    def test_request_scope_resets(self):
        with request_scope(9):
            assert current_request_key() == 9
        assert current_request_key() is None

    def test_probabilistic_stream_is_deterministic_per_plan(self):
        plan = FaultPlan(
            seed=11, rules=(FaultRule("persist.store", "busy", probability=0.3),)
        )
        first = ActiveFaults(plan)
        second = ActiveFaults(plan)
        pattern_a = [first.check("persist.store") is not None for _ in range(200)]
        pattern_b = [second.check("persist.store") is not None for _ in range(200)]
        assert pattern_a == pattern_b
        assert 20 < sum(pattern_a) < 120  # actually probabilistic, not const

    def test_different_seeds_draw_different_streams(self):
        rule = FaultRule("persist.store", "busy", probability=0.5)
        one = ActiveFaults(FaultPlan(seed=1, rules=(rule,)))
        two = ActiveFaults(FaultPlan(seed=2, rules=(rule,)))
        pattern_1 = [one.check("persist.store") is not None for _ in range(64)]
        pattern_2 = [two.check("persist.store") is not None for _ in range(64)]
        assert pattern_1 != pattern_2

    def test_first_matching_rule_wins_and_is_logged(self):
        plan = FaultPlan(
            rules=(
                FaultRule("persist.store", "torn-write", count=1),
                FaultRule("persist.store", "busy"),
            )
        )
        active = ActiveFaults(plan)
        assert active.check("persist.store").action == "torn-write"
        assert active.check("persist.store").action == "busy"
        assert active.fired_log == [
            ("persist.store", "torn-write", None),
            ("persist.store", "busy", None),
        ]
        assert active.fired_summary() == (
            ("persist.store", "busy", 1),
            ("persist.store", "torn-write", 1),
        )
