"""Acceptance tests for the chaos campaign (``repro.faults.chaos``).

The campaign invariant: with persist faults, worker crashes/hangs and
deadline pressure all armed, every outcome is either byte-equal to the
fault-free oracle's or *explicitly* degraded — never silently wrong —
and a same-seed replay reproduces the campaign digest exactly.
"""

import pytest

from repro.exceptions import FaultError
from repro.faults.chaos import (
    CHAOS_SCHEDULES,
    ChaosConfig,
    build_chaos_plan,
    chaos_requests,
    run_chaos,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cases": 0},
            {"schedule": "nope"},
            {"jobs": 0},
            {"chunk_size": 0},
            {"task_timeout": 0.0},
            {"deadline_ms": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultError):
            ChaosConfig(**kwargs)

    def test_requests_are_a_pure_function_of_seed(self):
        config = ChaosConfig(cases=10, seed=4)
        first = chaos_requests(config)
        second = chaos_requests(config)
        assert len(first) == 10
        assert [r.containee for r in first] == [r.containee for r in second]
        assert [r.containing for r in first] == [r.containing for r in second]

    @pytest.mark.parametrize("schedule", CHAOS_SCHEDULES)
    def test_plans_are_deterministic_per_schedule(self, schedule):
        config = ChaosConfig(cases=40, seed=9, schedule=schedule)
        plan_a, deadline_a = build_chaos_plan(config)
        plan_b, deadline_b = build_chaos_plan(config)
        assert plan_a == plan_b
        assert deadline_a == deadline_b
        if schedule in ("worker", "mixed"):
            assert any(r.site == "parallel.request" for r in plan_a.rules)
        if schedule in ("deadline", "mixed"):
            assert deadline_a is not None
            assert any(r.site == "session.execute" for r in plan_a.rules)
        if schedule in ("persist", "mixed"):
            assert any(r.site.startswith("persist.") for r in plan_a.rules)
        # Outcome-affecting rules must be keyed (scheduling-independent);
        # only absorbed persist faults may ride probabilistic streams.
        for rule in plan_a.rules:
            if not rule.site.startswith("persist."):
                assert rule.keys is not None


class TestCampaign:
    def test_acceptance_mixed_campaign_is_never_silently_wrong(self):
        # The headline acceptance run: >= 300 decisions under jobs=2 with
        # every fault family armed.
        config = ChaosConfig(cases=300, seed=7, schedule="mixed", jobs=2)
        report = run_chaos(config)
        assert report.decisions >= 300
        assert report.silently_wrong == ()
        assert report.breaker_ok
        assert report.breaker_transitions == ("open", "half-open", "closed")
        assert report.ok
        # Poison requests really degraded (the schedule always keys at
        # least one crash and one past-deadline latency).
        assert report.quarantined >= 1
        assert report.degraded >= report.quarantined
        assert report.matched + report.degraded == report.decisions
        # Outcomes arrive in request order, one per case.
        assert [case.index for case in report.cases] == list(range(300))
        summary = report.describe()
        assert "0 silently wrong" in summary
        assert "invariant holds" in summary

    def test_same_seed_replay_is_byte_identical(self):
        config = ChaosConfig(cases=40, seed=11, schedule="mixed", jobs=2)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.digest() == second.digest()
        assert first.cases == second.cases

    def test_different_seeds_differ(self):
        base = ChaosConfig(cases=40, schedule="mixed", jobs=2)
        one = run_chaos(ChaosConfig(cases=40, seed=1, schedule="mixed", jobs=2))
        two = run_chaos(ChaosConfig(cases=40, seed=2, schedule="mixed", jobs=2))
        assert base.cases == 40
        assert one.digest() != two.digest()

    def test_persist_schedule_absorbs_every_fault(self):
        # Persist faults are fully absorbed by retries + breaker: nothing
        # degrades, everything matches the oracle.
        config = ChaosConfig(cases=30, seed=3, schedule="persist", jobs=2)
        report = run_chaos(config)
        assert report.ok
        assert report.matched == 30
        assert report.degraded == 0

    def test_serial_jobs_one_campaign_holds_too(self):
        config = ChaosConfig(cases=20, seed=5, schedule="mixed", jobs=1)
        report = run_chaos(config)
        assert report.ok
        assert report.silently_wrong == ()
