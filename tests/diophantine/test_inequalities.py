"""Unit tests for MPIs and GMPIs."""

from fractions import Fraction

import pytest

from repro.diophantine.inequalities import GeneralizedMPI, MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.exceptions import DimensionMismatchError, DiophantineError


def section4_mpi() -> MonomialPolynomialInequality:
    """``u1^7 + u1^5·u2^2 + u1^3·u3^4 < u1^2·u2·u3^3``."""
    polynomial = Polynomial.from_terms([(1, (7, 0, 0)), (1, (5, 2, 0)), (1, (3, 0, 4))])
    return MonomialPolynomialInequality(polynomial, Monomial(1, (2, 1, 3)))


class TestConstruction:
    def test_dimension_and_monomial_count(self):
        mpi = section4_mpi()
        assert mpi.dimension == 3
        assert mpi.num_monomials == 3

    def test_monomial_coefficient_must_be_one(self):
        with pytest.raises(DiophantineError):
            MonomialPolynomialInequality(Polynomial.zero(1), Monomial(2, (1,)))

    def test_dimensions_must_match(self):
        with pytest.raises(DimensionMismatchError):
            MonomialPolynomialInequality(Polynomial.zero(2), Monomial(1, (1,)))

    def test_fractional_exponents_need_the_generalized_class(self):
        with pytest.raises(DiophantineError):
            MonomialPolynomialInequality(Polynomial.zero(1), Monomial(1, (Fraction(1, 2),)))
        GeneralizedMPI(Polynomial.zero(1), Monomial(1, (Fraction(1, 2),)))  # fine

    def test_render(self):
        assert "<" in section4_mpi().render()


class TestSolutions:
    def test_paper_solutions_and_non_solutions(self):
        mpi = section4_mpi()
        # Proposition 4.1: zero components and the all-ones vector never work.
        assert not mpi.is_solution((0, 5, 5))
        assert not mpi.is_solution((1, 1, 1))
        # The paper's two explicit solutions.
        assert mpi.is_solution((1, 4, 3))
        assert mpi.is_solution((1, 9, 3))

    def test_non_natural_points_are_not_solutions(self):
        mpi = section4_mpi()
        assert not mpi.is_solution((1, -4, 3))
        assert not mpi.is_solution((1, True, 3))  # type: ignore[arg-type]

    def test_gap(self):
        mpi = section4_mpi()
        assert mpi.gap((1, 4, 3)) == 108 - 98
        assert mpi.gap((1, 1, 1)) < 0

    def test_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            section4_mpi().is_solution((1, 2))


class TestLinearSystemReduction:
    def test_rows_are_the_exponent_differences(self):
        system = section4_mpi().to_linear_system()
        rows = {tuple(int(value) for value in row) for row in system.rows}
        # (2,1,3) - (7,0,0), (2,1,3) - (5,2,0) and (2,1,3) - (3,0,4).
        assert rows == {(-5, 1, 3), (-3, -1, 3), (-1, 1, -1)}

    def test_zero_polynomial_gives_an_empty_system(self):
        mpi = MonomialPolynomialInequality(Polynomial.zero(2), Monomial(1, (1, 1)))
        system = mpi.to_linear_system()
        assert len(system) == 0
        assert system.dimension == 2

    def test_paper_epsilon_solves_the_system(self):
        assert section4_mpi().to_linear_system().is_solution((0, 2, 1))


class TestSpecialization:
    def test_specialize_reproduces_the_parametric_example(self):
        # With epsilon = (0, 2, 1) the paper derives the 1-MPI  2·u^4 + 1 < u^5.
        univariate = section4_mpi().specialize((0, 2, 1))
        assert univariate.is_univariate()
        assert univariate.monomial.degree() == 5
        assert univariate.polynomial.degree() == 4
        assert univariate.degree_gap() == 1
        # 3 is a solution of the specialized inequality (as stated in the paper).
        assert univariate.polynomial.evaluate((3,)) < univariate.monomial.evaluate((3,))

    def test_degree_gap_for_unsolvable_parameters(self):
        # epsilon = (1, 1, 1) keeps the polynomial's degree above the monomial's.
        univariate = section4_mpi().specialize((1, 1, 1))
        assert univariate.degree_gap() < 0


class TestGeneralizedMPI:
    def test_float_solution_check(self):
        gmpi = GeneralizedMPI(
            Polynomial([Monomial(1, (Fraction(1, 2),))]), Monomial(1, (2,))
        )
        assert gmpi.is_solution_float((4.0,))
        assert not gmpi.is_solution_float((1.0,))

    def test_monomial_coefficient_must_be_one(self):
        with pytest.raises(DiophantineError):
            GeneralizedMPI(Polynomial.zero(1), Monomial(3, (1,)))
