"""Unit tests for monomials."""

from fractions import Fraction

import pytest

from repro.diophantine.monomials import Monomial
from repro.exceptions import DimensionMismatchError, DiophantineError


class TestConstruction:
    def test_exponents_become_fractions(self):
        monomial = Monomial(1, (2, 0, 3))
        assert monomial.exponents == (Fraction(2), Fraction(0), Fraction(3))
        assert monomial.coefficient == 1

    def test_negative_coefficient_is_rejected(self):
        with pytest.raises(DiophantineError):
            Monomial(-1, (1,))

    def test_negative_exponent_is_rejected(self):
        with pytest.raises(DiophantineError):
            Monomial(1, (-1,))

    def test_unit(self):
        unit = Monomial.unit(3)
        assert unit.evaluate((5, 6, 7)) == 1
        assert unit.degree() == 0

    def test_from_exponents(self):
        assert Monomial.from_exponents((1, 2), coefficient=3).coefficient == 3


class TestStructure:
    def test_degree_is_the_exponent_sum(self):
        assert Monomial(1, (2, 1, 3)).degree() == 6

    def test_is_integral(self):
        assert Monomial(1, (2, 0)).is_integral()
        assert not Monomial(1, (Fraction(1, 2), 1)).is_integral()

    def test_integer_exponents(self):
        assert Monomial(1, (2, 0)).integer_exponents() == (2, 0)
        with pytest.raises(DiophantineError):
            Monomial(1, (Fraction(1, 2),)).integer_exponents()

    def test_support(self):
        assert Monomial(1, (2, 0, 1)).support() == frozenset({0, 2})


class TestEvaluation:
    def test_exact_evaluation(self):
        monomial = Monomial(2, (2, 1, 3))
        assert monomial.evaluate((1, 4, 3)) == 2 * 1 * 4 * 27

    def test_evaluation_at_zero(self):
        assert Monomial(5, (1, 1)).evaluate((0, 7)) == 0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Monomial(1, (1, 1)).evaluate((2,))

    def test_negative_points_are_rejected(self):
        with pytest.raises(DiophantineError):
            Monomial(1, (1,)).evaluate((-1,))

    def test_fractional_exponent_on_general_base_is_rejected(self):
        with pytest.raises(DiophantineError):
            Monomial(1, (Fraction(1, 2),)).evaluate((4,))

    def test_fractional_exponent_on_zero_or_one_is_fine(self):
        assert Monomial(1, (Fraction(1, 2),)).evaluate((1,)) == 1
        assert Monomial(1, (Fraction(1, 2),)).evaluate((0,)) == 0

    def test_float_evaluation(self):
        assert Monomial(1, (Fraction(1, 2),)).float_evaluate((4,)) == pytest.approx(2.0)


class TestAlgebra:
    def test_scale(self):
        assert Monomial(2, (1,)).scale(3).coefficient == 6

    def test_multiply_adds_exponents(self):
        product = Monomial(2, (1, 0)).multiply(Monomial(3, (2, 1)))
        assert product.coefficient == 6
        assert product.exponents == (Fraction(3), Fraction(1))

    def test_multiply_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Monomial(1, (1,)).multiply(Monomial(1, (1, 1)))

    def test_substitute_power_takes_the_dot_product(self):
        # u1^2 u2 u3^3 with epsilon = (0, 2, 1) becomes u^(0+2+3) = u^5.
        substituted = Monomial(1, (2, 1, 3)).substitute_power((0, 2, 1))
        assert substituted.exponents == (Fraction(5),)

    def test_substitute_power_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Monomial(1, (1, 1)).substitute_power((1,))


class TestRendering:
    def test_render_with_default_names(self):
        assert Monomial(1, (2, 1, 3)).render() == "u1^2·u2·u3^3"

    def test_render_with_coefficient_and_custom_names(self):
        assert Monomial(3, (0, 2)).render(("a", "b")) == "3·b^2"

    def test_render_constant_monomial(self):
        assert Monomial(1, (0, 0)).render() == "1"
