"""Unit tests for the Lemma 5.1 solution-size bounds."""

from repro.diophantine.bounds import phi, solution_component_bound
from repro.diophantine.inequalities import MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.diophantine.solver import decide_mpi
from repro.linalg.systems import HomogeneousStrictSystem


class TestPhi:
    def test_phi_is_the_maximum_row_sum(self):
        system = HomogeneousStrictSystem([[1, -3], [2, 2]])
        assert phi(system) == 4

    def test_phi_is_clamped_at_one(self):
        system = HomogeneousStrictSystem([[-1, -1]])
        assert phi(system) == 1
        assert phi(HomogeneousStrictSystem([], dimension=2)) == 1


class TestSolutionComponentBound:
    def test_formula(self):
        system = HomogeneousStrictSystem([[1, -3], [2, 2]])
        assert solution_component_bound(system) == 6 * 8 * 4

    def test_bound_covers_a_known_solution(self):
        """When an MPI is solvable, some natural solution of its linear system
        fits within the Lemma 5.1 bound (soundness of the guess-&-check)."""
        polynomial = Polynomial.from_terms([(1, (7, 0, 0)), (1, (5, 2, 0)), (1, (3, 0, 4))])
        inequality = MonomialPolynomialInequality(polynomial, Monomial(1, (2, 1, 3)))
        decision = decide_mpi(inequality)
        assert decision.solvable
        system = inequality.to_linear_system()
        bound = solution_component_bound(system)
        assert sum(decision.linear_solution) <= bound
