"""Unit tests for the MPI decision procedure (Theorems 4.1 and 4.2)."""

import pytest

from repro.diophantine.inequalities import GeneralizedMPI, MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.diophantine.solver import (
    decide_mpi,
    decide_mpi_via_lp,
    smallest_univariate_solution,
    solve_univariate_gmpi,
    witness_from_linear_solution,
)
from repro.exceptions import DiophantineError


def mpi(poly_terms, monomial_exponents) -> MonomialPolynomialInequality:
    dimension = len(monomial_exponents)
    polynomial = (
        Polynomial.from_terms(poly_terms, dimension) if poly_terms else Polynomial.zero(dimension)
    )
    return MonomialPolynomialInequality(polynomial, Monomial(1, monomial_exponents))


def section4_mpi() -> MonomialPolynomialInequality:
    return mpi([(1, (7, 0, 0)), (1, (5, 2, 0)), (1, (3, 0, 4))], (2, 1, 3))


class TestUnivariateCriterion:
    def test_lemma_4_1_solvable_iff_degree_gap(self):
        # u^4 + u^2 < u^4 is unsolvable; 2u^4 + 1 < u^5 is solvable (paper examples).
        unsolvable = GeneralizedMPI(
            Polynomial.from_terms([(1, (4,)), (1, (2,))]), Monomial(1, (4,))
        )
        solvable = GeneralizedMPI(
            Polynomial.from_terms([(2, (4,)), (1, (0,))]), Monomial(1, (5,))
        )
        assert not solve_univariate_gmpi(unsolvable)
        assert solve_univariate_gmpi(solvable)

    def test_zero_polynomial_is_always_solvable(self):
        assert solve_univariate_gmpi(GeneralizedMPI(Polynomial.zero(1), Monomial(1, (0,))))

    def test_criterion_requires_one_unknown(self):
        with pytest.raises(DiophantineError):
            solve_univariate_gmpi(GeneralizedMPI(Polynomial.zero(2), Monomial(1, (1, 1))))

    def test_smallest_solution_of_the_paper_1mpi(self):
        # 2u^4 + 1 < u^5 has 3 as its smallest natural solution.
        solvable = GeneralizedMPI(
            Polynomial.from_terms([(2, (4,)), (1, (0,))]), Monomial(1, (5,))
        )
        assert smallest_univariate_solution(solvable) == 3

    def test_smallest_solution_rejects_unsolvable_inequalities(self):
        unsolvable = GeneralizedMPI(Polynomial.from_terms([(1, (1,))]), Monomial(1, (1,)))
        with pytest.raises(DiophantineError):
            smallest_univariate_solution(unsolvable)

    def test_smallest_solution_can_be_one(self):
        # P = 0 (empty): the smallest natural solution of 0 < u^1 is 1.
        trivial = GeneralizedMPI(Polynomial.zero(1), Monomial(1, (1,)))
        assert smallest_univariate_solution(trivial) == 1


class TestDecideMpi:
    def test_section4_example_is_solvable_with_verified_witness(self):
        decision = decide_mpi(section4_mpi())
        assert decision.solvable
        assert decision.linear_solution is not None
        assert decision.witness is not None
        assert section4_mpi().is_solution(decision.witness)
        assert decision.method == "fourier-motzkin"

    def test_unsolvable_mpi(self):
        # u1 + u2 < u1 can never hold over the naturals.
        decision = decide_mpi(mpi([(1, (1, 0)), (1, (0, 1))], (1, 0)))
        assert not decision.solvable
        assert decision.witness is None

    def test_same_exponents_both_sides_is_unsolvable(self):
        decision = decide_mpi(mpi([(1, (2, 3))], (2, 3)))
        assert not decision.solvable

    def test_lower_degree_polynomial_is_solvable(self):
        decision = decide_mpi(mpi([(1, (1, 0))], (2, 1)))
        assert decision.solvable
        assert mpi([(1, (1, 0))], (2, 1)).is_solution(decision.witness)

    def test_zero_polynomial_is_trivially_solvable(self):
        decision = decide_mpi(mpi([], (3, 1)))
        assert decision.solvable
        assert decision.witness == (1, 1)
        assert decision.method == "trivial"

    def test_coefficients_larger_than_one(self):
        # 5·u1 < u1^2 is solved by u1 = 6.
        decision = decide_mpi(mpi([(5, (1,))], (2,)))
        assert decision.solvable
        assert decision.witness is not None
        assert 5 * decision.witness[0] < decision.witness[0] ** 2

    def test_univariate_unsolvable_because_of_degrees(self):
        decision = decide_mpi(mpi([(1, (3,))], (2,)))
        assert not decision.solvable

    def test_unknowns_missing_from_the_monomial_can_be_zeroed(self):
        # u2 < 1 is solvable only by setting u2 = 0; the paper's reduction
        # (positive solutions) misses this, the support restriction finds it.
        decision = decide_mpi(mpi([(1, (0, 1))], (0, 0)))
        assert decision.solvable
        assert decision.witness == (0, 0)

        # u2 < u1: zeroing u2 and taking u1 = 1 works.
        decision = decide_mpi(mpi([(1, (0, 1))], (1, 0)))
        assert decision.solvable
        assert decision.witness is not None
        assert decision.witness[1] == 0
        assert mpi([(1, (0, 1))], (1, 0)).is_solution(decision.witness)

    def test_constant_monomial_with_a_constant_polynomial_term(self):
        # 1 + u1 < 1 is unsolvable: the constant part already reaches 1.
        decision = decide_mpi(mpi([(1, (0,)), (1, (1,))], (0,)))
        assert not decision.solvable

    def test_lp_path_handles_the_support_restriction_too(self):
        assert decide_mpi_via_lp(mpi([(1, (0, 1))], (0, 0))).solvable
        assert decide_mpi_via_lp(mpi([(2, (0, 3)), (1, (1, 0))], (2, 0))).solvable


class TestRowCapLpFallback:
    """Fourier–Motzkin row-cap overflows fall back to the LP path."""

    def _with_capped_fm(self, monkeypatch):
        from repro.diophantine import solver as solver_module
        from repro.exceptions import LinearSystemError

        def blown(*args, **kwargs):
            raise LinearSystemError("row cap exceeded (simulated)")

        monkeypatch.setattr(solver_module, "solve_strict_system", blown)

    def test_solvable_instance_survives_the_row_cap(self, monkeypatch):
        self._with_capped_fm(monkeypatch)
        decision = decide_mpi(section4_mpi())
        assert decision.solvable
        assert decision.method == "lp-fallback"
        assert decision.witness is not None
        assert section4_mpi().is_solution(decision.witness)

    def test_unsolvable_instance_survives_the_row_cap(self, monkeypatch):
        self._with_capped_fm(monkeypatch)
        decision = decide_mpi(mpi([(1, (1, 0)), (1, (0, 1))], (1, 0)))
        assert not decision.solvable
        assert decision.method == "lp-fallback"
        assert decision.witness is None


class TestDecideMpiViaLp:
    def test_agrees_with_exact_on_the_paper_example(self):
        exact = decide_mpi(section4_mpi())
        via_lp = decide_mpi_via_lp(section4_mpi())
        assert exact.solvable == via_lp.solvable
        assert section4_mpi().is_solution(via_lp.witness)

    def test_agrees_on_unsolvable_instances(self):
        inequality = mpi([(1, (1, 0)), (1, (0, 1))], (1, 1))
        assert decide_mpi(inequality).solvable == decide_mpi_via_lp(inequality).solvable

    def test_zero_polynomial(self):
        assert decide_mpi_via_lp(mpi([], (1,))).solvable

    @pytest.mark.parametrize(
        "poly_terms, monomial",
        [
            ([(1, (2, 0)), (1, (0, 2))], (1, 1)),
            ([(1, (1, 1))], (2, 2)),
            ([(3, (1, 0, 0)), (1, (0, 1, 1))], (1, 1, 1)),
            ([(1, (4, 0)), (2, (0, 4))], (2, 2)),
        ],
    )
    def test_agreement_on_a_small_family(self, poly_terms, monomial):
        inequality = mpi(poly_terms, monomial)
        assert decide_mpi(inequality).solvable == decide_mpi_via_lp(inequality).solvable


class TestWitnessFromLinearSolution:
    def test_paper_linear_solution_produces_a_witness(self):
        # d = (0, 2, 1) is the solution the paper derives for the linear system.
        witness = witness_from_linear_solution(section4_mpi(), (0, 2, 1))
        assert section4_mpi().is_solution(witness)
        # xi_1 = base^0 must be 1, exactly as in the paper's solutions.
        assert witness[0] == 1

    def test_invalid_linear_solutions_are_rejected(self):
        with pytest.raises(DiophantineError):
            witness_from_linear_solution(section4_mpi(), (1, 2))
        with pytest.raises(DiophantineError):
            witness_from_linear_solution(section4_mpi(), (-1, 2, 1))

    def test_linear_solution_that_does_not_separate_degrees_is_rejected(self):
        # d = (1, 1, 1) does not solve the linear system, so the induced
        # univariate inequality is unsolvable and the construction fails.
        with pytest.raises(DiophantineError):
            witness_from_linear_solution(section4_mpi(), (1, 1, 1))
