"""Unit tests for polynomials."""

from fractions import Fraction

import pytest

from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.exceptions import DimensionMismatchError, DiophantineError


def section4_polynomial() -> Polynomial:
    """``u1^7 + u1^5·u2^2 + u1^3·u3^4`` — the polynomial of the Section 4 example."""
    return Polynomial.from_terms([(1, (7, 0, 0)), (1, (5, 2, 0)), (1, (3, 0, 4))])


class TestConstruction:
    def test_identical_exponent_vectors_are_merged(self):
        polynomial = Polynomial([Monomial(1, (1, 2)), Monomial(2, (1, 2)), Monomial(1, (0, 1))])
        assert len(polynomial) == 2
        coefficients = {m.exponents: m.coefficient for m in polynomial}
        assert coefficients[(Fraction(1), Fraction(2))] == 3

    def test_zero_coefficient_monomials_are_dropped(self):
        polynomial = Polynomial([Monomial(0, (1,)), Monomial(2, (2,))])
        assert len(polynomial) == 1

    def test_zero_polynomial_needs_explicit_dimension(self):
        with pytest.raises(DiophantineError):
            Polynomial([])
        assert Polynomial.zero(4).dimension == 4
        assert Polynomial.zero(4).is_zero()

    def test_mixed_dimensions_are_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial([Monomial(1, (1,)), Monomial(1, (1, 2))])

    def test_non_monomial_items_are_rejected(self):
        with pytest.raises(DiophantineError):
            Polynomial([1])  # type: ignore[list-item]

    def test_from_terms(self):
        polynomial = Polynomial.from_terms([(2, (1, 0)), (1, (0, 1))])
        assert polynomial.evaluate((3, 4)) == 10


class TestStructure:
    def test_degree(self):
        assert section4_polynomial().degree() == 7
        assert Polynomial.zero(2).degree() == 0

    def test_is_integral(self):
        assert section4_polynomial().is_integral()
        assert not Polynomial([Monomial(1, (Fraction(1, 2),))]).is_integral()

    def test_has_constant_term(self):
        assert Polynomial.from_terms([(1, (0, 0))]).has_constant_term()
        assert not section4_polynomial().has_constant_term()

    def test_coefficients_and_exponent_vectors_align(self):
        polynomial = section4_polynomial()
        assert len(polynomial.coefficients()) == len(polynomial.exponent_vectors()) == 3

    def test_equality_is_structural(self):
        assert section4_polynomial() == section4_polynomial()
        assert section4_polynomial() != Polynomial.zero(3)
        assert hash(section4_polynomial()) == hash(section4_polynomial())


class TestEvaluation:
    def test_paper_values(self):
        polynomial = section4_polynomial()
        assert polynomial.evaluate((1, 1, 1)) == 3
        assert polynomial.evaluate((1, 4, 3)) == 98
        assert polynomial.evaluate((0, 5, 5)) == 0

    def test_zero_polynomial_evaluates_to_zero(self):
        assert Polynomial.zero(2).evaluate((7, 8)) == 0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            section4_polynomial().evaluate((1, 1))

    def test_float_evaluation(self):
        assert section4_polynomial().float_evaluate((1.0, 4.0, 3.0)) == pytest.approx(98.0)


class TestAlgebra:
    def test_add(self):
        left = Polynomial.from_terms([(1, (1, 0))])
        right = Polynomial.from_terms([(2, (1, 0)), (1, (0, 1))])
        combined = left.add(right)
        assert combined.evaluate((1, 1)) == 4

    def test_add_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial.zero(1).add(Polynomial.zero(2))

    def test_scale(self):
        assert section4_polynomial().scale(2).evaluate((1, 1, 1)) == 6

    def test_substitute_power_matches_the_paper(self):
        # With epsilon = (0, 2, 1): u1^7 -> u^0, u1^5 u2^2 -> u^4, u1^3 u3^4 -> u^4,
        # so the substituted polynomial is 1 + 2·u^4.
        substituted = section4_polynomial().substitute_power((0, 2, 1))
        assert substituted.dimension == 1
        assert substituted.evaluate((3,)) == 1 + 2 * 81
        assert substituted.degree() == 4

    def test_render(self):
        assert Polynomial.zero(2).render() == "0"
        assert "u1^7" in section4_polynomial().render()
