"""Shared fixtures for the test-suite.

Most fixtures are thin wrappers around the paper-example factories in
:mod:`repro.workloads.paper_examples`, so that tests read like the sections
of the paper they verify.
"""

from __future__ import annotations

import pytest

from repro.queries.builder import QueryBuilder
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Constant, Variable
from repro.workloads import paper_examples


@pytest.fixture
def x1() -> Variable:
    return Variable("x1")


@pytest.fixture
def x2() -> Variable:
    return Variable("x2")


@pytest.fixture
def section2_query():
    return paper_examples.section2_query()


@pytest.fixture
def section2_instance() -> SetInstance:
    return paper_examples.section2_instance()


@pytest.fixture
def section2_bag() -> BagInstance:
    return paper_examples.section2_bag()


@pytest.fixture
def section2_q1():
    return paper_examples.section2_q1()


@pytest.fixture
def section2_q2():
    return paper_examples.section2_q2()


@pytest.fixture
def section2_q3():
    return paper_examples.section2_q3()


@pytest.fixture
def section3_containee():
    return paper_examples.section3_containee()


@pytest.fixture
def section3_containing():
    return paper_examples.section3_containing()


@pytest.fixture
def simple_edge_query():
    """``q(x, y) <- E(x, y)`` — the smallest projection-free query."""
    return QueryBuilder("edge").head("x", "y").atom("E", "x", "y").build()


@pytest.fixture
def tiny_bag() -> BagInstance:
    """A two-fact bag over a binary relation, used by many evaluation tests."""
    a, b, c = Constant("a"), Constant("b"), Constant("c")
    return BagInstance({Atom("E", (a, b)): 2, Atom("E", (b, c)): 3})
