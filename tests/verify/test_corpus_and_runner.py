"""Tests for corpus persistence and the parallel campaign runner."""

import dataclasses

import pytest

from repro.exceptions import VerifyError
from repro.io.json_codec import SerializationError, dump_json
from repro.queries.parser import parse_cq
from repro.verify.corpus import (
    CorpusEntry,
    builtin_pairs,
    entry_from_dict,
    entry_to_dict,
    load_corpus,
    replay_corpus,
    save_corpus,
)
from repro.verify.oracles import OracleConfig
from repro.verify.runner import (
    CampaignConfig,
    campaign_corpus,
    generate_case,
    run_campaign,
    run_case,
)

#: A light oracle configuration so runner tests stay fast.
FAST = dict(
    strategies=("most-general", "all-probes"),
    backends=("indexed",),
    diophantine_paths=("exact",),
)


class TestCorpusRoundTrip:
    def test_entry_round_trip(self):
        containee, containing = builtin_pairs()[4]
        entry = CorpusEntry(
            case_id="case-7",
            origin="builtin[4]",
            containee=containee,
            containing=containing,
            expected=True,
            note="hello",
        )
        assert entry_from_dict(entry_to_dict(entry)) == entry

    def test_save_and_load(self, tmp_path):
        entries = [
            CorpusEntry("case-0", "builtin[0]", *builtin_pairs()[0], expected=True),
            CorpusEntry("case-1", "builtin[2]", *builtin_pairs()[2], expected=False),
        ]
        path = save_corpus(entries, tmp_path / "corpus.json")
        assert load_corpus(path) == entries

    def test_loading_a_non_corpus_file_raises(self, tmp_path):
        path = dump_json({"kind": "workload", "queries": []}, tmp_path / "not_corpus.json")
        with pytest.raises(SerializationError):
            load_corpus(path)

    def test_replay_flags_verdict_drift(self, tmp_path):
        containee, containing = builtin_pairs()[0]
        entries = [
            CorpusEntry("case-0", "builtin[0]", containee, containing, expected=False)
        ]
        path = save_corpus(entries, tmp_path / "drift.json")
        failures = replay_corpus(path, OracleConfig(**FAST))
        assert len(failures) == 1
        _, report = failures[0]
        assert any(d.kind == "verdict-drift" for d in report.discrepancies)

    def test_replay_of_a_clean_corpus_is_empty(self, tmp_path):
        containee, containing = builtin_pairs()[0]
        entries = [CorpusEntry("case-0", "builtin[0]", containee, containing, expected=True)]
        path = save_corpus(entries, tmp_path / "clean.json")
        assert replay_corpus(path, OracleConfig(**FAST)) == []


class TestCaseGeneration:
    def test_cases_are_deterministic_in_seed_and_index(self):
        config = CampaignConfig(cases=10, seed=3)
        assert generate_case(config, 4) == generate_case(config, 4)

    def test_cases_vary_with_the_index(self):
        config = CampaignConfig(cases=30, seed=0)
        origins = {generate_case(config, index).origin for index in range(30)}
        assert len(origins) > 5

    def test_every_generator_family_appears(self):
        config = CampaignConfig(cases=120, seed=0)
        families = {
            generate_case(config, index).origin.split("[")[0] for index in range(120)
        }
        assert families == {"adversarial", "containment", "unrelated", "builtin", "chain", "star"}

    def test_invalid_configs_are_rejected(self):
        with pytest.raises(VerifyError):
            CampaignConfig(cases=-1)
        with pytest.raises(VerifyError):
            CampaignConfig(jobs=0)
        with pytest.raises(VerifyError):
            CampaignConfig(mutation_rate=2.0)
        with pytest.raises(VerifyError):
            CampaignConfig(time_budget=0.0)


class TestCampaigns:
    def test_inline_campaign_is_clean_and_deterministic(self):
        config = CampaignConfig(cases=12, seed=0, jobs=1, **FAST)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.ok, first.describe()
        assert first.cases_run == 12
        assert [r.consensus for r in first.case_results] == [
            r.consensus for r in second.case_results
        ]

    def test_parallel_campaign_matches_inline_consensus(self):
        inline = run_campaign(CampaignConfig(cases=12, seed=5, jobs=1, chunk_size=3, **FAST))
        parallel = run_campaign(CampaignConfig(cases=12, seed=5, jobs=2, chunk_size=3, **FAST))
        assert parallel.ok, parallel.describe()
        assert [r.consensus for r in inline.case_results] == [
            r.consensus for r in parallel.case_results
        ]
        # Workers reported their engine-cache deltas.
        assert sum(sum(counts) for counts in parallel.engine_stats.values()) > 0

    def test_time_budget_stops_early(self):
        config = CampaignConfig(
            cases=500, seed=0, jobs=1, chunk_size=1, time_budget=0.2, **FAST
        )
        report = run_campaign(config)
        assert report.cases_run < 500
        assert report.stopped_early
        assert "time budget" in report.describe()

    def test_campaign_corpus_matches_results(self):
        config = CampaignConfig(cases=8, seed=2, jobs=1, **FAST)
        report = run_campaign(config)
        entries = campaign_corpus(report)
        assert len(entries) == 8
        by_case = {f"case-{r.index}": r for r in report.case_results}
        for entry in entries:
            assert entry.expected == by_case[entry.case_id].consensus

    def test_run_case_reports_mutation_checks(self):
        config = CampaignConfig(cases=40, seed=1, mutation_rate=1.0, **FAST)
        checked = 0
        for index in range(8):
            result = run_case(generate_case(config, index), config)
            checked += result.mutation_checked is not None
            assert not result.failures, result.failures
        assert checked > 0


class TestPlantedBug:
    """The acceptance-criteria mutation test: a planted bug must be caught
    and shrunk to a small reproducer."""

    def test_lying_lp_path_is_caught_and_shrunk(self, monkeypatch):
        import repro.core.decision as decision

        original = decision.decide_mpi_via_lp

        def lying_lp(inequality):
            result = original(inequality)
            if result.solvable and len(inequality.to_linear_system()) >= 3:
                return dataclasses.replace(result, solvable=False, witness=None)
            return result

        monkeypatch.setattr(decision, "decide_mpi_via_lp", lying_lp)
        config = CampaignConfig(
            cases=40,
            seed=0,
            jobs=1,
            strategies=("most-general", "all-probes"),
            backends=("indexed",),
            mutation_rate=0.0,
        )
        report = run_campaign(config)
        assert not report.ok
        assert any(
            d.kind == "verdict-mismatch" for f in report.failures for d in f.discrepancies
        )
        shrunk = [f.shrunk for f in report.failures if f.shrunk is not None]
        assert shrunk
        for result in shrunk:
            assert result.size[0] <= 3 and result.size[1] <= 3

    def test_corrupted_certificate_is_caught(self, monkeypatch):
        from repro.core import certificates
        import repro.core.decision as decision

        original = certificates.counterexample_from_witness

        def corrupt(encoding, witness):
            certificate = original(encoding, witness)
            return dataclasses.replace(
                certificate, containing_multiplicity=certificate.containing_multiplicity + 1
            )

        monkeypatch.setattr(decision, "counterexample_from_witness", corrupt)
        containee, containing = parse_cq("q1(x) <- R^2(x, x)"), parse_cq("q2(x) <- R(x, x)")
        from repro.verify.oracles import run_differential_oracle

        report = run_differential_oracle(containee, containing, OracleConfig(**FAST))
        assert any(d.kind == "certificate" for d in report.discrepancies)


class TestMutantFailuresInCorpus:
    def test_mutant_failures_are_persisted_and_replayable(self, tmp_path):
        from repro.verify.runner import CampaignFailure, CampaignReport
        from repro.verify.oracles import Discrepancy

        config = CampaignConfig(cases=2, seed=0, jobs=1, **FAST)
        report = run_campaign(config)
        # Graft a mutant failure onto the report: a pair whose recorded
        # expectation contradicts the oracle verdict.
        containee, containing = builtin_pairs()[0]  # consensus: contained
        mutant = CampaignFailure(
            case_id="case-1+amplify-containing",
            origin="builtin[0]+amplify-containing",
            containee=containee,
            containing=containing,
            discrepancies=(Discrepancy("metamorphic", "planted"),),
            expected=False,
        )
        report = dataclasses.replace(report, failures=report.failures + (mutant,))

        entries = campaign_corpus(report)
        assert len(entries) == 3  # 2 base cases + the mutant failure
        extra = entries[-1]
        assert extra.case_id == "case-1+amplify-containing"
        assert extra.expected is False
        assert "failing mutant" in extra.note

        path = save_corpus(entries, tmp_path / "mutant.json")
        failures = replay_corpus(path, OracleConfig(**FAST))
        assert [entry.case_id for entry, _ in failures] == ["case-1+amplify-containing"]
        assert any(d.kind == "verdict-drift" for _, r in failures for d in r.discrepancies)


class TestEnumerationBudget:
    def test_budget_exhaustion_is_a_dedicated_exception(self):
        from repro.core.decision import decide_via_bounded_guess
        from repro.exceptions import ContainmentError, EnumerationBudgetError

        containee = parse_cq("q1(x) <- R^9(x, x), S^9(x, x), T^9(x, x)")
        containing = parse_cq("q2(x) <- R(x, x), S(x, x), T(x, x)")
        with pytest.raises(EnumerationBudgetError):
            decide_via_bounded_guess(containee, containing, max_candidates=5)
        # Still catchable as the broader containment error, for old callers.
        with pytest.raises(ContainmentError):
            decide_via_bounded_guess(containee, containing, max_candidates=5)
