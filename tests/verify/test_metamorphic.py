"""Unit tests for the metamorphic mutations and their transfer rules."""

import random

import pytest

from repro.core.decision import decide_via_most_general_probe
from repro.queries.parser import parse_cq
from repro.verify.corpus import builtin_pairs
from repro.verify.metamorphic import (
    MUTATIONS,
    expected_verdict,
    mutation_by_name,
)

RULES = {mutation.name: mutation.rule for mutation in MUTATIONS}


class TestRegistry:
    def test_every_registered_mutation_is_retrievable(self):
        for mutation in MUTATIONS:
            assert mutation_by_name(mutation.name) is mutation

    def test_unknown_mutation_name_raises(self):
        with pytest.raises(ValueError):
            mutation_by_name("teleport-atoms")

    def test_expected_verdict_rules(self):
        assert expected_verdict("equal", True) is True
        assert expected_verdict("equal", False) is False
        assert expected_verdict("preserves-contained", True) is True
        assert expected_verdict("preserves-contained", False) is None
        assert expected_verdict("preserves-not-contained", False) is False
        assert expected_verdict("preserves-not-contained", True) is None
        with pytest.raises(ValueError):
            expected_verdict("bogus", True)


class TestMutationShapes:
    def test_rename_variables_is_verdict_preserving(self):
        for index, (containee, containing) in enumerate(builtin_pairs()):
            mutated = mutation_by_name("rename-variables").apply(
                containee, containing, random.Random(index)
            )
            assert mutated is not None
            original = decide_via_most_general_probe(containee, containing).contained
            renamed = decide_via_most_general_probe(*mutated).contained
            assert renamed == original

    def test_rename_keeps_shared_variables_shared(self):
        containee = parse_cq("q1(x, y) <- R(x, y)")
        containing = parse_cq("q2(x, y) <- R(x, z), R(z, y)")
        mutated = mutation_by_name("rename-variables").apply(
            containee, containing, random.Random(0)
        )
        assert mutated is not None
        new_containee, new_containing = mutated
        assert new_containee.head == new_containing.head

    def test_permute_head_is_inapplicable_on_narrow_or_mismatched_heads(self):
        narrow = parse_cq("q1(x) <- R(x, a)")
        assert mutation_by_name("permute-head").apply(narrow, narrow, random.Random(0)) is None

    def test_permute_head_shuffles_both_heads_the_same_way(self):
        containee = parse_cq("q1(x, y) <- R(x, y), S(y, x)")
        containing = parse_cq("q2(u, v) <- R(u, v), S(v, w)")
        # Find a seed whose shuffle actually swaps the two positions.
        for seed in range(10):
            mutated = mutation_by_name("permute-head").apply(
                containee, containing, random.Random(seed)
            )
            assert mutated is not None
            new_containee, new_containing = mutated
            if new_containee.head != containee.head:
                assert new_containee.head == tuple(reversed(containee.head))
                assert new_containing.head == tuple(reversed(containing.head))
                break
        else:
            pytest.fail("no seed produced a non-identity permutation")

    def test_permute_head_preserves_the_verdict(self):
        for index, (containee, containing) in enumerate(builtin_pairs()):
            mutated = mutation_by_name("permute-head").apply(
                containee, containing, random.Random(index)
            )
            if mutated is None:
                continue
            original = decide_via_most_general_probe(containee, containing).contained
            assert decide_via_most_general_probe(*mutated).contained == original

    def test_amplify_containing_preserves_containment(self):
        for index, (containee, containing) in enumerate(builtin_pairs()):
            if not decide_via_most_general_probe(containee, containing).contained:
                continue
            mutated = mutation_by_name("amplify-containing").apply(
                containee, containing, random.Random(index)
            )
            assert mutated is not None
            assert decide_via_most_general_probe(*mutated).contained

    def test_amplify_containee_preserves_non_containment(self):
        for index, (containee, containing) in enumerate(builtin_pairs()):
            if decide_via_most_general_probe(containee, containing).contained:
                continue
            mutated = mutation_by_name("amplify-containee").apply(
                containee, containing, random.Random(index)
            )
            assert mutated is not None
            assert not decide_via_most_general_probe(*mutated).contained

    def test_self_join_containing_squares_the_body(self):
        containee = parse_cq("q1(x) <- R(x, x)")
        containing = parse_cq("q2(x) <- R(x, y), S(y, x)")
        mutated = mutation_by_name("self-join-containing").apply(
            containee, containing, random.Random(0)
        )
        assert mutated is not None
        _, doubled = mutated
        assert doubled.degree() == 2 * containing.degree()
        # The copy's existential variables are renamed apart.
        assert len(doubled.existential_variables()) == 2

    def test_self_join_fresh_names_avoid_existing_w_variables(self):
        # A containing query that already uses w-named variables must not have
        # its copy's existentials collide with them (variable capture).
        containee = parse_cq("q1(w0) <- R(w0, w0)")
        containing = parse_cq("q2(w0) <- R(w0, y)")
        mutated = mutation_by_name("self-join-containing").apply(
            containee, containing, random.Random(0)
        )
        assert mutated is not None
        _, doubled = mutated
        assert doubled.degree() == 2 * containing.degree()
        # y and its fresh copy stay distinct existentials; w0 stays the head.
        assert len(doubled.existential_variables()) == 2

    def test_self_join_containing_preserves_containment(self):
        for index, (containee, containing) in enumerate(builtin_pairs()):
            if not decide_via_most_general_probe(containee, containing).contained:
                continue
            mutated = mutation_by_name("self-join-containing").apply(
                containee, containing, random.Random(index)
            )
            assert mutated is not None
            assert decide_via_most_general_probe(*mutated).contained

    def test_freeze_constant_needs_a_shared_multi_variable_head(self):
        single = parse_cq("q1(x) <- R(x, x)")
        assert (
            mutation_by_name("freeze-constant").apply(single, single, random.Random(0)) is None
        )
        mismatched = parse_cq("q2(y, x) <- R(x, y)")
        wide = parse_cq("q1(x, y) <- R(x, y)")
        assert (
            mutation_by_name("freeze-constant").apply(wide, mismatched, random.Random(0)) is None
        )

    def test_freeze_constant_preserves_containment(self):
        containee = parse_cq("q1(x, y) <- R(x, y), S(y, x)")
        containing = parse_cq("q2(x, y) <- R(x, y), S(y, z)")
        assert decide_via_most_general_probe(containee, containing).contained
        for seed in range(4):
            mutated = mutation_by_name("freeze-constant").apply(
                containee, containing, random.Random(seed)
            )
            assert mutated is not None
            new_containee, new_containing = mutated
            assert new_containee.arity == new_containing.arity == 1
            assert new_containee.is_projection_free()
            assert decide_via_most_general_probe(new_containee, new_containing).contained
