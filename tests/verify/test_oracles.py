"""Unit tests for the differential oracles."""

import pytest

from repro.exceptions import VerifyError
from repro.queries.parser import parse_cq
from repro.verify.corpus import builtin_pairs
from repro.verify.oracles import (
    DIOPHANTINE_PATHS,
    OracleConfig,
    run_differential_oracle,
)


class TestOracleConfig:
    def test_defaults_cover_every_axis(self):
        config = OracleConfig()
        assert set(config.strategies) == {"most-general", "all-probes", "bounded-guess"}
        assert set(config.backends) == {"naive", "indexed", "interned", "generated"}
        assert set(config.diophantine_paths) == set(DIOPHANTINE_PATHS)

    def test_unknown_names_are_rejected(self):
        with pytest.raises(VerifyError):
            OracleConfig(strategies=("most-general", "telepathy"))
        with pytest.raises(VerifyError):
            OracleConfig(backends=("gpu",))
        with pytest.raises(VerifyError):
            OracleConfig(diophantine_paths=("sat",))
        with pytest.raises(VerifyError):
            OracleConfig(strategies=())


class TestBuiltinPairs:
    @pytest.mark.parametrize("pair_index", range(10))
    def test_builtin_pairs_are_discrepancy_free(self, pair_index):
        containee, containing = builtin_pairs()[pair_index]
        report = run_differential_oracle(containee, containing)
        assert report.ok, report.describe()
        assert report.consensus is not None
        # Every negative run replayed its certificate through bag evaluation.
        for run in report.runs:
            if run.contained is False:
                assert run.certificate_ok is True

    def test_full_axis_coverage_per_pair(self):
        containee, containing = builtin_pairs()[0]
        report = run_differential_oracle(containee, containing)
        labels = {run.label for run in report.runs}
        # 2 strategies x 2 paths x 4 backends + bounded-guess x 1 path x 4 backends
        assert len(labels) == 20
        assert "most-general/lp/naive" in labels
        assert "bounded-guess/exact/indexed" in labels
        assert "most-general/exact/interned" in labels
        assert "most-general/exact/generated" in labels


class TestOracleRobustness:
    def test_non_projection_free_containee_is_reported_not_raised(self):
        containee = parse_cq("q1(x) <- R(x, y)")
        containing = parse_cq("q2(x) <- R(x, x)")
        report = run_differential_oracle(containee, containing)
        assert not report.ok
        assert all(d.kind == "error" for d in report.discrepancies)

    def test_bounded_guess_explosion_is_skipped_not_failed(self):
        containee = parse_cq("q1(x) <- R^9(x, x), S^9(x, x), T^9(x, x)")
        containing = parse_cq("q2(x) <- R(x, x), S(x, x), T(x, x)")
        config = OracleConfig(bounded_guess_max_candidates=5)
        report = run_differential_oracle(containee, containing, config)
        skipped = [run for run in report.runs if run.skipped is not None]
        assert skipped and all(run.strategy == "bounded-guess" for run in skipped)
        assert report.ok, report.describe()

    def test_strategy_subset_is_honoured(self):
        containee, containing = builtin_pairs()[1]
        config = OracleConfig(strategies=("most-general",))
        report = run_differential_oracle(containee, containing, config)
        assert {run.strategy for run in report.runs} == {"most-general"}
        assert report.decisions == 8  # 2 paths x 4 backends

    def test_consensus_matches_the_decision_procedure(self):
        positive = run_differential_oracle(*builtin_pairs()[0])
        negative = run_differential_oracle(*builtin_pairs()[2])
        assert positive.consensus is True
        assert negative.consensus is False
        assert "contained" in positive.describe()
