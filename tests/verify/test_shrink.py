"""Unit tests for the delta-debugging shrinker."""

from repro.queries.parser import parse_cq
from repro.verify.shrink import shrink_pair


class TestShrinkMechanics:
    def test_non_reproducing_input_is_returned_unchanged(self):
        containee = parse_cq("q1(x) <- R(x, x), S(x, x)")
        containing = parse_cq("q2(x) <- R(x, x)")
        result = shrink_pair(containee, containing, lambda a, b: False)
        assert (result.containee, result.containing) == (containee, containing)
        assert result.rounds == 0

    def test_always_true_predicate_shrinks_to_single_atoms(self):
        containee = parse_cq("q1(x, y) <- R^3(x, y), S(y, x), R(x, x), T(x, y)")
        containing = parse_cq("q2(x, y) <- R(x, y), S(y, z), T(z, w), R(w, w)")
        result = shrink_pair(containee, containing, lambda a, b: True)
        assert result.size == (1, 1)
        # Multiplicities were lowered to 1 as well.
        assert set(result.containee.body.values()) == {1}

    def test_shrinking_keeps_the_pair_well_formed(self):
        containee = parse_cq("q1(x, y) <- R^2(x, y), S(y, x), R(x, a)")
        containing = parse_cq("q2(x, y) <- R(x, y), S(y, z), R(x, w)")
        seen = []

        def predicate(left, right):
            seen.append((left, right))
            return True

        result = shrink_pair(containee, containing, predicate)
        for left, right in seen:
            assert left.is_projection_free()
            assert left.arity == right.arity
        assert result.size <= (len(containee.body_atoms()), len(containing.body_atoms()))

    def test_crashing_predicate_counts_as_not_reproduced(self):
        containee = parse_cq("q1(x) <- R(x, x), S(x, x)")
        containing = parse_cq("q2(x) <- R(x, x), S(x, x)")
        calls = {"count": 0}

        def predicate(left, right):
            calls["count"] += 1
            if calls["count"] == 1:
                return True  # the original reproduces
            raise RuntimeError("boom")

        result = shrink_pair(containee, containing, predicate)
        assert (result.containee, result.containing) == (containee, containing)

    def test_check_budget_is_respected(self):
        containee = parse_cq("q1(x, y) <- R(x, y), S(y, x), T(x, x), U(y, y)")
        containing = parse_cq("q2(x, y) <- R(x, y), S(y, x), T(x, x), U(y, y)")
        result = shrink_pair(containee, containing, lambda a, b: True, max_checks=5)
        assert result.checks <= 5


class TestShrinkSemantics:
    def test_shrinks_a_semantic_property_to_a_minimal_witness(self):
        # Property: the containee mentions relation R with total multiplicity >= 2
        # while the containing query still mentions R at all.
        containee = parse_cq("q1(x, y) <- R^2(x, y), R(y, x), S(x, y), T(y, y)")
        containing = parse_cq("q2(x, y) <- R(x, y), S(x, z), T(z, y)")

        def predicate(left, right):
            left_r = sum(m for a, m in left.body.items() if a.relation == "R")
            right_r = sum(m for a, m in right.body.items() if a.relation == "R")
            return left_r >= 2 and right_r >= 1

        result = shrink_pair(containee, containing, predicate)
        assert predicate(result.containee, result.containing)
        assert result.size == (1, 1)  # a single R^2 atom vs a single R atom
        assert result.describe().startswith("shrunk")

    def test_orphaned_head_variables_are_dropped_from_both_heads(self):
        containee = parse_cq("q1(x, y) <- R(x, x), S(y, y)")
        containing = parse_cq("q2(u, v) <- R(u, u), S(v, v)")

        def predicate(left, right):
            return any(atom.relation == "R" for atom in left.body_atoms())

        result = shrink_pair(containee, containing, predicate)
        assert result.size == (1, 1)
        assert result.containee.arity == result.containing.arity
        assert result.containee.is_projection_free()
