"""Scheduling-independence of the fuzz campaign (``repro fuzz --jobs``).

Case generation and per-case mutation RNG derive from ``(campaign seed,
case index)`` alone, so a campaign's results — and the corpus it persists —
must be byte-identical no matter how many worker processes ran it or which
worker drew which chunk.
"""

from repro.session import Session
from repro.verify.corpus import save_corpus
from repro.verify.runner import CampaignConfig, campaign_corpus, run_campaign


def _campaign(jobs: int, tmp_path, label: str):
    config = CampaignConfig(
        cases=18,
        seed=5,
        jobs=jobs,
        mutation_rate=0.5,
        shrink_failures=False,
        chunk_size=3,
    )
    report = run_campaign(config)
    path = tmp_path / f"corpus-{label}.json"
    save_corpus(campaign_corpus(report), path)
    return report, path.read_bytes()


def test_fuzz_corpus_is_byte_identical_across_job_counts(tmp_path):
    serial_report, serial_corpus = _campaign(1, tmp_path, "serial")
    parallel_report, parallel_corpus = _campaign(3, tmp_path, "parallel")

    assert serial_corpus == parallel_corpus
    assert serial_report.case_results == parallel_report.case_results
    assert serial_report.failures == parallel_report.failures
    assert serial_report.ok == parallel_report.ok


def test_fuzz_through_a_session_shards_with_rehydrated_workers(tmp_path):
    """A session-driven campaign parallelises by rehydrating the session spec."""
    session = Session(name="fuzz-parent")
    outcome = session.fuzz(cases=12, seed=2, jobs=2, shrink_failures=False)
    report = outcome.value
    assert report.cases_run == 12
    assert report.ok
    # Worker cache activity was aggregated into the report.
    assert report.engine_stats and any(
        counts != (0, 0, 0) for counts in report.engine_stats.values()
    )

    serial = Session(name="fuzz-serial").fuzz(cases=12, seed=2, jobs=1, shrink_failures=False)
    assert [r.consensus for r in report.case_results] == [
        r.consensus for r in serial.value.case_results
    ]
