"""Seeded-defect corpus for the ``determinism-taint`` analyzer.

Every ``bad_*`` function contains exactly one ground-truth defect the
analyzer must report; every ``clean_*`` function is a nearby pattern it
must stay silent on.  ``test_taint.py`` asserts the finding set matches
the ``bad_*`` names exactly — no more, no less.

The module is analyzed as *source*, never imported by the engine, so the
free names (``persistent_digest``, ``Outcome``, ...) only need to look
like the real sinks.
"""

import json
import os
import time

from repro.core.certificates import ContainmentCounterexample
from repro.engine.fingerprints import persistent_digest
from repro.session.outcome import Outcome


# --------------------------------------------------------------------------- #
# Known-bad: captured iteration order / identity / environment / time
# reaching a sink.
# --------------------------------------------------------------------------- #
def bad_list_of_set_into_digest(atoms: frozenset):
    ordered = list(atoms)  # captures hash order
    return persistent_digest(ordered)


def bad_loop_append_into_json(names):
    collected = []
    for name in {n.lower() for n in names}:  # nondeterministic order
        collected.append(name)
    return json.dumps(collected)


def bad_id_into_digest(plan):
    return persistent_digest(id(plan))


def bad_env_into_outcome(request, value):
    tag = os.environ.get("REPRO_TAG", "")
    return Outcome(request=request, value=value, verdict=True, certificate=tag)


def bad_time_into_certificate(bag):
    stamp = time.time()
    return ContainmentCounterexample(
        probe=(stamp,), bag=bag, containee_multiplicity=1, containing_multiplicity=0
    )


def bad_branch_only_taint(atoms: set, flag):
    if flag:
        ordered = list(atoms)  # tainted on this branch only
    else:
        ordered = sorted(atoms)
    return json.dumps(ordered)  # may-taint: still a defect


# --------------------------------------------------------------------------- #
# Known-clean: the same shapes with a sanitizer (or no real flow).
# --------------------------------------------------------------------------- #
def clean_sorted_into_digest(atoms: frozenset):
    ordered = sorted(atoms)
    return persistent_digest(ordered)


def clean_sorted_loop_into_json(names):
    collected = []
    for name in sorted({n.lower() for n in names}):
        collected.append(name)
    return json.dumps(collected)


def clean_raw_set_into_digest(atoms: set):
    # persistent_digest canonicalises containers itself; handing it the
    # set directly (no captured order) is the blessed pattern.
    return persistent_digest(frozenset(atoms))


def clean_aggregate_into_json(names):
    return json.dumps({"count": len({n.lower() for n in names})})


def clean_rebound_before_sink(atoms: set):
    ordered = list(atoms)  # tainted...
    ordered = sorted(atoms)  # ...but rebound before the sink
    return persistent_digest(ordered)


def clean_sort_method_sanitizes(atoms: set):
    ordered = list(atoms)
    ordered.sort()
    return json.dumps(ordered)
