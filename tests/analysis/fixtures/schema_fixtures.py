"""Seeded layout variants for the persist-schema drift detector.

Each variant is the *source* of a module defining a persisted root type
``Payload`` (plus a nested ``Detail`` it references).  ``test_schema_lock``
materialises the baseline, writes a lock, then materialises every variant
under the same module name and asserts: every ``DRIFT_VARIANTS`` entry
changes the structural fingerprint (so an un-bumped ``SCHEMA_VERSION``
fails the check) and every ``CLEAN_VARIANTS`` entry leaves it untouched
(methods, docstrings, defaults and properties are not pickled layout).
"""

BASELINE = '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail
'''

DRIFT_VARIANTS = {
    "field-added": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail
    extra: float = 0.0
''',
    "field-removed": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    detail: Detail
''',
    "field-retyped": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: str
    detail: Detail
''',
    "field-reordered": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    count: int
    name: str
    detail: Detail
''',
    "nested-type-drift": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: float


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail
''',
}

CLEAN_VARIANTS = {
    "method-added": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail

    def describe(self):
        return f"{self.name} x{self.count}"
''',
    "docstring-changed": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    """A completely different docstring."""

    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail
''',
    "default-changed": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail


_UNRELATED_DEFAULT = 42
''',
    "property-added": '''
import dataclasses


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail

    @property
    def label(self):
        return self.name
''',
    "classvar-helper-added": '''
import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Detail:
    tag: str
    weight: int


@dataclasses.dataclass(frozen=True)
class Payload:
    name: str
    count: int
    detail: Detail

    FORMAT: typing.ClassVar[str] = "v1"
''',
}
