"""Seeded-defect corpus for the fork/pickle-safety analyzers.

``bad_*`` functions each contain one ground-truth defect
(``fork-unpicklable`` or ``fork-shared-state``); ``clean_*`` functions
are nearby patterns the analyzers must stay silent on.
``test_forksafety.py`` asserts the finding set matches the ``bad_*``
names exactly.

Analyzed as source only — the worker-boundary names just need to match.
"""

from functools import partial

from repro.parallel import SessionSpec, parallel_batch, pool_imap

RESULTS = {}
COUNTER = 0


def module_worker(job):
    return job


# --------------------------------------------------------------------------- #
# Known-bad: unpicklable values crossing the boundary
# --------------------------------------------------------------------------- #
def bad_lambda_to_pool(jobs):
    return pool_imap(lambda job: job, jobs)


def bad_nested_def_to_pool(jobs):
    def worker(job):
        return job

    return pool_imap(worker, jobs)


def bad_open_handle_keyword(jobs, path):
    log = open(path)
    return parallel_batch(jobs, initializer=module_worker, log=log)


def bad_local_class_spec(backend):
    class LocalLimits:
        rows = 10

    return SessionSpec(backend=backend, limits=LocalLimits())


# --------------------------------------------------------------------------- #
# Known-bad: worker-reachable writes to module state
# --------------------------------------------------------------------------- #
def bad_shared_global_write():
    global COUNTER
    COUNTER = COUNTER + 1


def bad_shared_container_write(job):
    RESULTS[job.key] = job.value
    return job


def run_bad_workers(jobs):
    pool_imap(bad_shared_container_write, jobs)
    return parallel_batch(jobs, initializer=bad_shared_global_write)


# --------------------------------------------------------------------------- #
# Known-clean
# --------------------------------------------------------------------------- #
def clean_module_fn_to_pool(jobs):
    return pool_imap(module_worker, jobs)


def clean_rebound_before_boundary(jobs):
    fn = lambda job: job  # noqa: E731 - rebinding is the point
    fn = module_worker
    return pool_imap(fn, jobs)


def clean_handle_not_passed(jobs, path):
    with open(path) as handle:
        manifest = handle.read()
    return pool_imap(module_worker, jobs), manifest


def clean_partial_of_module_fn(jobs):
    return pool_imap(partial(module_worker), jobs)


def clean_unrooted_writer(job):
    # Writes module state but is never handed to a worker boundary, so it
    # runs in the parent where the write is perfectly visible.
    RESULTS[job.key] = job.value
    return job


def clean_local_use_only(jobs):
    buffer = []
    for job in jobs:
        buffer.append(module_worker(job))
    return buffer
