"""The verified fuzz campaign: 300 cases with online soundness checks.

Every plan the indexed/interned/generated backends compile during the
differential campaign is pushed through ``verify_plan``, and every function
the generated backend synthesizes (including post-replan recompilations) is
AST-verified by ``verify_generated``.  The campaign must stay green AND
report zero violations — a regression in either the engines or the verifier
itself fails here.
"""

from repro.session import Session
from repro.verify.runner import BACKEND_NAMES


def test_300_case_campaign_verifies_every_plan_and_function():
    session = Session(backend="generated", debug_verify_plans=True)
    report = session.fuzz(
        cases=300,
        seed=0,
        jobs=2,
        shrink_failures=False,
    ).value
    assert report.ok, report.describe()
    assert report.cases_run == 300
    # The differential oracle runs every registered backend per case, so the
    # verified counts cover indexed, interned and generated plans alike.
    assert set(report.config.backends) == set(BACKEND_NAMES)
    plans, functions, violations = report.engine_stats["verify"]
    assert violations == 0, report.describe()
    assert plans > 300  # several plans per case across the backends
    assert functions > 0  # the generated backend compiled real code
    assert "0 violations" in report.describe()
