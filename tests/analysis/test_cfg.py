"""Structural tests for the per-function CFG builder."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    function = tree.body[0]
    assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(function)


def block_of(cfg, statement_type):
    """The first block holding a statement of the given AST type."""
    for block in cfg.blocks:
        if any(isinstance(statement, statement_type) for statement in block.statements):
            return block
    raise AssertionError(f"no block holds a {statement_type.__name__}")


def reachable(cfg):
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        index = frontier.pop()
        for successor in cfg.blocks[index].successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


class TestStraightLine:
    def test_single_block_flows_to_exit(self):
        cfg = cfg_of("""
        def f(a):
            b = a + 1
            return b
        """)
        entry = cfg.blocks[cfg.entry]
        assert cfg.exit in entry.successors
        assert [type(s).__name__ for s in entry.statements] == ["Assign", "Return"]

    def test_statements_after_return_are_unreachable(self):
        cfg = cfg_of("""
        def f(a):
            return a
            b = 1
        """)
        dead = block_of(cfg, ast.Assign)
        assert dead.index not in reachable(cfg)


class TestBranches:
    def test_if_forks_and_rejoins(self):
        cfg = cfg_of("""
        def f(a):
            if a:
                x = 1
            else:
                x = 2
            return x
        """)
        header = block_of(cfg, ast.If)
        assert len(header.successors) == 2
        join = block_of(cfg, ast.Return)
        preds = cfg.predecessors()[join.index]
        assert len(preds) == 2

    def test_if_without_else_edges_past_the_body(self):
        cfg = cfg_of("""
        def f(a):
            if a:
                x = 1
            return a
        """)
        header = block_of(cfg, ast.If)
        join = block_of(cfg, ast.Return)
        assert join.index in header.successors


class TestLoops:
    def test_loop_head_has_back_edge_and_exit_edge(self):
        cfg = cfg_of("""
        def f(items):
            for item in items:
                use(item)
            return 0
        """)
        head = block_of(cfg, ast.For)
        after = block_of(cfg, ast.Return)
        body = block_of(cfg, ast.Expr)
        assert after.index in head.successors
        assert head.index in body.successors  # back edge from the body

    def test_body_blocks_record_their_loop_head(self):
        cfg = cfg_of("""
        def f(items):
            for item in items:
                use(item)
            x = done()
        """)
        head = block_of(cfg, ast.For)
        body = block_of(cfg, ast.Expr)
        after = block_of(cfg, ast.Assign)
        assert head.index in body.loop_heads
        assert head.index not in after.loop_heads

    def test_break_edges_to_after_continue_to_head(self):
        cfg = cfg_of("""
        def f(items):
            while True:
                if flag():
                    break
                continue
            return 1
        """)
        head = block_of(cfg, ast.While)
        after = block_of(cfg, ast.Return)
        break_block = block_of(cfg, ast.Break)
        continue_block = block_of(cfg, ast.Continue)
        assert after.index in break_block.successors
        assert head.index in continue_block.successors

    def test_nested_loops_stack_their_heads(self):
        cfg = cfg_of("""
        def f(rows):
            for row in rows:
                for cell in row:
                    use(cell)
        """)
        inner_body = block_of(cfg, ast.Expr)
        assert len(inner_body.loop_heads) == 2


class TestTry:
    def test_every_try_block_reaches_every_handler(self):
        cfg = cfg_of("""
        def f(a):
            try:
                x = risky(a)
                y = riskier(x)
            except ValueError:
                y = 0
            except KeyError:
                y = 1
            return y
        """)
        handler_entries = [
            block.index
            for block in cfg.blocks
            if any(isinstance(s, ast.excepthandler) for s in block.statements)
        ]
        assert len(handler_entries) == 2
        # Both suite statements (in their own blocks) reach both handlers.
        suite_blocks = [
            block
            for block in cfg.blocks
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.value, ast.Call)
                and isinstance(s.value.func, ast.Name)
                and s.value.func.id in ("risky", "riskier")
                for s in block.statements
            )
        ]
        assert len(suite_blocks) == 2
        for suite_block in suite_blocks:
            for handler_entry in handler_entries:
                assert handler_entry in suite_block.successors

    def test_handler_binds_name_via_marker(self):
        cfg = cfg_of("""
        def f(a):
            try:
                x = risky(a)
            except ValueError as error:
                x = str(error)
            return x
        """)
        marker = block_of(cfg, ast.excepthandler)
        handler = next(
            s for s in marker.statements if isinstance(s, ast.excepthandler)
        )
        assert handler.name == "error"

    def test_raise_edges_to_handlers_and_exit(self):
        cfg = cfg_of("""
        def f(a):
            try:
                raise ValueError(a)
            except ValueError:
                return 0
        """)
        raise_block = block_of(cfg, ast.Raise)
        marker = block_of(cfg, ast.excepthandler)
        assert marker.index in raise_block.successors
        assert cfg.exit in raise_block.successors


class TestWithAndMatch:
    def test_with_is_inline(self):
        cfg = cfg_of("""
        def f(path):
            with open(path) as handle:
                data = handle.read()
            return data
        """)
        header = block_of(cfg, ast.With)
        assert any(isinstance(s, ast.Assign) for s in header.statements)

    def test_match_forks_per_case_and_falls_through(self):
        cfg = cfg_of("""
        def f(value):
            match value:
                case 0:
                    r = "zero"
                case _:
                    r = "other"
            return r
        """)
        header = block_of(cfg, ast.Match)
        assert len(header.successors) == 3  # two cases + fall-through

    def test_describe_renders_every_block(self):
        cfg = cfg_of("""
        def f(a):
            return a
        """)
        text = cfg.describe()
        assert text.startswith("cfg entry=")
        assert all(f"B{block.index} " in text for block in cfg.blocks)


class TestModuleRoot:
    def test_module_body_builds_a_cfg(self):
        tree = ast.parse("x = 1\nfor i in range(3):\n    x += i\n")
        cfg = build_cfg(tree)
        assert cfg.root is tree
        head = block_of(cfg, ast.For)
        body = block_of(cfg, ast.AugAssign)
        assert head.index in body.successors  # back edge
