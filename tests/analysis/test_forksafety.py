"""The fork/pickle-safety analyzers against their seeded-defect corpus."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.forksafety import (
    analyze_module,
    shared_state_findings,
    unpicklable_findings,
)

FIXTURE = Path(__file__).parent / "fixtures" / "fork_fixtures.py"


def functions_with_findings(tree):
    spans = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans[node.name] = (node.lineno, node.end_lineno)
    flagged = set()
    for line, _message in analyze_module(tree):
        owners = [
            name for name, (start, end) in spans.items() if start <= line <= end
        ]
        assert owners, f"finding at line {line} outside every fixture function"
        flagged.add(owners[0])
    return flagged


def unpicklable(source):
    return list(unpicklable_findings(ast.parse(textwrap.dedent(source))))


def shared(source):
    return list(shared_state_findings(ast.parse(textwrap.dedent(source))))


class TestSeededCorpus:
    def test_exactly_the_bad_fixtures_are_reported(self):
        tree = ast.parse(FIXTURE.read_text(encoding="utf-8"))
        names = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        bad = {name for name in names if name.startswith("bad_")}
        clean = {name for name in names if name.startswith("clean_")}
        assert len(bad) >= 5 and len(clean) >= 5  # corpus floor from the issue
        assert functions_with_findings(tree) == bad


class TestUnpicklable:
    def test_literal_lambda_argument(self):
        findings = unpicklable("""
        def f(jobs):
            return pool_imap(lambda j: j, jobs)
        """)
        assert len(findings) == 1
        assert "lambda" in findings[0][1]

    def test_nested_def_by_name(self):
        findings = unpicklable("""
        def f(jobs):
            def worker(j):
                return j
            return pool_imap(worker, jobs)
        """)
        assert len(findings) == 1
        assert "local scope" in findings[0][1]

    def test_open_handle_through_with(self):
        findings = unpicklable("""
        def f(jobs, path):
            with open(path) as log:
                return parallel_batch(jobs, log=log)
        """)
        assert len(findings) == 1
        assert "open file handle" in findings[0][1]

    def test_local_class_instance(self):
        findings = unpicklable("""
        def f(backend):
            class Limits:
                rows = 1
            return SessionSpec(backend=backend, limits=Limits())
        """)
        assert len(findings) == 1
        assert "class defined in a local scope" in findings[0][1]

    def test_partial_wrapping_lambda(self):
        findings = unpicklable("""
        def f(jobs):
            fn = partial(lambda j: j, 1)
            return pool_imap(fn, jobs)
        """)
        assert len(findings) == 1

    def test_rebinding_to_module_callable_is_clean(self):
        assert unpicklable("""
        def f(jobs):
            fn = lambda j: j
            fn = module_worker
            return pool_imap(fn, jobs)
        """) == []

    def test_module_level_def_is_picklable(self):
        assert unpicklable("""
        def worker(j):
            return j

        def f(jobs):
            return pool_imap(worker, jobs)
        """) == []

    def test_branch_assigned_lambda_is_a_may_finding(self):
        findings = unpicklable("""
        def f(jobs, flag):
            if flag:
                fn = lambda j: j
            else:
                fn = module_worker
            return pool_imap(fn, jobs)
        """)
        assert len(findings) == 1


class TestSharedState:
    def test_global_rebinding_in_worker_root(self):
        findings = shared("""
        COUNT = 0

        def init():
            global COUNT
            COUNT = 1

        def f(jobs):
            return parallel_batch(jobs, initializer=init)
        """)
        assert len(findings) == 1
        assert "rebinds module-global COUNT" in findings[0][1]

    def test_container_write_reachable_through_call_graph(self):
        findings = shared("""
        CACHE = {}

        def helper(job):
            CACHE[job.key] = job

        def worker(job):
            return helper(job)

        def f(jobs):
            return pool_imap(worker, jobs)
        """)
        assert len(findings) == 1
        assert "CACHE" in findings[0][1]

    def test_mutator_method_is_reported(self):
        findings = shared("""
        SEEN = []

        def worker(job):
            SEEN.append(job)

        def f(jobs):
            return pool_imap(worker, jobs)
        """)
        assert len(findings) == 1
        assert "append" in findings[0][1]

    def test_unrooted_writer_is_clean(self):
        assert shared("""
        CACHE = {}

        def writer(job):
            CACHE[job.key] = job
        """) == []

    def test_local_shadow_is_clean(self):
        assert shared("""
        CACHE = {}

        def worker(job):
            CACHE = {}
            CACHE[job.key] = job
            return CACHE

        def f(jobs):
            return pool_imap(worker, jobs)
        """) == []

    def test_module_without_boundary_calls_is_skipped(self):
        assert shared("""
        STATE = {}

        def mutate():
            global STATE
            STATE = {}
        """) == []
