"""Behavioural tests for the generic forward may-dataflow framework."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import join, run_analysis

TAINT = frozenset({"t"})
EMPTY = frozenset()


class NameTaint:
    """A tiny concrete analysis: ``source()`` taints, ``clean()`` cleans,
    ``sink(x)`` observes whether x is tainted at that point."""

    def initial_state(self, cfg):
        return {}

    def _eval(self, node, state):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "source":
                return TAINT
            if node.func.id == "clean":
                return EMPTY
            combined = frozenset()
            for argument in node.args:
                combined |= self._eval(argument, state)
            return combined
        if isinstance(node, ast.Name):
            return state.get(node.id, EMPTY)
        return EMPTY

    def transfer(self, statement, state, block):
        if isinstance(statement, ast.Assign):
            value = self._eval(statement.value, state)
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    state[target.id] = value

    def observe(self, statement, state, block):
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
            call = statement.value
            if isinstance(call.func, ast.Name) and call.func.id == "sink":
                for argument in call.args:
                    if self._eval(argument, state):
                        yield call.lineno


def tainted_sink_lines(source):
    tree = ast.parse(textwrap.dedent(source))
    function = tree.body[0]
    cfg = build_cfg(function)
    return sorted(run_analysis(cfg, NameTaint()))


class TestJoin:
    def test_join_is_pointwise_union(self):
        merged = join([{"a": frozenset({"x"})}, {"a": frozenset({"y"}), "b": TAINT}])
        assert merged == {"a": frozenset({"x", "y"}), "b": TAINT}

    def test_join_of_nothing_is_bottom(self):
        assert join([]) == {}


class TestFlowSensitivity:
    def test_straight_line_taint_reaches_sink(self):
        assert tainted_sink_lines("""
        def f():
            x = source()
            sink(x)
        """) == [4]

    def test_rebinding_kills_taint(self):
        assert tainted_sink_lines("""
        def f():
            x = source()
            x = clean()
            sink(x)
        """) == []

    def test_sink_before_source_is_clean(self):
        assert tainted_sink_lines("""
        def f():
            x = clean()
            sink(x)
            x = source()
        """) == []

    def test_branch_taint_joins_as_may(self):
        assert tainted_sink_lines("""
        def f(flag):
            if flag:
                x = source()
            else:
                x = clean()
            sink(x)
        """) == [7]

    def test_both_branches_clean_is_clean(self):
        assert tainted_sink_lines("""
        def f(flag):
            if flag:
                x = clean()
            else:
                x = clean()
            sink(x)
        """) == []

    def test_loop_carried_taint_reaches_fixpoint(self):
        # y picks up taint only on the second iteration: x is tainted at
        # the end of iteration one, so the back edge must propagate it.
        assert tainted_sink_lines("""
        def f(items):
            x = clean()
            y = clean()
            for item in items:
                y = x
                x = source()
            sink(y)
        """) == [8]

    def test_taint_through_derived_assignment(self):
        assert tainted_sink_lines("""
        def f():
            x = source()
            y = combine(x)
            sink(y)
        """) == [5]

    def test_exception_path_taint_survives(self):
        assert tainted_sink_lines("""
        def f():
            x = clean()
            try:
                x = source()
                x = clean()
            except ValueError:
                sink(x)
        """) == [8]
