"""Unit tests for the plan/codegen soundness verifier."""

import dataclasses

import pytest

from repro.analysis.soundness import Violation, verify_generated, verify_plan
from repro.engine import EngineCache, create_backend
from repro.engine.interning import ID_BITS, TermDictionary
from repro.queries.parser import parse_cq
from repro.relational.terms import Constant, Variable


def plan_for(backend_name, source_text, target_text, fixed=frozenset()):
    backend = create_backend(backend_name, cache=EngineCache())
    source = parse_cq(source_text).body_atoms()
    target = parse_cq(target_text).body_atoms()
    plan = backend.plan(source, target, fixed)
    return backend, plan, source, target


SOURCE = "q() :- e(x,y), e(y,z), e(z,x), f(x,w)"
TARGET = "p() :- e('a','b'), e('b','c'), e('c','a'), e('a','a'), f('a','u'), f('b','v')"


class TestVerifyMatchPlan:
    def test_compiled_plan_is_clean(self):
        _, plan, source, _ = plan_for("indexed", SOURCE, TARGET)
        assert verify_plan(plan, source_atoms=source, fixed_variables=frozenset()) == []

    def test_accepts_query_objects_for_source(self):
        _, plan, _, _ = plan_for("indexed", SOURCE, TARGET)
        assert verify_plan(plan, source_atoms=parse_cq(SOURCE)) == []

    def test_fixed_contract_mismatch_is_reported(self):
        _, plan, source, _ = plan_for("indexed", SOURCE, TARGET)
        violations = verify_plan(
            plan, source_atoms=source, fixed_variables=frozenset({Variable("x")})
        )
        assert any(v.code == "fixed-mismatch" for v in violations)

    def test_wrong_source_atoms_break_the_permutation(self):
        _, plan, _, _ = plan_for("indexed", SOURCE, TARGET)
        other = parse_cq("q() :- e(x,y)").body_atoms()
        violations = verify_plan(plan, source_atoms=other)
        assert any(v.code == "order-permutation" for v in violations)

    def test_unknown_plan_type_is_reported(self):
        violations = verify_plan(object())
        assert [v.code for v in violations] == ["unknown-plan"]


class TestVerifyInternedPlan:
    def test_compiled_plan_is_clean(self):
        backend, plan, source, _ = plan_for("interned", SOURCE, TARGET)
        assert (
            verify_plan(
                plan,
                source_atoms=source,
                fixed_variables=frozenset(),
                dictionary=backend.dictionary,
            )
            == []
        )

    def test_fixed_plan_with_static_filter_is_clean(self):
        fixed = frozenset({Variable("x")})
        backend, plan, source, _ = plan_for(
            "interned", "q(x) :- e(x,x), e(x,y)", TARGET, fixed
        )
        assert plan.static_steps  # e(x,x) hoists once x is fixed
        assert (
            verify_plan(
                plan,
                source_atoms=source,
                fixed_variables=fixed,
                dictionary=backend.dictionary,
            )
            == []
        )

    def test_reordered_steps_surface_unbound_reads(self):
        backend, plan, source, _ = plan_for(
            "interned", "q() :- e(x,y), e(y,z), e(z,w)", "p() :- e('a','b'), e('b','c')"
        )
        steps = list(plan.steps)
        assert len(steps) == 3
        tampered = dataclasses.replace(plan, steps=(steps[0], steps[2], steps[1]))
        codes = {
            v.code
            for v in verify_plan(
                tampered, source_atoms=source, dictionary=backend.dictionary
            )
        }
        assert "unbound-read" in codes or "signature-mismatch" in codes

    def test_wrong_constant_id_is_reported(self):
        backend, plan, source, _ = plan_for(
            "interned", "q() :- e(x,'a')", "p() :- e('a','a')"
        )
        step = plan.steps[0]
        constant_position = next(i for i, op in enumerate(step.key_ops) if op < 0)
        bad_ops = list(step.key_ops)
        bad_ops[constant_position] = bad_ops[constant_position] - 1  # off-by-one id
        # InternedStep uses __slots__, not a dataclass: rebuild it in place.
        type(step).__init__(
            step, step.atom, step.group, step.bucket, tuple(bad_ops), step.new_ops, step.counter
        )
        violations = verify_plan(
            plan, source_atoms=source, dictionary=backend.dictionary
        )
        assert any(v.code == "signature-mismatch" for v in violations)

    def test_key_budget_flags_oversized_dictionary_window(self):
        # A dictionary whose capacity exceeds the ID_BITS pack window could
        # assign ids past the injectivity bound before its own guard fires.
        backend, plan, source, _ = plan_for("interned", SOURCE, TARGET)
        assert any(len(step.key_ops) >= 2 for step in plan.steps)
        roomy = TermDictionary(id_bits=ID_BITS + 1)
        for index in range(len(backend.dictionary)):
            roomy.intern(backend.dictionary.term(index))
        violations = verify_plan(plan, source_atoms=source, dictionary=roomy)
        assert any(v.code == "key-overflow" for v in violations)

    def test_violation_describe_mentions_code_and_subject(self):
        violation = Violation("unbound-read", "step 2", "slot 4 read before bound")
        text = violation.describe()
        assert "unbound-read" in text and "step 2" in text


class TestVerifyGeneratedPlan:
    def test_plan_and_all_chains_are_clean(self):
        backend, plan, source, target = plan_for("generated", SOURCE, TARGET)
        assert backend.count(source, target, None) > 0
        assert backend.exists(source, target, None)
        assert sum(1 for _ in backend.iterate(source, target, None)) > 0
        assert sorted(plan.chains) == ["collect", "count", "exists"]
        assert (
            verify_plan(plan, source_atoms=source, fixed_variables=frozenset()) == []
        )

    def test_static_chain_is_verified(self):
        fixed = frozenset({Variable("x")})
        backend, plan, source, _ = plan_for(
            "generated", "q(x) :- e(x,x), e(x,y)", TARGET, fixed
        )
        assert plan.base.static_steps
        assert verify_plan(plan, source_atoms=source, fixed_variables=fixed) == []

    def test_shuffled_suffix_without_recompilation_is_caught(self):
        backend, plan, source, _ = plan_for(
            "generated", "q() :- e(x,y), e(y,z), e(z,w)", "p() :- e('a','b'), e('b','c')"
        )
        assert len(plan.suffix) == 2
        plan.suffix[0], plan.suffix[1] = plan.suffix[1], plan.suffix[0]
        violations = verify_plan(plan, source_atoms=source, include_chains=False)
        assert violations

    def test_foreign_suffix_step_breaks_the_permutation(self):
        backend, plan, source, _ = plan_for("generated", SOURCE, TARGET)
        _, other_plan, _, _ = plan_for(
            "generated", "q() :- g(x,y), g(y,x)", "p() :- g('a','b'), g('b','a')"
        )
        plan.suffix[-1] = other_plan.base.steps[0]
        violations = verify_plan(plan, source_atoms=source, include_chains=False)
        assert any(v.code == "order-permutation" for v in violations)


class TestVerifyGenerated:
    def _compiled(self):
        backend, plan, source, target = plan_for("generated", SOURCE, TARGET)
        backend.count(source, target, None)
        backend.exists(source, target, None)
        list(backend.iterate(source, target, None))
        return plan

    def test_every_mode_verifies_clean(self):
        plan = self._compiled()
        for mode, function in plan.chains.items():
            assert verify_generated(function.__source__, plan, mode) == []
        assert verify_generated(plan.static_chain.__source__, plan, "static") == []

    def test_missing_counter_tick_is_caught(self):
        plan = self._compiled()
        source = plan.chains["count"].__source__
        broken = source.replace("C0[0] += 1", "C0[0] += 2", 1)
        assert any(
            "counter tick" in v.message
            for v in verify_generated(broken, plan, "count")
        )

    def test_wrong_probe_key_is_caught(self):
        plan = self._compiled()
        source = plan.chains["count"].__source__
        assert "<< 32" in source
        broken = source.replace("<< 32", "<< 16", 1)
        assert any(
            "probe expression" in v.message
            for v in verify_generated(broken, plan, "count")
        )

    def test_illegal_names_and_imports_are_caught(self):
        plan = self._compiled()
        source = plan.chains["exists"].__source__
        header = "def _run(binding):"
        evil = source.replace(header, header + "\n    import os\n    os.system('x')", 1)
        codes = {v.code for v in verify_generated(evil, plan, "exists")}
        assert "illegal-node" in codes

    def test_foreign_call_is_caught(self):
        plan = self._compiled()
        source = plan.chains["count"].__source__
        broken = source.replace("len(rows0)", "eval(rows0)", 1)
        codes = {v.code for v in verify_generated(broken, plan, "count")}
        assert "illegal-call" in codes or "illegal-name" in codes

    def test_dropped_duplicate_check_is_caught(self):
        # e(z,z) forces a duplicate-fresh-variable row check in the suffix.
        backend, plan, source, target = plan_for(
            "generated",
            "q() :- e(x,y), f(y,z,z)",
            "p() :- e('a','b'), f('b','c','c'), f('b','c','d')",
        )
        assert backend.count(source, target, None) == 1
        fn_source = plan.chains["count"].__source__
        assert "!=" in fn_source
        import re

        broken = re.sub(r" *if row\d+\[\d+\] != row\d+\[\d+\]:\n *continue\n", "", fn_source)
        assert broken != fn_source
        assert any(
            "duplicate" in v.message or "structure" == v.code
            for v in verify_generated(broken, plan, "count")
        )

    def test_unknown_mode_and_unparseable_source(self):
        plan = self._compiled()
        assert verify_generated("def _run(binding): pass", plan, "nope")[0].code == "unknown-mode"
        assert verify_generated("def _run(:", plan, "count")[0].code == "syntax-error"

    def test_empty_suffix_single_atom_query(self):
        backend, plan, source, target = plan_for(
            "generated", "q() :- e(x,y)", "p() :- e('a','b')"
        )
        assert backend.count(source, target, None) == 1
        for mode, function in plan.chains.items():
            assert verify_generated(function.__source__, plan, mode) == []
