"""The determinism-taint analyzer against its seeded-defect corpus.

The fixture module holds ``bad_*`` functions (each with exactly one
ground-truth defect) and ``clean_*`` functions (nearby patterns that must
stay silent).  The corpus test asserts the set of functions with findings
is exactly the ``bad_*`` set — no false negatives, no false positives.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis.taint import analyze_module

FIXTURE = Path(__file__).parent / "fixtures" / "det_fixtures.py"


def functions_with_findings(tree):
    """Map each finding line to its enclosing top-level function name."""
    spans = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans[node.name] = (node.lineno, node.end_lineno)
    flagged = set()
    for line, _message in analyze_module(tree):
        owners = [
            name for name, (start, end) in spans.items() if start <= line <= end
        ]
        assert owners, f"finding at line {line} outside every fixture function"
        flagged.add(owners[0])
    return flagged


def findings_of(source):
    return list(analyze_module(ast.parse(textwrap.dedent(source))))


class TestSeededCorpus:
    def test_exactly_the_bad_fixtures_are_reported(self):
        tree = ast.parse(FIXTURE.read_text(encoding="utf-8"))
        names = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        bad = {name for name in names if name.startswith("bad_")}
        clean = {name for name in names if name.startswith("clean_")}
        assert len(bad) >= 5 and len(clean) >= 5  # corpus floor from the issue
        assert functions_with_findings(tree) == bad


class TestSourcesAndKinds:
    def test_captured_set_order_is_reported(self):
        findings = findings_of("""
        def f(s: set):
            xs = list(s)
            return persistent_digest(xs)
        """)
        assert len(findings) == 1
        assert "iteration-order" in findings[0][1]

    def test_identity_is_reported(self):
        findings = findings_of("""
        def f(x):
            return persistent_digest(id(x))
        """)
        assert len(findings) == 1
        assert "identity" in findings[0][1]

    def test_environment_read_is_reported(self):
        findings = findings_of("""
        import os
        def f(request, value):
            tag = os.environ["TAG"]
            return Outcome(request=request, value=value, certificate=tag)
        """)
        assert len(findings) == 1
        assert "environment" in findings[0][1]

    def test_time_is_reported(self):
        findings = findings_of("""
        import time
        def f():
            return json.dumps({"at": time.time()})
        """)
        assert len(findings) == 1
        assert "time" in findings[0][1]


class TestSanitizers:
    @pytest.mark.parametrize(
        "body",
        [
            "xs = sorted(s)\n    return persistent_digest(xs)",
            "return persistent_digest(s)",  # raw set: digest canonicalises
            "return json.dumps(len(s))",  # aggregation strips order
            "xs = list(s)\n    xs.sort()\n    return json.dumps(xs)",
            "xs = list(s)\n    xs = sorted(s)\n    return json.dumps(xs)",
        ],
    )
    def test_sanitized_flows_are_clean(self, body):
        assert findings_of(f"def f(s: set):\n    {body}\n") == []

    def test_loop_over_sorted_set_is_clean(self):
        assert findings_of("""
        def f(s):
            out = []
            for item in sorted(s):
                out.append(item)
            return json.dumps(out)
        """) == []

    def test_loop_over_raw_set_captures_order(self):
        findings = findings_of("""
        def f(s):
            out = []
            for item in s | {1}:
                out.append(item)
            return json.dumps(out)
        """)
        assert len(findings) == 1


class TestFlowSensitivity:
    def test_taint_on_one_branch_is_still_reported(self):
        findings = findings_of("""
        def f(s: set, flag):
            if flag:
                xs = list(s)
            else:
                xs = sorted(s)
            return json.dumps(xs)
        """)
        assert len(findings) == 1

    def test_sanitized_on_all_branches_is_clean(self):
        assert findings_of("""
        def f(s, flag):
            if flag:
                xs = sorted(s)
            else:
                xs = sorted(s, reverse=True)
            return json.dumps(xs)
        """) == []

    def test_sink_without_flow_is_clean(self):
        assert findings_of("""
        def f(s: set):
            xs = list(s)  # tainted but never reaches the sink
            return json.dumps("constant")
        """) == []

    def test_nested_function_scopes_are_analyzed(self):
        findings = findings_of("""
        def outer(s):
            def inner(t: set):
                return persistent_digest(list(t))
            return inner
        """)
        assert len(findings) == 1

    def test_non_json_dumps_is_not_a_sink(self):
        assert findings_of("""
        def f(s: set, codec):
            return codec.dumps(list(s))
        """) == []
