"""Fixture tests for the lint framework and every built-in rule."""

import textwrap

from repro.analysis.lint import (
    LintRule,
    default_rules,
    iter_source_files,
    lint_paths,
    lint_source,
)


def run(source, path="src/repro/some/module.py", rules=None):
    return lint_source(textwrap.dedent(source), path, rules)


def codes(findings):
    return [finding.rule for finding in findings]


class TestFramework:
    def test_clean_source_has_no_findings(self):
        assert run("x = 1\n\n\ndef f(a):\n    return a\n") == []

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = run("def broken(:\n")
        assert codes(findings) == ["syntax-error"]

    def test_findings_are_sorted_by_line(self):
        source = """
        def f(a={}):
            pass

        def g(b=[]):
            pass
        """
        lines = [finding.line for finding in run(source)]
        assert lines == sorted(lines)

    def test_rule_scope_restricts_paths(self):
        probe = LintRule(
            name="probe", summary="", check=lambda ctx: [(1, "hit")], scope=("engine/",)
        )
        assert codes(lint_source("x = 1", "src/repro/engine/plan.py", [probe])) == ["probe"]
        assert lint_source("x = 1", "src/repro/queries/cq.py", [probe]) == []

    def test_describe_format(self):
        finding = run("def f(a=[]):\n    pass\n")[0]
        assert finding.describe().startswith("src/repro/some/module.py:1: [mutable-default]")

    def test_iter_source_files_skips_hidden_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = iter_source_files([tmp_path])
        assert [file.name for file in files] == ["a.py"]


class TestSuppressions:
    def test_justified_suppression_silences_the_rule(self):
        source = "STATE = {}  # lint: disable=global-mutable-state -- test-only registry\n"
        assert run(source) == []

    def test_unjustified_suppression_is_reported_and_ineffective(self):
        source = "STATE = {}  # lint: disable=global-mutable-state\n"
        assert sorted(codes(run(source))) == ["bad-suppression", "global-mutable-state"]

    def test_suppression_only_covers_its_own_line(self):
        source = (
            "A = {}  # lint: disable=global-mutable-state -- fine\n"
            "B = {}\n"
        )
        findings = run(source)
        assert codes(findings) == ["global-mutable-state"]
        assert findings[0].line == 2

    def test_multiple_rules_in_one_comment(self):
        source = (
            "STATE = {}  # lint: disable=global-mutable-state,other-rule -- shared fixture\n"
        )
        assert run(source) == []


class TestSetOrderIteration:
    PATH = "src/repro/engine/fingerprints.py"

    def test_for_over_set_call_is_flagged(self):
        source = """
        def f(items):
            for item in set(items):
                yield item
        """
        assert "set-order-iteration" in codes(run(source, self.PATH))

    def test_comprehension_over_frozenset_is_flagged(self):
        source = "def f(items):\n    return [i for i in frozenset(items)]\n"
        assert "set-order-iteration" in codes(run(source, self.PATH))

    def test_sorted_wrapper_is_clean(self):
        source = """
        def f(items):
            for item in sorted(set(items)):
                yield item
        """
        assert run(source, self.PATH) == []

    def test_rule_is_scoped_to_determinism_paths(self):
        source = "def f(items):\n    return [i for i in set(items)]\n"
        assert run(source, "src/repro/workloads/random_queries.py") == []


class TestMutableDefault:
    def test_function_defaults(self):
        assert "mutable-default" in codes(run("def f(a=[]):\n    pass\n"))
        assert "mutable-default" in codes(run("def f(*, a={}):\n    pass\n"))
        assert "mutable-default" in codes(run("def f(a=dict()):\n    pass\n"))
        assert run("def f(a=None, b=(), c=1):\n    pass\n") == []

    def test_dataclass_fields(self):
        source = """
        from dataclasses import dataclass, field

        @dataclass
        class Config:
            bad: dict = {}
        """
        assert "mutable-default" in codes(run(source))
        good = """
        from dataclasses import dataclass, field

        @dataclass
        class Config:
            good: dict = field(default_factory=dict)
        """
        assert run(good) == []

    def test_plain_class_attributes_are_not_dataclass_fields(self):
        assert run("class C:\n    shared = {}\n") == []


class TestGlobalMutableState:
    def test_module_level_mutables_are_flagged(self):
        assert "global-mutable-state" in codes(run("CACHE = {}\n"))
        assert "global-mutable-state" in codes(run("SEEN: set = set()\n"))
        assert "global-mutable-state" in codes(run("PAIRS = [(1, 2)]\n"))

    def test_immutables_and_dunders_are_clean(self):
        assert run("NAMES = ('a', 'b')\nLIMIT = 3\n__all__ = ['NAMES']\n") == []

    def test_registry_modules_are_exempt(self):
        assert run("REGISTRY = {}\n", "src/repro/engine/backends.py") == []
        assert run("REGISTRY = {}\n", "src/repro/core/decision.py") == []

    def test_function_locals_are_not_module_level(self):
        assert run("def f():\n    local = {}\n    return local\n") == []


class TestInternalShimCall:
    def test_attribute_call_through_repro_alias(self):
        source = "import repro\n\n\ndef f(q1, q2):\n    return repro.compare(q1, q2)\n"
        assert "internal-shim-call" in codes(run(source))

    def test_direct_import_call(self):
        source = "from repro import evaluate_bag\n\n\ndef f(q, i):\n    return evaluate_bag(q, i)\n"
        assert "internal-shim-call" in codes(run(source))

    def test_shims_module_import_call(self):
        source = (
            "from repro.session import shims\n\n\ndef f(q1, q2):\n"
            "    return shims.compare(q1, q2)\n"
        )
        assert "internal-shim-call" in codes(run(source))

    def test_unrelated_names_are_clean(self):
        source = (
            "from repro.core.spectrum import compare\n\n\ndef f(q1, q2):\n"
            "    return compare(q1, q2)\n"
        )
        assert run(source) == []

    def test_the_shim_module_itself_is_exempt(self):
        source = "import repro\n\n\ndef f(q1, q2):\n    return repro.compare(q1, q2)\n"
        assert run(source, "src/repro/session/shims.py") == []


class TestBareExcept:
    def test_bare_except_is_flagged(self):
        source = "def f():\n    try:\n        return 1\n    except:\n        return 2\n"
        assert "bare-except" in codes(run(source))

    def test_typed_except_is_clean(self):
        source = "def f():\n    try:\n        return 1\n    except ValueError:\n        return 2\n"
        assert run(source) == []


class TestRepoIsClean:
    def test_default_rules_are_registered(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "set-order-iteration",
            "mutable-default",
            "global-mutable-state",
            "internal-shim-call",
            "bare-except",
            "determinism-taint",
            "fork-unpicklable",
            "fork-shared-state",
        }

    def test_repro_package_tree_is_lint_clean(self):
        findings = lint_paths()
        assert findings == [], "\n".join(finding.describe() for finding in findings)
