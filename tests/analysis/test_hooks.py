"""Online verification hooks: session flag, counters, campaign reporting."""

import pytest

from repro.analysis import hooks
from repro.exceptions import PlanVerificationError
from repro.queries.parser import parse_cq
from repro.session import Session


@pytest.fixture(autouse=True)
def _reset_counts():
    hooks.reset_verification_counts()
    yield
    hooks.reset_verification_counts()


Q1 = parse_cq("q(x,y) :- e(x,y), e(y,x)")
Q2 = parse_cq("q(x,y) :- e(x,y)")


class TestContextFlag:
    def test_disabled_by_default(self):
        assert not hooks.verification_enabled()

    def test_context_manager_sets_and_restores(self):
        with hooks.debug_verify_plans():
            assert hooks.verification_enabled()
            with hooks.debug_verify_plans(False):
                assert not hooks.verification_enabled()
            assert hooks.verification_enabled()
        assert not hooks.verification_enabled()

    def test_token_api_round_trips(self):
        token = hooks.set_enabled(True)
        assert hooks.verification_enabled()
        hooks.reset(token)
        assert not hooks.verification_enabled()


class TestSessionIntegration:
    @pytest.mark.parametrize("backend", ["indexed", "interned", "generated"])
    def test_decisions_are_verified_when_enabled(self, backend):
        session = Session(backend=backend, debug_verify_plans=True)
        outcome = session.decide(Q2, Q1)
        assert outcome.value is not None
        plans, generated, violations = hooks.verification_counts()
        assert plans > 0
        assert violations == 0
        if backend == "generated":
            assert generated > 0

    def test_flag_off_verifies_nothing(self):
        session = Session(backend="interned")
        session.decide(Q2, Q1)
        assert hooks.verification_counts() == (0, 0, 0)

    def test_flag_does_not_leak_outside_activation(self):
        session = Session(backend="interned", debug_verify_plans=True)
        with session.activate():
            assert hooks.verification_enabled()
        assert not hooks.verification_enabled()

    def test_spec_round_trips_the_flag(self):
        session = Session(backend="generated", debug_verify_plans=True)
        spec = session.spec()
        assert spec.debug_verify_plans is True
        rebuilt = spec.build()
        assert rebuilt.debug_verify_plans is True
        assert Session(backend="indexed").spec().debug_verify_plans is False

    def test_evaluation_and_mpi_paths_are_covered(self):
        from repro.relational.instances import BagInstance
        from repro.relational.atoms import Atom
        from repro.relational.terms import Constant

        session = Session(backend="generated", debug_verify_plans=True)
        instance = BagInstance({Atom("e", (Constant("a"), Constant("b"))): 2})
        session.evaluate(Q2, instance)
        assert hooks.verification_counts()[0] > 0


class TestRaisingChecks:
    def test_check_plan_raises_with_violations(self):
        from repro.engine import EngineCache, create_backend

        backend = create_backend("interned", cache=EngineCache())
        plan = backend.plan(Q1.body_atoms(), Q2.body_atoms(), frozenset())
        with pytest.raises(PlanVerificationError) as excinfo:
            hooks.check_plan(
                plan,
                source_atoms=parse_cq("q() :- zzz(a)").body_atoms(),
                dictionary=backend.dictionary,
            )
        assert excinfo.value.violations
        assert hooks.verification_counts()[2] == len(excinfo.value.violations)

    def test_check_generated_raises_on_tampered_source(self):
        from repro.engine import EngineCache, create_backend

        backend = create_backend("generated", cache=EngineCache())
        source = parse_cq("q() :- e(x,y), e(y,z)").body_atoms()
        target = parse_cq("p() :- e('a','b'), e('b','c')").body_atoms()
        plan = backend.plan(source, target, frozenset())
        assert backend.count(source, target, None) == 1
        fn = plan.chains["count"]
        with pytest.raises(PlanVerificationError):
            hooks.check_generated(fn.__source__.replace("+= 1", "+= 3"), plan, "count")


class TestCampaignReporting:
    def test_verify_pseudo_layer_rides_the_snapshot(self):
        session = Session(backend="generated")
        report = session.fuzz(
            cases=3,
            seed=0,
            debug_verify_plans=True,
            mutation_rate=0.0,
            shrink_failures=False,
        ).value
        assert "verify" in report.engine_stats
        plans, generated, violations = report.engine_stats["verify"]
        assert plans > 0
        assert violations == 0
        assert "verify" in report.describe()

    def test_session_flag_defaults_the_campaign_flag(self):
        session = Session(backend="interned", debug_verify_plans=True)
        report = session.fuzz(
            cases=2, seed=1, mutation_rate=0.0, shrink_failures=False
        ).value
        assert report.config.debug_verify_plans is True
        assert "verify" in report.engine_stats

    def test_plain_campaign_has_no_verify_layer(self):
        session = Session(backend="interned")
        report = session.fuzz(
            cases=2, seed=1, mutation_rate=0.0, shrink_failures=False
        ).value
        assert "verify" not in report.engine_stats
