"""Typing surface sanity: py.typed marker, mypy config, optional strict run."""

import configparser
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

STRICT_MODULES = (
    "repro.engine.fingerprints",
    "repro.engine.persist",
    "repro.parallel",
    "repro.session.requests",
    "repro.analysis.cfg",
    "repro.analysis.dataflow",
    "repro.analysis.taint",
    "repro.analysis.forksafety",
    "repro.analysis.schema_lock",
)


def test_py_typed_marker_ships_with_the_package():
    marker = Path(repro.__file__).with_name("py.typed")
    assert marker.is_file()
    setup = (REPO_ROOT / "setup.py").read_text()
    assert "py.typed" in setup  # installed wheels must carry the marker too


def test_mypy_config_pins_the_strict_islands():
    config_path = REPO_ROOT / "mypy.ini"
    assert config_path.is_file()
    config = configparser.ConfigParser()
    config.read(config_path)
    assert config.get("mypy", "python_version") == "3.11"
    # The blanket section keeps the rest of the tree permissive...
    assert config.getboolean("mypy-repro.*", "ignore_errors")
    # ...while each strict island opts back in with real checks.
    for module in STRICT_MODULES:
        section = f"mypy-{module}"
        assert config.has_section(section), section
        assert not config.getboolean(section, "ignore_errors")
        assert config.getboolean(section, "disallow_untyped_defs")


def test_strict_modules_exist_and_import():
    for module in STRICT_MODULES:
        assert importlib.util.find_spec(module) is not None, module


def test_mypy_strict_islands_are_clean():
    if importlib.util.find_spec("mypy") is None:
        pytest.skip("mypy is not installed in this environment (CI runs it)")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
