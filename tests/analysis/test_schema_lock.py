"""Persist-schema drift detection: fingerprints, lock checks, variants."""

import importlib.util
import sys
from pathlib import Path

import pytest

import repro.analysis.schema_lock as schema_lock
from repro.analysis.schema_lock import (
    check_lock,
    current_fingerprint,
    diff_layouts,
    write_lock,
)

FIXTURE_DIR = Path(__file__).parent / "fixtures"


def load_schema_fixtures():
    spec = importlib.util.spec_from_file_location(
        "schema_fixtures", FIXTURE_DIR / "schema_fixtures.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


FIXTURES = load_schema_fixtures()

_MODULE_NAME = "_repro_schema_lock_variant"


def materialise(source, tmp_path, monkeypatch):
    """Build a module from *source* and point ROOT_TYPES at its Payload."""
    path = tmp_path / f"{_MODULE_NAME}.py"
    path.write_text(source, encoding="utf-8")
    spec = importlib.util.spec_from_file_location(_MODULE_NAME, path)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setitem(sys.modules, _MODULE_NAME, module)
    spec.loader.exec_module(module)
    monkeypatch.setattr(schema_lock, "ROOT_TYPES", ((_MODULE_NAME, "Payload"),))
    return module


class TestRealTree:
    def test_fingerprint_covers_the_persisted_roots_transitively(self):
        fingerprint = current_fingerprint()
        names = set(fingerprint.types)
        assert "repro.engine.plan.MatchPlan" in names
        assert "repro.core.decision.BagContainmentResult" in names
        # Transitive reach: terms referenced through plan/encoding fields.
        assert "repro.relational.terms.Variable" in names
        assert len(names) >= 15

    def test_fingerprint_is_deterministic(self):
        assert current_fingerprint().digest == current_fingerprint().digest

    def test_committed_lock_matches_the_running_code(self):
        lock_path = Path(__file__).parents[2] / "persist-schema.lock"
        assert lock_path.exists(), "persist-schema.lock must be committed"
        problems = check_lock(lock_path)
        assert problems == [], "\n".join(problems)


class TestLockStates:
    def test_missing_lock_is_reported(self, tmp_path):
        problems = check_lock(tmp_path / "absent.lock")
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_unreadable_lock_is_reported(self, tmp_path):
        path = tmp_path / "garbage.lock"
        path.write_text("{not json", encoding="utf-8")
        problems = check_lock(path)
        assert len(problems) == 1
        assert "unreadable" in problems[0]

    def test_freshly_written_lock_matches(self, tmp_path):
        path = tmp_path / "persist-schema.lock"
        write_lock(path)
        assert check_lock(path) == []

    def test_version_bump_makes_the_lock_stale(self, tmp_path, monkeypatch):
        path = tmp_path / "persist-schema.lock"
        write_lock(path)
        import repro.engine.persist as persist

        monkeypatch.setattr(persist, "SCHEMA_VERSION", persist.SCHEMA_VERSION + 1)
        problems = check_lock(path)
        assert len(problems) == 1
        assert "stale" in problems[0]

    def test_layout_drift_without_bump_fails_with_a_diff(
        self, tmp_path, monkeypatch
    ):
        materialise(FIXTURES.BASELINE, tmp_path, monkeypatch)
        path = tmp_path / "persist-schema.lock"
        write_lock(path)
        materialise(FIXTURES.DRIFT_VARIANTS["field-added"], tmp_path, monkeypatch)
        problems = check_lock(path)
        assert any("without a SCHEMA_VERSION bump" in problem for problem in problems)
        assert any("field extra added" in problem for problem in problems)


class TestSeededVariants:
    @pytest.fixture()
    def baseline_digest(self, tmp_path, monkeypatch):
        materialise(FIXTURES.BASELINE, tmp_path, monkeypatch)
        return current_fingerprint().digest

    @pytest.mark.parametrize("name", sorted(FIXTURES.DRIFT_VARIANTS))
    def test_drift_variants_change_the_fingerprint(
        self, name, baseline_digest, tmp_path, monkeypatch
    ):
        materialise(FIXTURES.DRIFT_VARIANTS[name], tmp_path, monkeypatch)
        assert current_fingerprint().digest != baseline_digest

    @pytest.mark.parametrize("name", sorted(FIXTURES.CLEAN_VARIANTS))
    def test_clean_variants_keep_the_fingerprint(
        self, name, baseline_digest, tmp_path, monkeypatch
    ):
        materialise(FIXTURES.CLEAN_VARIANTS[name], tmp_path, monkeypatch)
        assert current_fingerprint().digest == baseline_digest

    def test_variant_counts_meet_the_corpus_floor(self):
        assert len(FIXTURES.DRIFT_VARIANTS) >= 5
        assert len(FIXTURES.CLEAN_VARIANTS) >= 5


class TestDiff:
    def test_diff_reports_field_level_changes(self):
        old = {"T": {"kind": "dataclass", "fields": [["a", "int"], ["b", "str"]]}}
        new = {"T": {"kind": "dataclass", "fields": [["a", "float"], ["c", "str"]]}}
        lines = list(diff_layouts(old, new))
        assert "T: field b removed" in lines
        assert "T: field c added" in lines
        assert "T: field a retyped int -> float" in lines

    def test_diff_reports_reordering(self):
        old = {"T": {"kind": "dataclass", "fields": [["a", "int"], ["b", "str"]]}}
        new = {"T": {"kind": "dataclass", "fields": [["b", "str"], ["a", "int"]]}}
        lines = list(diff_layouts(old, new))
        assert any("field order changed" in line for line in lines)

    def test_diff_reports_reachability_changes(self):
        old = {"T": {"kind": "dataclass", "fields": []}}
        new = {"U": {"kind": "dataclass", "fields": []}}
        lines = list(diff_layouts(old, new))
        assert "T: no longer reachable from the persisted roots" in lines
        assert "U: newly reachable from the persisted roots" in lines
