"""Property-based tests for the Diophantine and linear layers."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diophantine.solver import decide_mpi, decide_mpi_via_lp
from repro.linalg.fourier_motzkin import solve_strict_system
from repro.linalg.lp_scipy import lp_feasibility
from repro.linalg.rationals import clear_denominators, normalize_integer_vector, scale_to_natural
from repro.linalg.systems import HomogeneousStrictSystem

from tests.properties.strategies import mpis, strict_rows


class TestLinearSolvers:
    @given(strict_rows(dimension=3, max_rows=4))
    @settings(max_examples=60, deadline=None)
    def test_fourier_motzkin_witnesses_always_verify(self, rows):
        system = HomogeneousStrictSystem(rows, 3)
        result = solve_strict_system(system)
        if result.feasible:
            assert system.is_solution(result.witness)

    @given(strict_rows(dimension=3, max_rows=4))
    @settings(max_examples=60, deadline=None)
    def test_positive_witnesses_are_positive(self, rows):
        system = HomogeneousStrictSystem(rows, 3)
        result = solve_strict_system(system, require_positive=True)
        if result.feasible:
            assert all(value > 0 for value in result.witness)
            assert system.is_solution(result.witness)

    @given(strict_rows(dimension=3, max_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_lp_feasible_implies_exactly_feasible(self, rows):
        """The LP fast path never claims feasibility the exact solver denies
        (when it returns an exactly-verified witness)."""
        system = HomogeneousStrictSystem(rows, 3)
        lp = lp_feasibility(system)
        exact = solve_strict_system(system)
        if lp.feasible and lp.exact:
            assert exact.feasible
        if not lp.feasible:
            # An infeasible LP verdict on these tiny integer systems matches
            # the exact answer (the margin formulation is exact up to
            # numerical noise far above the tolerance).
            assert not exact.feasible

    @given(strict_rows(dimension=2, max_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_feasibility_is_scale_invariant(self, rows):
        system = HomogeneousStrictSystem(rows, 2)
        scaled = HomogeneousStrictSystem([[3 * value for value in row] for row in rows], 2)
        assert solve_strict_system(system).feasible == solve_strict_system(scaled).feasible


class TestRationalHelpers:
    @given(st.lists(st.fractions(min_value=0, max_value=10), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_clear_denominators_preserves_direction(self, vector):
        integers = clear_denominators(vector)
        assert len(integers) == len(vector)
        # The scaled vector is a positive multiple of the original: ratios agree.
        nonzero = [(i, v) for i, v in zip(integers, vector) if v != 0]
        for (i1, v1) in nonzero:
            for (i2, v2) in nonzero:
                assert Fraction(i1) * Fraction(v2) == Fraction(i2) * Fraction(v1)

    @given(st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_normalize_keeps_signs_and_ratios(self, vector):
        normalized = normalize_integer_vector(vector)
        for original, scaled in zip(vector, normalized):
            assert (original == 0) == (scaled == 0)
            assert original * 1 >= 0 if scaled >= 0 else original < 0

    @given(st.lists(st.fractions(min_value=0, max_value=5), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_scale_to_natural_produces_naturals(self, vector):
        result = scale_to_natural(vector)
        assert all(isinstance(value, int) and value >= 0 for value in result)
        assert all((value == 0) == (component == 0) for value, component in zip(result, vector))


class TestMpiDecision:
    @given(mpis(dimension=2, max_monomials=3))
    @settings(max_examples=50, deadline=None)
    def test_solvable_decisions_carry_verified_witnesses(self, inequality):
        decision = decide_mpi(inequality)
        if decision.solvable:
            assert decision.witness is not None
            assert inequality.is_solution(decision.witness)
        else:
            assert decision.witness is None

    @given(mpis(dimension=2, max_monomials=3), st.tuples(st.integers(0, 5), st.integers(0, 5)))
    @settings(max_examples=60, deadline=None)
    def test_unsolvable_mpis_have_no_small_solutions(self, inequality, point):
        decision = decide_mpi(inequality)
        if not decision.solvable:
            assert not inequality.is_solution(point)

    @given(mpis(dimension=2, max_monomials=2))
    @settings(max_examples=30, deadline=None)
    def test_lp_and_exact_paths_agree(self, inequality):
        assert decide_mpi(inequality).solvable == decide_mpi_via_lp(inequality).solvable

    @given(mpis(dimension=3, max_monomials=3))
    @settings(max_examples=30, deadline=None)
    def test_proposition_4_1_zero_and_one_are_never_solutions(self, inequality):
        # Proposition 4.1 assumes every unknown actually occurs in the monomial
        # (which is always the case for the MPIs built from bag containment).
        if all(exponent > 0 for exponent in inequality.monomial.exponents):
            assert not inequality.is_solution((0, 0, 0))
        if not inequality.polynomial.is_zero():
            assert not inequality.is_solution((1, 1, 1))
