"""Shared hypothesis strategies for the property-based tests.

The strategies generate *small* objects on purpose: the properties being
checked (exactness of the solvers, agreement between independent code paths,
algebraic laws) do not need large instances, and small instances keep the
whole property suite fast and the shrunk counterexamples readable.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.diophantine.inequalities import MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant, Variable

__all__ = [
    "variables",
    "constants",
    "terms",
    "atoms",
    "bag_instances",
    "projection_free_queries",
    "queries_over_shared_head",
    "exponent_vectors",
    "mpis",
    "strict_rows",
]

#: A small pool of variable and constant names keeps collisions (joins) likely.
_VARIABLE_NAMES = ("x", "y", "z")
_CONSTANT_NAMES = ("a", "b")
_RELATION_NAMES = ("R", "S")


def variables() -> st.SearchStrategy[Variable]:
    return st.sampled_from([Variable(name) for name in _VARIABLE_NAMES])


def constants() -> st.SearchStrategy[Constant]:
    return st.sampled_from([Constant(name) for name in _CONSTANT_NAMES])


def terms() -> st.SearchStrategy:
    return st.one_of(variables(), constants())


def atoms(term_strategy: st.SearchStrategy | None = None) -> st.SearchStrategy[Atom]:
    if term_strategy is None:
        term_strategy = terms()
    return st.builds(
        lambda relation, first, second: Atom(relation, (first, second)),
        st.sampled_from(_RELATION_NAMES),
        term_strategy,
        term_strategy,
    )


def ground_atoms() -> st.SearchStrategy[Atom]:
    return atoms(constants())


def bag_instances(max_multiplicity: int = 4) -> st.SearchStrategy[BagInstance]:
    return st.dictionaries(
        ground_atoms(), st.integers(min_value=1, max_value=max_multiplicity), min_size=1, max_size=4
    ).map(BagInstance)


def projection_free_queries(max_atoms: int = 3, max_multiplicity: int = 2) -> st.SearchStrategy[ConjunctiveQuery]:
    """Projection-free CQs with head (x, y) and a small random body."""
    head = (Variable("x"), Variable("y"))

    def build(extra_atoms: list[Atom], multiplicities: list[int]) -> ConjunctiveQuery:
        body: dict[Atom, int] = {Atom("R", head): 1}
        for atom, multiplicity in zip(extra_atoms, multiplicities):
            body[atom] = body.get(atom, 0) + multiplicity
        return ConjunctiveQuery(head, body, name="q")

    head_terms = st.one_of(st.sampled_from(list(head)), constants())
    return st.builds(
        build,
        st.lists(atoms(head_terms), min_size=0, max_size=max_atoms - 1),
        st.lists(st.integers(min_value=1, max_value=max_multiplicity), min_size=max_atoms - 1, max_size=max_atoms - 1),
    )


def queries_over_shared_head(max_atoms: int = 3) -> st.SearchStrategy[ConjunctiveQuery]:
    """CQs with head (x, y) that may also use one existential variable z."""
    head = (Variable("x"), Variable("y"))

    def build(extra_atoms: list[Atom]) -> ConjunctiveQuery:
        body: dict[Atom, int] = {Atom("R", head): 1}
        for atom in extra_atoms:
            body[atom] = body.get(atom, 0) + 1
        return ConjunctiveQuery(head, body, name="p")

    return st.builds(build, st.lists(atoms(), min_size=0, max_size=max_atoms - 1))


def exponent_vectors(dimension: int, max_exponent: int = 4) -> st.SearchStrategy[tuple[int, ...]]:
    return st.tuples(*([st.integers(min_value=0, max_value=max_exponent)] * dimension))


def mpis(dimension: int = 2, max_monomials: int = 3) -> st.SearchStrategy[MonomialPolynomialInequality]:
    """Random small MPIs with natural coefficients."""

    def build(monomial_exponents, poly_terms) -> MonomialPolynomialInequality:
        polynomial = (
            Polynomial([Monomial(coefficient, exponents) for coefficient, exponents in poly_terms], dimension)
            if poly_terms
            else Polynomial.zero(dimension)
        )
        return MonomialPolynomialInequality(polynomial, Monomial(1, monomial_exponents))

    return st.builds(
        build,
        exponent_vectors(dimension),
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=3), exponent_vectors(dimension)),
            min_size=0,
            max_size=max_monomials,
        ),
    )


def strict_rows(dimension: int = 3, max_rows: int = 4) -> st.SearchStrategy[list[list[int]]]:
    return st.lists(
        st.lists(st.integers(min_value=-3, max_value=3), min_size=dimension, max_size=dimension),
        min_size=1,
        max_size=max_rows,
    )
