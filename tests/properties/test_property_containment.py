"""Property-based tests for the containment deciders."""

from hypothesis import given, settings

from repro.baselines.refuters import bounded_bag_refuter, check_bag
from repro.containment.set_containment import is_set_contained
from repro.core.decision import decide_via_all_probes, decide_via_most_general_probe
from repro.core.probe_tuples import most_general_probe_tuple

from tests.properties.strategies import projection_free_queries, queries_over_shared_head


class TestContainmentProperties:
    @given(projection_free_queries())
    @settings(max_examples=30, deadline=None)
    def test_every_projection_free_query_contains_itself(self, query):
        assert decide_via_most_general_probe(query, query).contained

    @given(projection_free_queries(), queries_over_shared_head())
    @settings(max_examples=40, deadline=None)
    def test_bag_containment_implies_set_containment(self, containee, containing):
        result = decide_via_most_general_probe(containee, containing)
        if result.contained:
            assert is_set_contained(containee, containing)

    @given(projection_free_queries(), queries_over_shared_head())
    @settings(max_examples=40, deadline=None)
    def test_negative_verdicts_come_with_verified_counterexamples(self, containee, containing):
        result = decide_via_most_general_probe(containee, containing)
        if not result.contained:
            assert result.counterexample is not None
            assert result.counterexample.verify(containee, containing)

    @given(projection_free_queries(), queries_over_shared_head())
    @settings(max_examples=25, deadline=None)
    def test_positive_verdicts_survive_bounded_refutation(self, containee, containing):
        result = decide_via_most_general_probe(containee, containing)
        if result.contained:
            assert not bounded_bag_refuter(containee, containing, max_multiplicity=2).refuted

    @given(projection_free_queries(), queries_over_shared_head())
    @settings(max_examples=20, deadline=None)
    def test_most_general_and_all_probe_strategies_agree(self, containee, containing):
        assert (
            decide_via_most_general_probe(containee, containing).contained
            == decide_via_all_probes(containee, containing).contained
        )

    @given(projection_free_queries(), queries_over_shared_head())
    @settings(max_examples=30, deadline=None)
    def test_conjoining_the_containee_onto_the_containing_side_preserves_containment(
        self, containee, containing
    ):
        """If q1 ⊑b q2 then q1 ⊑b itself conjoined... more precisely the
        weaker, always-true direction: q1 is contained in q1 (reflexivity)
        and containment is transitive through a shared middle query when the
        middle is the containee itself."""
        if decide_via_most_general_probe(containee, containing).contained:
            # Transitivity with reflexivity: q1 ⊑b q1 and q1 ⊑b q2.
            assert decide_via_most_general_probe(containee, containee).contained

    @given(projection_free_queries(), queries_over_shared_head())
    @settings(max_examples=25, deadline=None)
    def test_uniform_canonical_bag_never_violates_a_positive_verdict(self, containee, containing):
        result = decide_via_most_general_probe(containee, containing)
        if result.contained:
            probe = most_general_probe_tuple(containee)
            grounded = containee.ground(probe)
            from repro.relational.instances import BagInstance

            for multiplicity in (1, 2, 3):
                bag = BagInstance.uniform(grounded.body_atoms(), multiplicity)
                assert check_bag(containee, containing, probe, bag) is None
