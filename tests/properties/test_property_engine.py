"""Property tests: the compiled engine agrees with the naive reference.

Random CQ/instance pairs (and raw atom-set pairs, which also exercise
variables in the target as containment mappings do) must yield identical
results from the naive and indexed backends in all three execution modes,
and a memoising cache must never change an answer.  Together the four
properties run 300 random cases per suite execution.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineCache, IndexedBackend, get_backend
from repro.evaluation.bag_evaluation import evaluate_bag
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

from tests.properties.strategies import atoms, bag_instances, queries_over_shared_head

_EXAMPLES = 75


def atom_sets(max_size: int, term_strategy=None):
    return st.lists(atoms(term_strategy), min_size=0, max_size=max_size)


def fixed_bindings():
    variables = [Variable(name) for name in ("x", "y")]
    images = [Constant("a"), Constant("b"), Variable("z")]
    return st.dictionaries(st.sampled_from(variables), st.sampled_from(images), max_size=2)


def _multiset(substitutions) -> Counter:
    return Counter(repr(substitution) for substitution in substitutions)


class TestBackendEquivalence:
    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(source=atom_sets(3), target=atom_sets(5), fixed=fixed_bindings())
    def test_iterate_agrees_as_multisets(self, source, target, fixed):
        naive = _multiset(get_backend("naive").iterate(source, target, fixed))
        indexed = _multiset(get_backend("indexed").iterate(source, target, fixed))
        assert naive == indexed

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(source=atom_sets(3), target=atom_sets(5), fixed=fixed_bindings())
    def test_count_and_exists_agree(self, source, target, fixed):
        naive = get_backend("naive")
        indexed = get_backend("indexed")
        count = naive.count(source, target, fixed)
        assert indexed.count(source, target, fixed) == count
        assert indexed.exists(source, target, fixed) == (count > 0)

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(query=queries_over_shared_head(), bag=bag_instances())
    def test_query_evaluation_agrees_across_backends(self, query, bag):
        from repro.engine import use_backend

        with use_backend("naive"):
            expected = evaluate_bag(query, bag)
        with use_backend("indexed"):
            assert evaluate_bag(query, bag) == expected

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(source=atom_sets(3), target=atom_sets(5), fixed=fixed_bindings())
    def test_cached_and_uncached_results_agree(self, source, target, fixed):
        cold = IndexedBackend(cache=EngineCache())
        warm = IndexedBackend(cache=EngineCache())
        expected_count = cold.count(source, target, fixed)
        expected_exists = cold.exists(source, target, fixed)
        # First call populates the cache, second call must hit it.
        assert warm.count(source, target, fixed) == expected_count
        assert warm.count(source, target, fixed) == expected_count
        assert warm.exists(source, target, fixed) == expected_exists
        assert warm.exists(source, target, fixed) == expected_exists
        assert warm.cache.result_stats.hits >= 2
