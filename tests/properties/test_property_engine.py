"""Property tests: the compiled engines agree with the naive reference.

Random CQ/instance pairs (and raw atom-set pairs, which also exercise
variables in the target as containment mappings do) must yield identical
results from the naive, indexed, interned and generated backends in all
three execution modes, and a memoising cache must never change an answer.
Together the properties in :class:`TestBackendEquivalence` run 300 random
cases per suite execution; :class:`TestInternedDecisionEquivalence` adds
another 300 seeded adversarial decisions proving the interned and
generated backends are verdict-, certificate- and count-identical to the
other two across all three decision strategies.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineCache, GeneratedBackend, IndexedBackend, InternedBackend, get_backend
from repro.evaluation.bag_evaluation import evaluate_bag
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Variable

from tests.properties.strategies import atoms, bag_instances, queries_over_shared_head

_EXAMPLES = 75


def atom_sets(max_size: int, term_strategy=None):
    return st.lists(atoms(term_strategy), min_size=0, max_size=max_size)


def fixed_bindings():
    variables = [Variable(name) for name in ("x", "y")]
    images = [Constant("a"), Constant("b"), Variable("z")]
    return st.dictionaries(st.sampled_from(variables), st.sampled_from(images), max_size=2)


def _multiset(substitutions) -> Counter:
    return Counter(repr(substitution) for substitution in substitutions)


class TestBackendEquivalence:
    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(source=atom_sets(3), target=atom_sets(5), fixed=fixed_bindings())
    def test_iterate_agrees_as_multisets(self, source, target, fixed):
        naive = _multiset(get_backend("naive").iterate(source, target, fixed))
        for name in ("indexed", "interned", "generated"):
            assert _multiset(get_backend(name).iterate(source, target, fixed)) == naive, name

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(source=atom_sets(3), target=atom_sets(5), fixed=fixed_bindings())
    def test_count_and_exists_agree(self, source, target, fixed):
        naive = get_backend("naive")
        count = naive.count(source, target, fixed)
        for name in ("indexed", "interned", "generated"):
            backend = get_backend(name)
            assert backend.count(source, target, fixed) == count, name
            assert backend.exists(source, target, fixed) == (count > 0), name

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(query=queries_over_shared_head(), bag=bag_instances())
    def test_query_evaluation_agrees_across_backends(self, query, bag):
        from repro.engine import use_backend

        with use_backend("naive"):
            expected = evaluate_bag(query, bag)
        for name in ("indexed", "interned", "generated"):
            with use_backend(name):
                assert evaluate_bag(query, bag) == expected, name

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(source=atom_sets(3), target=atom_sets(5), fixed=fixed_bindings())
    def test_cached_and_uncached_results_agree(self, source, target, fixed):
        cold = IndexedBackend(cache=EngineCache())
        warm = IndexedBackend(cache=EngineCache())
        expected_count = cold.count(source, target, fixed)
        expected_exists = cold.exists(source, target, fixed)
        # First call populates the cache, second call must hit it.
        assert warm.count(source, target, fixed) == expected_count
        assert warm.count(source, target, fixed) == expected_count
        assert warm.exists(source, target, fixed) == expected_exists
        assert warm.exists(source, target, fixed) == expected_exists
        assert warm.cache.result_stats.hits >= 2
        # Same guarantee for the interned backend and its identity memo.
        for cls in (InternedBackend, GeneratedBackend):
            warm_integer = cls(cache=EngineCache())
            assert warm_integer.count(source, target, fixed) == expected_count
            assert warm_integer.count(source, target, fixed) == expected_count
            assert warm_integer.exists(source, target, fixed) == expected_exists
            assert warm_integer.cache.result_stats.hits >= 1


#: (strategy, backend) grid for the interned decision-equivalence sweep;
#: bounded-guess is covered on a seed slice to stay inside the test budget.
_DECISION_CASES = 300
_STRATEGY_GRID = ("most-general", "all-probes", "bounded-guess")


class TestInternedDecisionEquivalence:
    """300 adversarial decisions: all four backends agree, all strategies.

    Adversarial pairs (shared core, one perturbed multiplicity) are the
    regime where the decision procedures have least slack; each seed is
    decided by every backend under one strategy, rotating through the
    grid, and verdicts, certificates and encoding mapping counts must be
    identical across the four backends.
    """

    @pytest.mark.parametrize("chunk", range(10))
    def test_interned_decisions_match_other_backends(self, chunk):
        from repro.core.decision import decide_bag_containment
        from repro.engine import use_backend
        from repro.exceptions import EnumerationBudgetError
        from repro.workloads.random_queries import random_adversarial_pair

        per_chunk = _DECISION_CASES // 10
        for seed in range(chunk * per_chunk, (chunk + 1) * per_chunk):
            strategy = _STRATEGY_GRID[seed % len(_STRATEGY_GRID)]
            num_atoms = 2 if strategy == "bounded-guess" else 3
            containee, containing = random_adversarial_pair(
                seed, num_atoms=num_atoms, head_size=2
            )
            results = {}
            skipped = False
            for backend in ("naive", "indexed", "interned", "generated"):
                try:
                    with use_backend(backend):
                        results[backend] = decide_bag_containment(
                            containee, containing, strategy=strategy, max_candidates=20_000
                        )
                except EnumerationBudgetError:
                    skipped = True
                    break
            if skipped:
                continue
            context = f"seed={seed} strategy={strategy}"
            verdicts = {name: result.contained for name, result in results.items()}
            assert len(set(verdicts.values())) == 1, f"{context}: {verdicts}"
            reference = results["naive"]
            for name in ("indexed", "interned", "generated"):
                assert results[name].counterexample == reference.counterexample, (
                    f"{context}: {name} certificate diverges"
                )
                assert results[name].reason == reference.reason, context
                assert len(results[name].encodings) == len(reference.encodings), context
                for mine, theirs in zip(results[name].encodings, reference.encodings):
                    assert mine.num_mappings == theirs.num_mappings, (
                        f"{context}: {name} mapping count diverges"
                    )
