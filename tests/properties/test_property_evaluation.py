"""Property-based tests for the evaluation engines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.bag_evaluation import evaluate_bag
from repro.evaluation.bag_set_evaluation import evaluate_bag_set
from repro.evaluation.set_evaluation import evaluate_set
from repro.relational.instances import BagInstance

from tests.properties.strategies import bag_instances, projection_free_queries, queries_over_shared_head


class TestBagEvaluationProperties:
    @given(queries_over_shared_head(), bag_instances())
    @settings(max_examples=50, deadline=None)
    def test_support_of_the_bag_answer_is_the_set_answer(self, query, bag):
        bag_answer = evaluate_bag(query, bag)
        set_answer = evaluate_set(query, bag.support())
        assert bag_answer.support() == set_answer

    @given(queries_over_shared_head(), bag_instances())
    @settings(max_examples=50, deadline=None)
    def test_multiplicity_one_bags_reduce_to_bag_set_semantics(self, query, bag):
        uniform = BagInstance.uniform(bag.support(), 1)
        assert evaluate_bag(query, uniform) == evaluate_bag_set(query, bag.support())

    @given(queries_over_shared_head(), bag_instances())
    @settings(max_examples=50, deadline=None)
    def test_increasing_a_multiplicity_never_decreases_answers(self, query, bag):
        first_fact = next(iter(bag))
        bigger = bag.updated(first_fact, bag[first_fact] + 1)
        before = evaluate_bag(query, bag)
        after = evaluate_bag(query, bigger)
        assert before.is_subbag_of(after)

    @given(projection_free_queries(), bag_instances())
    @settings(max_examples=50, deadline=None)
    def test_projection_free_answers_factor_into_per_atom_powers(self, query, bag):
        """For a projection-free query each answer multiplicity is the product
        of fact multiplicities raised to the body multiplicities (there is a
        single homomorphism per answer)."""
        answers = evaluate_bag(query, bag)
        for answer, count in answers.items():
            grounded = query.ground(answer)
            expected = 1
            for atom, exponent in grounded.body.items():
                expected *= bag[atom] ** exponent
            assert count == expected

    @given(queries_over_shared_head(), bag_instances(), st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_scaling_the_bag_scales_each_answer_by_degree(self, query, bag, factor):
        """Scaling every fact multiplicity by k multiplies each homomorphism's
        contribution by k^degree; the answer multiplicity therefore scales by
        exactly k^degree because every contribution has the same total degree."""
        scaled = bag.scale(factor)
        before = evaluate_bag(query, bag)
        after = evaluate_bag(query, scaled)
        degree = query.degree()
        for answer, count in before.items():
            assert after[answer] == count * factor**degree

    @given(bag_instances())
    @settings(max_examples=40, deadline=None)
    def test_single_atom_query_returns_the_bag_itself(self, bag):
        from repro.queries.parser import parse_cq

        query = parse_cq("q(x, y) <- R(x, y)")
        answers = evaluate_bag(query, bag)
        for fact, count in bag.items():
            if fact.relation == "R":
                assert answers[fact.terms] == count
