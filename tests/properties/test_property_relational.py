"""Property-based tests for the relational substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.substitutions import Substitution, unify_tuples
from repro.relational.terms import Constant, Variable

from tests.properties.strategies import atoms, bag_instances, constants, terms, variables


class TestSubstitutionLaws:
    @given(
        st.dictionaries(variables(), terms(), max_size=3),
        st.dictionaries(variables(), terms(), max_size=3),
        atoms(),
    )
    @settings(max_examples=60, deadline=None)
    def test_composition_applies_left_then_right(self, first_map, second_map, atom):
        first, second = Substitution(first_map), Substitution(second_map)
        composed = first.compose(second)
        assert composed.apply_atom(atom) == second.apply_atom(first.apply_atom(atom))

    @given(st.dictionaries(variables(), terms(), max_size=3), atoms())
    @settings(max_examples=40, deadline=None)
    def test_identity_is_neutral_for_composition(self, mapping, atom):
        sigma = Substitution(mapping)
        identity = Substitution.identity()
        assert sigma.compose(identity).apply_atom(atom) == sigma.apply_atom(atom)
        assert identity.compose(sigma).apply_atom(atom) == sigma.apply_atom(atom)

    @given(st.dictionaries(variables(), constants(), max_size=3), atoms())
    @settings(max_examples=40, deadline=None)
    def test_ground_substitutions_are_idempotent(self, mapping, atom):
        sigma = Substitution(mapping)
        once = sigma.apply_atom(atom)
        assert sigma.apply_atom(once) == once

    @given(st.lists(st.tuples(variables(), constants()), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_unification_produces_a_unifier(self, pairs):
        pattern = tuple(variable for variable, _ in pairs)
        # Build a consistent target by always using the first constant chosen
        # for a repeated variable.
        assignment = {}
        for variable, constant in pairs:
            assignment.setdefault(variable, constant)
        target = tuple(assignment[variable] for variable in pattern)
        unifier = unify_tuples(pattern, target)
        assert unifier.apply_tuple(pattern) == target


class TestBagLaws:
    @given(bag_instances(), bag_instances())
    @settings(max_examples=50, deadline=None)
    def test_merge_sum_is_an_upper_bound(self, left, right):
        combined = left.merge_sum(right)
        assert left.is_subbag_of(combined)
        assert right.is_subbag_of(combined)
        assert combined.total_multiplicity() == left.total_multiplicity() + right.total_multiplicity()

    @given(bag_instances(), bag_instances())
    @settings(max_examples=50, deadline=None)
    def test_merge_max_is_the_least_upper_bound(self, left, right):
        combined = left.merge_max(right)
        assert left.is_subbag_of(combined)
        assert right.is_subbag_of(combined)
        for fact in combined:
            assert combined[fact] == max(left[fact], right[fact])

    @given(bag_instances())
    @settings(max_examples=40, deadline=None)
    def test_subbag_is_reflexive_and_antisymmetric(self, bag):
        assert bag.is_subbag_of(bag)
        smaller = BagInstance({fact: count - 1 for fact, count in bag.items()})
        assert smaller.is_subbag_of(bag)
        if smaller != bag:
            assert not bag.is_subbag_of(smaller)

    @given(bag_instances(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_scaling_multiplies_the_total(self, bag, factor):
        assert bag.scale(factor).total_multiplicity() == factor * bag.total_multiplicity()

    @given(bag_instances())
    @settings(max_examples=40, deadline=None)
    def test_support_round_trip(self, bag):
        assert BagInstance.uniform(bag.support(), 1).support() == bag.support()
