"""Unit tests for the brute-force refuters."""

import pytest

from repro.baselines.refuters import bounded_bag_refuter, check_bag, random_bag_refuter
from repro.core.probe_tuples import most_general_probe_tuple
from repro.exceptions import NotProjectionFreeError
from repro.queries.parser import parse_cq
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import CanonicalConstant
from repro.workloads.paper_examples import section2_q1, section2_q2


class TestCheckBag:
    def test_detects_a_known_violation(self):
        containee, containing = section2_q2(), section2_q1()
        probe = most_general_probe_tuple(containee)
        bag = BagInstance(
            {
                Atom("R", (CanonicalConstant("x1"), CanonicalConstant("x2"))): 2,
                Atom("P", (CanonicalConstant("x2"), CanonicalConstant("x2"))): 1,
            }
        )
        violation = check_bag(containee, containing, probe, bag)
        assert violation is not None
        assert violation.containee_multiplicity == 8
        assert violation.containing_multiplicity == 4

    def test_returns_none_when_no_violation(self):
        containee, containing = section2_q1(), section2_q2()
        probe = most_general_probe_tuple(containee)
        bag = BagInstance(
            {
                Atom("R", (CanonicalConstant("x1"), CanonicalConstant("x2"))): 2,
                Atom("P", (CanonicalConstant("x2"), CanonicalConstant("x2"))): 1,
            }
        )
        assert check_bag(containee, containing, probe, bag) is None


class TestBoundedRefuter:
    def test_finds_the_paper_counterexample(self):
        outcome = bounded_bag_refuter(section2_q2(), section2_q1(), max_multiplicity=2)
        assert outcome.refuted
        assert outcome.counterexample is not None
        assert outcome.counterexample.verify(section2_q2(), section2_q1())

    def test_does_not_refute_a_true_containment(self):
        outcome = bounded_bag_refuter(section2_q1(), section2_q2(), max_multiplicity=3)
        assert not outcome.refuted
        assert outcome.bags_checked == 3**2

    def test_include_zero_extends_the_search_space(self):
        with_zero = bounded_bag_refuter(
            section2_q1(), section2_q2(), max_multiplicity=2, include_zero=True
        )
        without_zero = bounded_bag_refuter(section2_q1(), section2_q2(), max_multiplicity=2)
        assert with_zero.bags_checked == 3**2 - 1
        assert without_zero.bags_checked == 2**2

    def test_all_probes_mode(self):
        containee = parse_cq("q(x) <- R(x, a)")
        containing = parse_cq("q(x) <- R(x, a), R(x, b)")
        outcome = bounded_bag_refuter(containee, containing, max_multiplicity=1, all_probes=True)
        assert outcome.refuted

    def test_requires_projection_free_containee(self):
        with pytest.raises(NotProjectionFreeError):
            bounded_bag_refuter(parse_cq("q(x) <- R(x, y)"), parse_cq("q(x) <- R(x, x)"))

    def test_incompleteness_within_a_small_bound(self):
        """The violation of q2 ⋢b q1 from Section 2 needs a fact multiplicity of
        at least 2, so a refuter capped at multiplicity 1 misses it — exactly
        the incompleteness the exact procedure does not suffer from."""
        outcome = bounded_bag_refuter(section2_q2(), section2_q1(), max_multiplicity=1)
        assert not outcome.refuted


class TestRandomRefuter:
    def test_finds_an_easy_violation(self):
        outcome = random_bag_refuter(
            section2_q2(), section2_q1(), trials=200, max_multiplicity=4, seed=7
        )
        assert outcome.refuted
        assert outcome.counterexample is not None
        assert outcome.counterexample.verify(section2_q2(), section2_q1())

    def test_never_refutes_a_true_containment(self):
        outcome = random_bag_refuter(
            section2_q1(), section2_q2(), trials=100, max_multiplicity=5, seed=11
        )
        assert not outcome.refuted
        assert outcome.bags_checked == 100

    def test_is_deterministic_for_a_fixed_seed(self):
        first = random_bag_refuter(section2_q2(), section2_q1(), trials=50, seed=3)
        second = random_bag_refuter(section2_q2(), section2_q1(), trials=50, seed=3)
        assert first.refuted == second.refuted
        assert first.bags_checked == second.bags_checked
