"""Unit tests for the decider-vs-baselines cross-check harness."""

from repro.baselines.comparison import cross_check
from repro.queries.parser import parse_cq
from repro.workloads.paper_examples import section2_q1, section2_q2, section2_q3
from repro.workloads.random_queries import random_containment_pair, random_unrelated_pair


class TestCrossCheck:
    def test_paper_pairs_are_consistent(self):
        for containee, containing in [
            (section2_q1(), section2_q2()),
            (section2_q2(), section2_q1()),
            (section2_q1(), section2_q3()),
            (section2_q2(), section2_q3()),
        ]:
            report = cross_check(containee, containing, max_multiplicity=2, random_trials=30)
            assert report.consistent
            assert report.exact.contained == (not report.bounded.refuted) or not report.exact.contained

    def test_negative_verdicts_carry_verified_counterexamples(self):
        report = cross_check(section2_q2(), section2_q1())
        assert not report.exact.contained
        assert report.exact.counterexample is not None

    def test_hand_written_pairs(self):
        pairs = [
            ("q1(x) <- R(x, x)", "q2(x) <- R(x, x), R(x, y)"),
            ("q1(x) <- R^2(x, x)", "q2(x) <- R(x, x)"),
            ("q1(x, y) <- R(x, y), S(y, x)", "q2(x, y) <- R(x, y)"),
            ("q1(x) <- R(x, a)", "q2(x) <- R(x, y)"),
        ]
        for containee_text, containing_text in pairs:
            report = cross_check(parse_cq(containee_text), parse_cq(containing_text))
            assert report.consistent

    def test_random_containment_pairs_are_consistent(self):
        for seed in range(12):
            containee, containing = random_containment_pair(seed, num_atoms=3, head_size=2)
            report = cross_check(containee, containing, max_multiplicity=2, random_trials=25)
            assert report.consistent

    def test_random_unrelated_pairs_are_consistent(self):
        for seed in range(12):
            containee, containing = random_unrelated_pair(seed, num_atoms=3, head_size=2)
            if not containee.is_projection_free():
                continue
            report = cross_check(containee, containing, max_multiplicity=2, random_trials=25)
            assert report.consistent
