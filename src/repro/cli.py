"""Command line interface: ``bagcq`` / ``python -m repro``.

Sub-commands
------------
``decide``
    Decide bag containment of a projection-free CQ into a CQ and print the
    verdict, the Diophantine encoding and — for negative answers — the
    counterexample bag.  With ``--batch PATH`` every pair of a corpus file
    (as written by ``fuzz --save-corpus``) is decided instead of one inline
    pair, and ``--jobs N`` shards the batch across worker processes
    (deterministic request-order output, see ``repro.parallel``).

``set-decide``
    Decide classic set containment (Chandra–Merlin).

``evaluate``
    Evaluate a query under bag semantics on a bag instance given as
    ``R(a,b)=3`` fact/multiplicity pairs.

``encode``
    Print the monomial–polynomial inequality associated with a containment
    instance at the most-general probe tuple, without deciding it.

``compare``
    Compare two queries under both semantics in both directions and print
    the rewrite-safety verdict (``repro.core.spectrum``).

``fuzz``
    Run a differential fuzz campaign (``repro.verify``): generated and
    metamorphically-mutated pairs are pushed through every decision
    strategy, engine backend and Diophantine path; disagreements are
    shrunk to minimal reproducers.  ``--save-corpus`` persists the
    campaign for deterministic replay, ``--replay`` re-checks a corpus,
    ``--backends``/``--strategies`` restrict the differential axes, and
    ``--verify-plans`` soundness-verifies every compiled plan and
    generated function online (``repro.analysis``).

``chaos``
    Run a seeded fault-injection campaign (``repro.faults.chaos``): the
    request stream is decided once fault-free (the oracle) and once with
    injected persist failures, worker crashes/hangs and admission latency
    under a per-request deadline, then every outcome is checked to be
    correct-per-oracle or *explicitly* degraded — never silently wrong.

``lint``
    Run the repro-specific static checks (``repro.analysis.lint``) over
    source trees: the syntactic rules (determinism hazards in the
    fingerprint/serialisation paths, mutable defaults, unsanctioned
    global state, internal shim calls, bare excepts) plus the
    flow-sensitive dataflow analyzers.  ``--check`` is the quiet CI mode
    (a timing line goes to stderr); suppressions require a justification.

``analyze``
    Run only the flow-sensitive dataflow analyzers
    (``repro.analysis.taint`` / ``repro.analysis.forksafety``) plus the
    persist-schema lock check (``repro.analysis.schema_lock``).
    ``--explain NAME`` prints a rule's full rationale, and
    ``--write-schema-lock`` regenerates ``persist-schema.lock`` after a
    deliberate ``SCHEMA_VERSION`` bump.

``profile``
    Run a named workload from :mod:`repro.workloads.scale` under
    ``cProfile`` and print the top cumulative hot spots — so perf work
    starts from measurements, not guesses.  ``--backend NAME`` profiles a
    specific engine backend (shorthand for the global ``--engine-backend``).

Queries are written in the datalog syntax of :mod:`repro.queries.parser`,
e.g. ``"q(x1,x2) <- R^2(x1,y1), P(x2,y1)"``.

Every command runs through one :class:`repro.session.Session` built for the
invocation: the global options pick its engine backend
(``--engine-backend``; the compiled indexed engine is the default) and
print its engine-cache statistics after the command (``--engine-stats``),
which is how the benchmarks A/B the backends.  Backends and strategies
registered through :mod:`repro.session.registry` before parser construction
appear in the respective choice lists automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.decision import strategy_names
from repro.engine import backend_names
from repro.exceptions import CliError, ReproError
from repro.queries.parser import parse_atom, parse_cq
from repro.queries.printer import format_answer_bag, format_bag_instance, format_query
from repro.relational.instances import BagInstance
from repro.session import ContainmentRequest, EvaluationRequest, Limits, MpiRequest, Session
from repro.verify.corpus import replay_corpus, save_corpus
from repro.verify.oracles import OracleConfig
from repro.verify.runner import CampaignConfig, campaign_corpus

__all__ = ["main", "build_parser"]


def _jobs_value(value: str) -> "int | str":
    """Parse a ``--jobs`` argument: a positive int or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive int or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("jobs must be at least 1")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser of the ``bagcq`` command."""
    parser = argparse.ArgumentParser(
        prog="bagcq",
        description="Bag containment of projection-free conjunctive queries (PODS 2019 reproduction).",
    )
    parser.add_argument(
        "--engine-backend",
        choices=backend_names(),
        default="indexed",
        help="homomorphism engine backend (default: indexed)",
    )
    parser.add_argument(
        "--engine-stats",
        action="store_true",
        help="print engine cache statistics after the command",
    )
    parser.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="per-request wall-clock budget; requests that exceed it return an "
        "honest degraded outcome instead of an answer (default: no deadline)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decide = subparsers.add_parser("decide", help="decide bag containment q1 ⊑b q2")
    decide.add_argument(
        "containee", nargs="?", default=None, help="the projection-free containee query q1"
    )
    decide.add_argument("containing", nargs="?", default=None, help="the containing query q2")
    decide.add_argument(
        "--strategy",
        choices=strategy_names(),
        default="most-general",
        help="decision strategy",
    )
    decide.add_argument("--lp", action="store_true", help="use the scipy LP fast path")
    decide.add_argument("--verbose", action="store_true", help="print the full encoding")
    decide.add_argument(
        "--batch",
        metavar="PATH",
        default=None,
        help="decide every pair of a corpus file (fuzz --save-corpus format) instead of one inline pair",
    )
    decide.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        help="worker processes for --batch (1 = inline; 'auto' = one per core; "
        "results stay in request order)",
    )
    decide.add_argument(
        "--persist",
        metavar="PATH",
        default=None,
        help="back the session cache with a disk store at PATH (plans and "
        "verdicts warm across runs; workers share the store)",
    )

    set_decide = subparsers.add_parser("set-decide", help="decide set containment q1 ⊑s q2")
    set_decide.add_argument("containee", help="the containee query q1")
    set_decide.add_argument("containing", help="the containing query q2")

    evaluate = subparsers.add_parser("evaluate", help="evaluate a query under bag semantics")
    evaluate.add_argument("query", help="the query to evaluate")
    evaluate.add_argument(
        "facts",
        nargs="+",
        help="facts with multiplicities, e.g. 'R(a,b)=3' (multiplicity defaults to 1)",
    )

    encode = subparsers.add_parser(
        "encode", help="print the MPI encoding at the most-general probe tuple"
    )
    encode.add_argument("containee", help="the projection-free containee query q1")
    encode.add_argument("containing", help="the containing query q2")

    compare_parser = subparsers.add_parser(
        "compare", help="compare two queries under set and bag semantics, both directions"
    )
    compare_parser.add_argument("left", help="the first query")
    compare_parser.add_argument("right", help="the second query")

    fuzz = subparsers.add_parser(
        "fuzz", help="run a differential fuzz campaign over all decision paths"
    )
    fuzz.add_argument("--cases", type=int, default=200, help="number of generated cases")
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        help="worker processes (1 = inline; 'auto' = one per core)",
    )
    fuzz.add_argument(
        "--strategies",
        default=",".join(strategy_names()),
        help="comma-separated decision strategies to differential-test "
        f"(default: {','.join(strategy_names())})",
    )
    fuzz.add_argument(
        "--backends",
        default=",".join(backend_names()),
        help="comma-separated engine backends to differential-test "
        f"(default: {','.join(backend_names())})",
    )
    fuzz.add_argument(
        "--mutation-rate",
        type=float,
        default=0.5,
        help="probability of applying a metamorphic mutation per case",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None, help="stop after this many seconds"
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="do not minimize failing pairs"
    )
    fuzz.add_argument(
        "--save-corpus", metavar="PATH", default=None, help="persist the campaign as a corpus"
    )
    fuzz.add_argument(
        "--replay", metavar="PATH", default=None, help="replay a saved corpus instead of fuzzing"
    )
    fuzz.add_argument(
        "--persist",
        metavar="PATH",
        default=None,
        help="back the session cache with a disk store at PATH "
        "(campaign and replay decisions warm across runs)",
    )
    fuzz.add_argument(
        "--verify-plans",
        action="store_true",
        help="soundness-verify every compiled plan and AST-verify every "
        "generated function during the campaign (repro.analysis)",
    )

    lint = subparsers.add_parser(
        "lint", help="run the repro-specific AST lint rules over source trees"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--check",
        action="store_true",
        help="CI mode: print nothing on success, exit 1 on any finding",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list the available rules and exit"
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="run the flow-sensitive dataflow analyzers and the persist-schema lock check",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: the installed repro package)",
    )
    analyze.add_argument(
        "--check",
        action="store_true",
        help="CI mode: print nothing on success, exit 1 on any finding",
    )
    analyze.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this analyzer (repeatable)",
    )
    analyze.add_argument(
        "--explain",
        metavar="NAME",
        default=None,
        help="print the full rationale of one rule or analyzer and exit",
    )
    analyze.add_argument(
        "--list-rules", action="store_true", help="list the available analyzers and exit"
    )
    analyze.add_argument(
        "--schema-lock",
        metavar="PATH",
        default="persist-schema.lock",
        help="location of the committed schema lock (default: ./persist-schema.lock)",
    )
    analyze.add_argument(
        "--write-schema-lock",
        action="store_true",
        help="regenerate the schema lock from the running code and exit "
        "(commit the result alongside a SCHEMA_VERSION bump)",
    )
    analyze.add_argument(
        "--no-schema-lock",
        action="store_true",
        help="skip the persist-schema lock check (dataflow analyzers only)",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or maintain a persistent cache store"
    )
    cache.add_argument(
        "action", choices=("info", "vacuum", "clear"), help="maintenance action"
    )
    cache.add_argument("path", help="the store file (as passed to --persist)")
    cache.add_argument(
        "--prune-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="with vacuum: first drop entries not accessed in DAYS days",
    )
    cache.add_argument(
        "--prune-lru",
        type=int,
        default=None,
        metavar="N",
        help="with vacuum: first drop least-recently-accessed entries beyond N",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign and check every outcome "
        "against a fault-free oracle",
    )
    chaos.add_argument("--cases", type=int, default=200, help="number of requests")
    chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    chaos.add_argument(
        "--schedule",
        choices=("persist", "worker", "deadline", "mixed"),
        default="mixed",
        help="which fault families to arm (default: mixed)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=2, help="worker processes for the faulted run"
    )
    chaos.add_argument(
        "--chunk-size", type=int, default=4, help="requests per worker shard"
    )
    chaos.add_argument(
        "--task-timeout",
        type=float,
        default=30.0,
        help="seconds before a hung worker shard is recovered (default: 30)",
    )

    profile = subparsers.add_parser(
        "profile", help="profile a named scale workload under cProfile"
    )
    profile.add_argument(
        "workload",
        choices=("mixed", "acyclic", "chain", "star"),
        help="workload family from repro.workloads.scale",
    )
    profile.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="engine backend to profile (overrides the global --engine-backend)",
    )
    profile.add_argument("--cases", type=int, default=100, help="number of pairs to decide")
    profile.add_argument("--seed", type=int, default=0, help="workload seed")
    profile.add_argument(
        "--top", type=int, default=20, help="how many cumulative hot spots to print"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )

    return parser


def _parse_bag(fact_specs: Sequence[str]) -> BagInstance:
    counts = {}
    for spec in fact_specs:
        if "=" in spec:
            atom_text, _, multiplicity_text = spec.rpartition("=")
            try:
                multiplicity = int(multiplicity_text)
            except ValueError as exc:
                raise CliError(f"invalid multiplicity in {spec!r}") from exc
        else:
            atom_text, multiplicity = spec, 1
        atom, _ = parse_atom(atom_text)
        if not atom.is_ground:
            raise CliError(f"facts must be ground, got {atom}")
        counts[atom] = counts.get(atom, 0) + multiplicity
    return BagInstance(counts)


def _run_decide(args: argparse.Namespace, session: Session) -> int:
    if args.batch is not None:
        return _run_decide_batch(args, session)
    if args.containee is None or args.containing is None:
        raise CliError("decide needs two inline queries (or --batch PATH)")
    containee = parse_cq(args.containee)
    containing = parse_cq(args.containing)
    outcome = session.decide(
        containee,
        containing,
        strategy=args.strategy,
        diophantine_path="lp" if args.lp else "exact",
    )
    result = outcome.value
    print(result.explain())
    if args.verbose and result.encodings:
        print()
        print(result.encodings[-1].describe())
    return 0 if outcome.verdict else 1


def _run_decide_batch(args: argparse.Namespace, session: Session) -> int:
    if args.containee is not None or args.containing is not None:
        raise CliError("--batch replaces the inline queries; pass either, not both")
    from repro.session import ContainmentRequest
    from repro.verify.corpus import load_corpus

    from repro.parallel import resolve_jobs

    entries = load_corpus(args.batch)
    requests = [
        ContainmentRequest(
            entry.containee,
            entry.containing,
            strategy=args.strategy,
            diophantine_path="lp" if args.lp else "exact",
        )
        for entry in entries
    ]
    # Resolve up front (rather than letting session.batch do it) so the
    # summary line reports what actually ran: on a single-core box
    # --jobs auto falls back to the serial path, and the committed record
    # should say jobs=1, not echo the flag.
    jobs = resolve_jobs(args.jobs)
    errors = 0
    contained = 0
    degraded = 0
    outcomes = session.batch(requests, capture_errors=True, jobs=jobs)
    for entry, outcome in zip(entries, outcomes):
        if outcome.degraded is not None:
            degraded += 1
            detail = f": {outcome.error}" if outcome.error is not None else ""
            print(f"{entry.case_id}: degraded ({outcome.degraded}){detail}")
            continue
        if outcome.error is not None:
            errors += 1
            print(f"{entry.case_id}: error {outcome.error}")
            continue
        verdict = "contained" if outcome.verdict else "not contained"
        certified = " (certified)" if outcome.certificate is not None else ""
        contained += bool(outcome.verdict)
        print(f"{entry.case_id}: {verdict}{certified} [{outcome.elapsed * 1000:.1f}ms]")
    # The zero-degraded summary stays byte-identical to earlier releases:
    # the warm-start CI job diffs cold vs warm stdout.
    undecided = len(requests) - contained - errors - degraded
    degraded_part = f"{degraded} degraded, " if degraded else ""
    print(
        f"batch {args.batch}: {len(requests)} pairs, {contained} contained, "
        f"{undecided} not contained, {degraded_part}{errors} errors "
        f"[jobs={jobs}]"
    )
    return 0 if errors == 0 else 1


def _run_set_decide(args: argparse.Namespace, session: Session) -> int:
    containee = parse_cq(args.containee)
    containing = parse_cq(args.containing)
    outcome = session.decide(containee, containing, semantics="set")
    print(outcome.value.explain())
    return 0 if outcome.verdict else 1


def _run_evaluate(args: argparse.Namespace, session: Session) -> int:
    query = parse_cq(args.query)
    bag = _parse_bag(args.facts)
    answers = session.evaluate(EvaluationRequest(query, bag)).value
    print(f"query: {format_query(query)}")
    print(f"bag:   {format_bag_instance(bag)}")
    print(f"answer: {format_answer_bag(answers.items())}")
    return 0


def _run_encode(args: argparse.Namespace, session: Session) -> int:
    containee = parse_cq(args.containee)
    containing = parse_cq(args.containing)
    encoding = session.mpi(MpiRequest(containee, containing)).value
    print(encoding.describe())
    return 0


def _run_compare(args: argparse.Namespace, session: Session) -> int:
    outcome = session.containment_spectrum(parse_cq(args.left), parse_cq(args.right))
    print(outcome.value.describe())
    return 0 if outcome.verdict else 1


def _run_fuzz(args: argparse.Namespace, session: Session) -> int:
    strategies = tuple(name.strip() for name in args.strategies.split(",") if name.strip())
    backends = tuple(name.strip() for name in args.backends.split(",") if name.strip())

    if args.replay is not None:
        if args.save_corpus is not None:
            raise CliError("--save-corpus cannot be combined with --replay")
        failures = replay_corpus(args.replay, OracleConfig(strategies=strategies, backends=backends))
        if not failures:
            print(f"corpus {args.replay}: all entries replay clean")
            return 0
        print(f"corpus {args.replay}: {len(failures)} entries FAILED")
        for entry, report in failures:
            print(f"  {entry.case_id} ({entry.origin}):")
            for discrepancy in report.discrepancies:
                print(f"    {discrepancy.describe()}")
        return 1

    from repro.parallel import resolve_jobs

    config = CampaignConfig(
        cases=args.cases,
        seed=args.seed,
        jobs=resolve_jobs(args.jobs),
        strategies=strategies,
        backends=backends,
        mutation_rate=args.mutation_rate,
        shrink_failures=not args.no_shrink,
        time_budget=args.time_budget,
        debug_verify_plans=args.verify_plans,
        deadline_ms=args.deadline_ms,
    )
    report = session.fuzz(config=config).value
    print(report.describe())
    if args.save_corpus is not None:
        path = save_corpus(campaign_corpus(report), args.save_corpus)
        print(f"corpus saved to {path} ({report.cases_run} entries)")
    return 0 if report.ok else 1


def _run_lint(args: argparse.Namespace, session: Session) -> int:
    """Run the AST lint rules (``lint [--check] [--rule NAME] [PATHS]``)."""
    from pathlib import Path

    from repro.analysis.lint import default_rules, lint_paths_timed

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = f" [{', '.join(rule.scope)}]" if rule.scope else ""
            print(f"{rule.name:<24} {rule.summary}{scope}")
        return 0
    if args.rule:
        wanted = set(args.rule)
        known = {rule.name for rule in rules}
        unknown = wanted - known
        if unknown:
            raise CliError(
                f"unknown lint rule(s) {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(known))}"
            )
        rules = tuple(rule for rule in rules if rule.name in wanted)
    paths = [Path(path) for path in args.paths] if args.paths else None
    findings, stats = lint_paths_timed(paths, rules)
    for finding in findings:
        print(finding.describe())
    if not findings and not args.check:
        print("no lint findings")
    # Timing goes to stderr so --check stays silent on stdout for CI logs.
    print(stats.describe(), file=sys.stderr if args.check else sys.stdout)
    return 1 if findings else 0


def _run_analyze(args: argparse.Namespace, session: Session) -> int:
    """Run the dataflow analyzers and schema-lock check (``analyze ...``)."""
    from pathlib import Path

    from repro.analysis.lint import lint_paths_timed
    from repro.analysis.rules import ALL_RULES, ANALYZER_RULES
    from repro.analysis.schema_lock import check_lock, write_lock

    if args.explain is not None:
        matches = [rule for rule in ALL_RULES if rule.name == args.explain]
        if not matches:
            raise CliError(
                f"unknown rule {args.explain!r}; known rules: "
                f"{', '.join(sorted(rule.name for rule in ALL_RULES))}"
            )
        rule = matches[0]
        print(f"{rule.name}: {rule.summary}")
        if rule.scope:
            print(f"scope: {', '.join(rule.scope)}")
        print()
        print(rule.explanation or "(no extended rationale recorded)")
        return 0
    if args.write_schema_lock:
        fingerprint = write_lock(args.schema_lock)
        print(
            f"schema lock written to {args.schema_lock} "
            f"(SCHEMA_VERSION {fingerprint.schema_version}, "
            f"{len(fingerprint.types)} types, digest {fingerprint.digest[:16]}…)"
        )
        return 0
    rules = ANALYZER_RULES
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name:<24} {rule.summary}")
        return 0
    if args.rule:
        wanted = set(args.rule)
        known = {rule.name for rule in rules}
        unknown = wanted - known
        if unknown:
            raise CliError(
                f"unknown analyzer(s) {', '.join(sorted(unknown))}; "
                f"known analyzers: {', '.join(sorted(known))}"
            )
        rules = tuple(rule for rule in rules if rule.name in wanted)
    paths = [Path(path) for path in args.paths] if args.paths else None
    findings, stats = lint_paths_timed(paths, rules)
    for finding in findings:
        print(finding.describe())
    problems = [] if args.no_schema_lock else check_lock(args.schema_lock)
    for problem in problems:
        print(f"persist-schema: {problem}")
    failed = bool(findings) or bool(problems)
    if not failed and not args.check:
        print("no analyzer findings; persist-schema lock matches")
    print(stats.describe(), file=sys.stderr if args.check else sys.stdout)
    return 1 if failed else 0


def _run_cache(args: argparse.Namespace, session: Session) -> int:
    """Maintain a persistent store (``cache info|vacuum|clear PATH``)."""
    import os

    from repro.engine.persist import PersistentCache

    if not os.path.exists(args.path):
        # Clean diagnostic (no traceback) for every action: info on a
        # missing path would otherwise create an empty store just to
        # describe it.
        raise CliError(f"no persistent store at {args.path}")
    if args.action != "vacuum" and (
        args.prune_age is not None or args.prune_lru is not None
    ):
        raise CliError("--prune-age/--prune-lru only apply to the vacuum action")
    store = PersistentCache(args.path)
    try:
        if args.action == "info":
            info = store.info()
            print(f"store:   {info['path']} ({info['status']})")
            print(f"size:    {info['file_bytes']} bytes")
            print(f"entries: {info['entries']}")
            for layer, count in sorted(info["layers"].items()):
                print(f"  {layer:<8} {count}")
            print(f"schemas:  {', '.join(str(s) for s in info['schemas']) or '-'}")
            print(f"backends: {', '.join(info['backends']) or '-'}")
            breaker = info["breaker"]
            print(
                f"breaker:  {breaker['state']} "
                f"({breaker['opens']} opens, {breaker['half_opens']} half-opens, "
                f"{breaker['closes']} closes)"
            )
            if info["status"] != "ok":
                print(
                    f"store is {info['status']}: the file is missing, locked or "
                    "corrupt; sessions fall back to in-memory caching",
                    file=sys.stderr,
                )
            return 0 if info["status"] == "ok" else 1
        if args.action == "vacuum":
            pruned = 0
            if args.prune_age is not None:
                pruned += store.prune_age(args.prune_age)
            if args.prune_lru is not None:
                pruned += store.prune_lru(args.prune_lru)
            ok = store.vacuum()
            summary = f"{pruned} entries pruned, " if pruned else ""
            print(f"store {args.path}: {summary}{'vacuumed' if ok else 'vacuum FAILED'}")
            return 0 if ok else 1
        dropped = store.clear()
        store.vacuum()
        print(f"store {args.path}: {dropped} entries cleared")
        return 0
    finally:
        store.close()


def _run_chaos(args: argparse.Namespace, session: Session) -> int:
    """Run a fault-injection campaign (``chaos [--schedule ...]``).

    The campaign builds its own sessions (a fault-free oracle and a faulted
    run over a scratch store), so the invocation session is unused.
    """
    from repro.faults.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        cases=args.cases,
        seed=args.seed,
        schedule=args.schedule,
        jobs=args.jobs,
        backend=args.engine_backend,
        chunk_size=args.chunk_size,
        task_timeout=args.task_timeout,
        deadline_ms=args.deadline_ms,
    )
    report = run_chaos(config)
    print(report.describe())
    return 0 if report.ok else 1


def _profile_requests(args: argparse.Namespace) -> list[ContainmentRequest]:
    from repro.workloads import scale

    if args.workload == "mixed":
        return scale.mixed_requests(args.cases, seed=args.seed, verify_certificates=False)
    families = {
        "acyclic": scale.acyclic_pair_family,
        "chain": scale.chain_pair_family,
        "star": scale.star_pair_family,
    }
    pairs = families[args.workload](args.cases, seed=args.seed)
    return [
        ContainmentRequest(containee, containing, verify_certificates=False)
        for containee, containing in pairs
    ]


def _run_profile(args: argparse.Namespace, session: Session) -> int:
    """Decide a scale workload under cProfile and print the hot spots.

    The requests run through the invocation's session (so
    ``--engine-backend`` selects what is being profiled) with errors
    captured — a handful of random pairs exceeding the exact solver's row
    cap must not abort the measurement.
    """
    import cProfile
    import io
    import pstats
    import time as _time

    requests = _profile_requests(args)
    profiler = cProfile.Profile()
    started = _time.perf_counter()
    profiler.enable()
    outcomes = list(session.batch(requests, capture_errors=True))
    profiler.disable()
    elapsed = _time.perf_counter() - started

    errors = sum(1 for outcome in outcomes if outcome.error is not None)
    contained = sum(1 for outcome in outcomes if outcome.verdict)
    print(
        f"profiled {len(outcomes)} '{args.workload}' decisions on the "
        f"{session.backend_name} backend in {elapsed:.2f}s "
        f"({contained} contained, {errors} errors)"
    )
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue().rstrip())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``bagcq`` console script and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "decide": _run_decide,
        "set-decide": _run_set_decide,
        "evaluate": _run_evaluate,
        "encode": _run_encode,
        "compare": _run_compare,
        "fuzz": _run_fuzz,
        "lint": _run_lint,
        "analyze": _run_analyze,
        "cache": _run_cache,
        "chaos": _run_chaos,
        "profile": _run_profile,
    }
    backend_name = getattr(args, "backend", None) or args.engine_backend
    limits = Limits(deadline_ms=args.deadline_ms) if args.deadline_ms else None
    session = Session(
        backend=backend_name,
        name="cli",
        persist_path=getattr(args, "persist", None),
        limits=limits,
    )
    try:
        with session.activate():
            return handlers[args.command](args, session)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if session.persistent is not None:
            # Stats go to stderr so stdout stays byte-comparable between
            # cold and warm runs (the CI smoke job diffs it).
            print(f"persist  {session.persistent.stats.describe()}", file=sys.stderr)
        session.close()
        if args.engine_stats:
            print("engine cache statistics (session cache, this command only):")
            if backend_name == "naive":
                print("  note: this run used the naive backend, which bypasses the cache")
            for line in session.cache.describe().splitlines():
                print(f"  {line}")
            backend = session.backend
            if hasattr(backend, "describe_selectivity"):
                print("per-signature selectivity (probes / candidates returned):")
                for line in backend.describe_selectivity().splitlines():
                    print(f"  {line}")
            if hasattr(backend, "describe_replanning"):
                print("adaptive replanning:")
                print(f"  {backend.describe_replanning()}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
