"""Homogeneous strict linear inequality systems ``A·ε > 0``.

Theorem 4.1 reduces the solvability of an n-MPI to the existence of a
*natural* solution of the homogeneous system ``{(e − e_i)ᵀ·ε > 0}``.  A
natural (non-negative integer) solution exists iff the system together with
the component-wise strict positivity constraints ``ε_j > 0`` is feasible
over the rationals:

* if a natural solution ``d ≥ 0`` exists then, because all constraints are
  strict and finitely many, the perturbed vector ``d + δ·1`` still satisfies
  them for a small enough rational ``δ > 0`` and is component-wise positive;
* conversely a positive rational solution scales (lcm of denominators) to a
  positive — hence natural — integer solution.

:class:`HomogeneousStrictSystem` therefore stores only strict rows, and the
solvers in :mod:`repro.linalg.fourier_motzkin` and
:mod:`repro.linalg.lp_scipy` decide feasibility either of the rows alone or
of the rows plus positivity, as requested.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Iterable, Iterator, Sequence

from repro.exceptions import DimensionMismatchError, LinearSystemError
from repro.linalg.rationals import as_fraction_vector, dot

__all__ = ["HomogeneousStrictSystem"]


class HomogeneousStrictSystem:
    """An immutable system of strict homogeneous inequalities ``row · ε > 0``."""

    __slots__ = ("_rows", "_dimension", "_integer_rows")

    def __init__(self, rows: Iterable[Sequence[object]], dimension: int | None = None) -> None:
        converted: list[tuple[Fraction, ...]] = [as_fraction_vector(row) for row in rows]
        if dimension is None:
            if not converted:
                raise LinearSystemError(
                    "an empty system needs an explicit dimension"
                )
            dimension = len(converted[0])
        if dimension < 0:
            raise LinearSystemError(f"dimension must be non-negative, got {dimension}")
        for row in converted:
            if len(row) != dimension:
                raise DimensionMismatchError(
                    f"row {row} has {len(row)} components, expected {dimension}"
                )
        self._rows: tuple[tuple[Fraction, ...], ...] = tuple(converted)
        self._dimension = dimension
        # gcd-normalised at construction: every integer row is primitive, so
        # the integer fast path of is_solution multiplies the smallest
        # possible coefficients no matter how non-reduced the input was.
        scaled: list[tuple[int, ...]] = []
        for row in self._rows:
            multiplier = lcm(*(coefficient.denominator for coefficient in row)) if row else 1
            integers = [int(coefficient * multiplier) for coefficient in row]
            divisor = 0
            for value in integers:
                divisor = gcd(divisor, value)
            if divisor > 1:
                integers = [value // divisor for value in integers]
            scaled.append(tuple(integers))
        self._integer_rows: tuple[tuple[int, ...], ...] = tuple(scaled)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> tuple[tuple[Fraction, ...], ...]:
        """The rows of the system, as tuples of fractions."""
        return self._rows

    @property
    def dimension(self) -> int:
        """Number of unknowns ``ε_j``."""
        return self._dimension

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Fraction, ...]]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HomogeneousStrictSystem):
            return NotImplemented
        return self._rows == other._rows and self._dimension == other._dimension

    def __hash__(self) -> int:
        return hash((self._rows, self._dimension))

    def __repr__(self) -> str:
        return f"HomogeneousStrictSystem({len(self._rows)} rows, dimension {self._dimension})"

    # ------------------------------------------------------------------ #
    # Derived systems
    # ------------------------------------------------------------------ #
    def with_positivity(self) -> "HomogeneousStrictSystem":
        """The system augmented with the rows ``ε_j > 0`` for every unknown."""
        identity_rows = []
        for j in range(self._dimension):
            row = [Fraction(0)] * self._dimension
            row[j] = Fraction(1)
            identity_rows.append(tuple(row))
        return HomogeneousStrictSystem(list(self._rows) + identity_rows, self._dimension)

    def restricted_to(self, row_indices: Iterable[int]) -> "HomogeneousStrictSystem":
        """The sub-system containing only the selected rows."""
        wanted = sorted(set(row_indices))
        return HomogeneousStrictSystem([self._rows[i] for i in wanted], self._dimension)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def slack(self, vector: Sequence[object]) -> tuple[Fraction, ...]:
        """The values ``row · vector`` for every row."""
        return tuple(dot(row, vector) for row in self._rows)

    def integer_rows(self) -> tuple[tuple[int, ...], ...]:
        """Each row as a primitive integer vector (computed at construction).

        Every row is scaled by the (positive) lcm of its denominators and
        divided by the gcd of the results.  Scaling a row by a positive
        rational preserves the sign of its dot product with any vector, so
        these rows decide ``row · ε > 0`` with the smallest possible pure
        machine-integer arithmetic — the hot path of the bounded-guess
        vector enumeration and of the exact Fourier–Motzkin core — even
        when the system was built from non-reduced rational input.
        """
        return self._integer_rows

    def is_solution(self, vector: Sequence[object]) -> bool:
        """``True`` when every row evaluates to a strictly positive value."""
        if len(vector) != self._dimension:
            raise DimensionMismatchError(
                f"vector of size {len(vector)} supplied to a system of dimension {self._dimension}"
            )
        if all(type(component) is int for component in vector):
            for row in self.integer_rows():
                total = 0
                for coefficient, component in zip(row, vector):
                    if coefficient:
                        total += coefficient * component
                if total <= 0:
                    return False
            return True
        return all(value > 0 for value in self.slack(vector))

    def violated_rows(self, vector: Sequence[object]) -> list[int]:
        """Indices of rows with non-positive value under *vector*."""
        return [index for index, value in enumerate(self.slack(vector)) if value <= 0]

    def max_coefficient_sum(self) -> Fraction:
        """``max_i Σ_j a_{i,j}`` — the quantity φ of Lemma 5.1 (with zero constants)."""
        if not self._rows:
            return Fraction(0)
        return max(sum(row, Fraction(0)) for row in self._rows)
