"""Small exact-arithmetic helpers used by the linear and Diophantine layers.

Everything that decides containment works over :class:`fractions.Fraction`
so answers are exact; these helpers convert between rational and integer
vectors (clearing denominators with the lcm, as in the proof of
Theorem 4.1) and normalise vectors by their gcd to keep numbers small.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Iterable, Sequence

from repro.exceptions import DimensionMismatchError

__all__ = [
    "as_fraction_vector",
    "clear_denominators",
    "normalize_integer_vector",
    "dot",
    "is_zero_vector",
    "scale_to_natural",
]


def as_fraction_vector(vector: Iterable[object]) -> tuple[Fraction, ...]:
    """Coerce every component of *vector* to an exact :class:`Fraction`."""
    return tuple(Fraction(component) for component in vector)


def dot(left: Sequence[object], right: Sequence[object]) -> Fraction:
    """Exact dot product of two equally-sized vectors."""
    if len(left) != len(right):
        raise DimensionMismatchError(
            f"cannot take the dot product of vectors of sizes {len(left)} and {len(right)}"
        )
    total = Fraction(0)
    for a, b in zip(left, right):
        total += Fraction(a) * Fraction(b)
    return total


def is_zero_vector(vector: Sequence[object]) -> bool:
    """``True`` when every component is zero."""
    return all(Fraction(component) == 0 for component in vector)


def clear_denominators(vector: Sequence[Fraction]) -> tuple[int, ...]:
    """Scale a rational vector by the lcm of its denominators to an integer vector.

    This is exactly the step in the proof of Theorem 4.1 that turns a
    rational solution ``q`` of the homogeneous system into the integer
    solution ``d = b·q`` with ``b = lcm`` of the denominators.
    """
    fractions = as_fraction_vector(vector)
    if not fractions:
        return ()
    denominator_lcm = 1
    for component in fractions:
        denominator_lcm = lcm(denominator_lcm, component.denominator)
    return tuple(int(component * denominator_lcm) for component in fractions)


def normalize_integer_vector(vector: Sequence[int]) -> tuple[int, ...]:
    """Divide an integer vector by the gcd of its components (gcd of 0-vector is 1)."""
    values = tuple(int(component) for component in vector)
    divisor = 0
    for component in values:
        divisor = gcd(divisor, abs(component))
    if divisor <= 1:
        return values
    return tuple(component // divisor for component in values)


def scale_to_natural(vector: Sequence[Fraction]) -> tuple[int, ...]:
    """Turn a non-negative rational vector into a non-negative integer vector.

    Combines :func:`clear_denominators` and :func:`normalize_integer_vector`
    and checks non-negativity.
    """
    integers = normalize_integer_vector(clear_denominators(vector))
    if any(component < 0 for component in integers):
        raise DimensionMismatchError(
            f"expected a non-negative vector, got {integers}"
        )
    return integers
