"""Exact and LP-based solvers for homogeneous strict linear inequality systems."""

from repro.linalg.fourier_motzkin import (
    DEFAULT_ROW_CAP,
    FeasibilityResult,
    feasibility_witness,
    is_feasible,
    solve_strict_system,
)
from repro.linalg.lp_scipy import LpFeasibility, lp_feasibility, lp_witness
from repro.linalg.rationals import (
    as_fraction_vector,
    clear_denominators,
    dot,
    is_zero_vector,
    normalize_integer_vector,
    scale_to_natural,
)
from repro.linalg.systems import HomogeneousStrictSystem

__all__ = [
    "DEFAULT_ROW_CAP",
    "FeasibilityResult",
    "HomogeneousStrictSystem",
    "LpFeasibility",
    "as_fraction_vector",
    "clear_denominators",
    "dot",
    "feasibility_witness",
    "is_feasible",
    "is_zero_vector",
    "lp_feasibility",
    "lp_witness",
    "normalize_integer_vector",
    "scale_to_natural",
    "solve_strict_system",
]
