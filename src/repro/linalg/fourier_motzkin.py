"""Exact Fourier–Motzkin elimination for strict homogeneous systems.

The decision ``∃ ε ∈ Q^n . A·ε > 0`` (all inequalities strict) is made by
repeatedly eliminating one unknown:

* rows with a positive coefficient on the eliminated unknown become strict
  *lower* bounds for it, rows with a negative coefficient become strict
  *upper* bounds, rows with a zero coefficient carry over unchanged;
* for every (lower, upper) pair the two rows are combined into a new strict
  row without the unknown;
* a row whose coefficients are all zero reads ``0 > 0`` and makes the system
  infeasible.

Because all inequalities are strict, the elimination is exact: the reduced
system is feasible iff the original one is, and a satisfying assignment of
the reduced system extends to the eliminated unknown by choosing any value
strictly between the induced lower and upper bounds.  Back-substitution
therefore also produces an explicit rational witness.

To keep the classic double-exponential blow-up at bay the implementation

* works on **gcd-reduced integer rows** throughout: every row is normalised
  to a primitive integer vector once, and all elimination arithmetic is
  pure machine-integer multiply/add — no :class:`~fractions.Fraction`
  normalisation inside the hot combination loops (rationals only reappear
  in the back-substitution that assembles the witness);
* de-duplicates rows (two rows that are positive multiples of each other
  encode the same half-space) and, between elimination steps, drops
  **redundant rows**: a row that is a positive multiple of the sum of two
  other rows is implied by them (the sum of two strictly positive values is
  strictly positive) and only multiplies the downstream combination count;
  the same pass detects opposite-row pairs (``a`` and ``−a``), whose sum
  reads ``0 > 0`` and settles infeasibility immediately;
* eliminates, at every step, the unknown minimising the number of
  lower×upper combinations (the standard min-fill heuristic);
* enforces a configurable cap on the number of generated rows and raises
  :class:`LinearSystemError` when it is exceeded, so callers can fall back
  to the LP-based solver.

The systems arising from monomial–polynomial inequalities in this library
have as many unknowns as the containee query has atoms, which is small, so
the exact solver is the default decision path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Sequence

from repro.exceptions import LinearSystemError
from repro.linalg.systems import HomogeneousStrictSystem

__all__ = [
    "FeasibilityResult",
    "solve_strict_system",
    "is_feasible",
    "feasibility_witness",
    "DEFAULT_ROW_CAP",
    "REDUNDANCY_ROW_LIMIT",
]

#: Safety cap on the number of rows generated during elimination.
DEFAULT_ROW_CAP = 200_000

#: Redundancy elimination is an O(rows²) pass per step; beyond this many
#: rows the pass is skipped (the cap keeps worst-case steps quadratic, and
#: systems that large are about to hit the row cap anyway).
REDUNDANCY_ROW_LIMIT = 400


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of a feasibility check, with a rational witness when feasible."""

    feasible: bool
    witness: tuple[Fraction, ...] | None = None

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.feasible


_Row = tuple[int, ...]


def _normalize(row: Sequence[int]) -> _Row | None:
    """Reduce an integer row to a primitive vector; ``None`` for the zero row."""
    divisor = 0
    for value in row:
        divisor = gcd(divisor, value)
    if divisor == 0:
        return None
    if divisor == 1:
        return tuple(row)
    return tuple(value // divisor for value in row)


def _prepare(rows: list[_Row]) -> tuple[list[_Row], bool]:
    """Normalise and de-duplicate rows; report whether a ``0 > 0`` row was seen."""
    seen: set[_Row] = set()
    prepared: list[_Row] = []
    for row in rows:
        normalized = _normalize(row)
        if normalized is None:
            return [], True
        if normalized not in seen:
            seen.add(normalized)
            prepared.append(normalized)
    return prepared, False


def _drop_redundant(rows: list[_Row]) -> tuple[list[_Row], bool]:
    """Drop rows implied by the sum of two kept rows; detect ``a, −a`` pairs.

    If ``a·ε > 0`` and ``b·ε > 0`` then ``(a + b)·ε > 0``, so a row equal to
    a positive multiple of ``a + b`` is implied and safe to drop — *provided*
    its two justifying rows are themselves kept.  The pass therefore only
    accepts justifications whose summands are not sum-composites themselves,
    which makes every drop grounded in surviving rows regardless of order.
    A pair summing to the zero row reads ``0 > 0`` and proves the system
    infeasible on the spot (the second returned value).
    """
    n = len(rows)
    if n < 3 or n > REDUNDANCY_ROW_LIMIT:
        return rows, False
    row_set = set(rows)
    composite: set[_Row] = set()
    justifications: dict[_Row, list[tuple[_Row, _Row]]] = {}
    for i in range(n):
        left = rows[i]
        for j in range(i + 1, n):
            right = rows[j]
            summed = _normalize([a + b for a, b in zip(left, right)])
            if summed is None:
                # left == -right: the two strict rows contradict each other.
                return rows, True
            # A sum can never normalise back to one of its own summands
            # (that would force the other to be zero or a duplicate), so
            # membership alone identifies a genuinely distinct implied row.
            if summed in row_set:
                justifications.setdefault(summed, []).append((left, right))
                composite.add(summed)
    if not composite:
        return rows, False
    kept = [
        row
        for row in rows
        if row not in composite
        or not any(
            a not in composite and b not in composite for a, b in justifications[row]
        )
    ]
    return kept, False


def _pick_variable(rows: list[_Row], active: list[int]) -> int:
    """Choose the active column whose elimination creates the fewest rows."""
    best_column = active[0]
    best_cost: int | None = None
    for column in active:
        lowers = 0
        uppers = 0
        for row in rows:
            value = row[column]
            if value > 0:
                lowers += 1
            elif value < 0:
                uppers += 1
        cost = lowers * uppers
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_column = column
    return best_column


def _solve(rows: list[_Row], active: list[int], dimension: int, row_cap: int) -> FeasibilityResult:
    """Recursive Fourier–Motzkin over the *active* columns, with back-substitution.

    Rows are primitive integer vectors throughout; the combination loop is
    pure integer arithmetic and each recursion level re-normalises,
    de-duplicates and redundancy-prunes before branching.  Returns a
    witness defined on **all** columns; inactive columns get 0.
    """
    prepared, contradiction = _prepare(rows)
    if contradiction:
        return FeasibilityResult(False)
    prepared, contradiction = _drop_redundant(prepared)
    if contradiction:
        return FeasibilityResult(False)

    if not active:
        # No unknowns left to eliminate; any remaining non-zero row would have
        # been a contradiction only if all its active coefficients were zero,
        # which _prepare already detected, so the system is feasible.
        if prepared:
            return FeasibilityResult(False)
        return FeasibilityResult(True, tuple(Fraction(0) for _ in range(dimension)))

    column = _pick_variable(prepared, active)
    remaining = [other for other in active if other != column]

    lowers = [row for row in prepared if row[column] > 0]
    uppers = [row for row in prepared if row[column] < 0]
    reduced = [row for row in prepared if row[column] == 0]

    columns = range(dimension)
    for lower in lowers:
        p = lower[column]
        for upper in uppers:
            q = upper[column]
            combined = tuple(
                (-q) * lower[j] + p * upper[j] if j != column else 0 for j in columns
            )
            reduced.append(combined)
            if len(reduced) > row_cap:
                raise LinearSystemError(
                    f"Fourier-Motzkin elimination exceeded the row cap of {row_cap}; "
                    "use the LP-based solver for this system"
                )

    # Rows in `reduced` still have a zero coefficient on `column`, so they are
    # genuine constraints over the remaining columns only.
    inner = _solve(reduced, remaining, dimension, row_cap)
    if not inner.feasible:
        return FeasibilityResult(False)

    assert inner.witness is not None
    witness = list(inner.witness)

    def bound(row: _Row) -> Fraction:
        rest = sum(
            (row[j] * witness[j] for j in range(dimension) if j != column and row[j]),
            Fraction(0),
        )
        return -rest / row[column]

    lower_bounds = [bound(row) for row in lowers]
    upper_bounds = [bound(row) for row in uppers]

    if lower_bounds and upper_bounds:
        low = max(lower_bounds)
        high = min(upper_bounds)
        if not low < high:  # pragma: no cover - guaranteed by the combined rows
            raise LinearSystemError("internal error: empty interval during back-substitution")
        value = (low + high) / 2
    elif lower_bounds:
        value = max(lower_bounds) + 1
    elif upper_bounds:
        value = min(upper_bounds) - 1
    else:
        value = Fraction(0)

    witness[column] = value
    return FeasibilityResult(True, tuple(witness))


def solve_strict_system(
    system: HomogeneousStrictSystem,
    require_positive: bool = False,
    row_cap: int = DEFAULT_ROW_CAP,
) -> FeasibilityResult:
    """Decide feasibility of ``A·ε > 0`` (optionally with ``ε > 0``) exactly.

    When *require_positive* is set, the positivity rows ``ε_j > 0`` are added
    before solving; the witness, if any, is then component-wise positive.
    """
    working = system.with_positivity() if require_positive else system
    # The system's integer rows are already primitive (gcd-normalised at
    # construction), so the whole elimination runs on machine integers.
    result = _solve(
        list(working.integer_rows()), list(range(working.dimension)), working.dimension, row_cap
    )
    if result.feasible and result.witness is not None and len(working) > 0:
        if not working.is_solution(result.witness):  # pragma: no cover - sanity check
            raise LinearSystemError("internal error: Fourier-Motzkin witness does not verify")
    return result


def is_feasible(
    system: HomogeneousStrictSystem,
    require_positive: bool = False,
    row_cap: int = DEFAULT_ROW_CAP,
) -> bool:
    """Boolean shortcut for :func:`solve_strict_system`."""
    return solve_strict_system(system, require_positive=require_positive, row_cap=row_cap).feasible


def feasibility_witness(
    rows: Sequence[Sequence[object]],
    dimension: int,
    require_positive: bool = False,
    row_cap: int = DEFAULT_ROW_CAP,
) -> tuple[Fraction, ...] | None:
    """Convenience wrapper: witness of ``rows·ε > 0`` or ``None`` if infeasible."""
    system = HomogeneousStrictSystem(rows, dimension)
    result = solve_strict_system(system, require_positive=require_positive, row_cap=row_cap)
    return result.witness if result.feasible else None
