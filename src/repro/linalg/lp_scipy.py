"""Linear-programming fast path for strict homogeneous feasibility.

Theorem 4.2 observes that the rational feasibility of the homogeneous strict
system ``A·ε > 0`` is decidable in polynomial time.  The exact solver of
:mod:`repro.linalg.fourier_motzkin` is the authoritative implementation; the
LP formulation below is the *fast path* used on larger random workloads and
benchmarked against it (experiment E6).

The formulation exploits homogeneity: ``A·ε > 0`` has a solution iff the LP

    maximise   δ
    subject to A·ε ≥ δ·1,  0 ≤ δ ≤ 1,  −1 ≤ ε_j ≤ 1

has optimum ``δ* > 0`` (any solution of the strict system can be scaled into
the box with a positive margin, and any box solution with positive margin
satisfies the strict system).  The same trick handles the variant with
``ε > 0`` by adding the rows of the identity.

A floating-point solver can only be trusted up to a tolerance, so the module
never *asserts* infeasibility on its own authority: callers that need an
exact answer either verify the returned witness exactly (a rational
rounding of the LP solution) or fall back to Fourier–Motzkin.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np
from scipy.optimize import linprog

from repro.linalg.systems import HomogeneousStrictSystem

__all__ = ["LpFeasibility", "lp_feasibility", "lp_witness"]

#: Margins below this value are treated as "numerically zero" (infeasible).
DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class LpFeasibility:
    """Outcome of the LP fast path.

    ``margin`` is the optimum ``δ*`` (0 when the solver failed); ``witness``
    is a rational rounding of the LP point, present only when the margin is
    positive *and* the rounded point exactly satisfies the strict system.
    """

    feasible: bool
    margin: float
    witness: tuple[Fraction, ...] | None
    exact: bool

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.feasible


def _round_witness(
    system: HomogeneousStrictSystem, point: np.ndarray, denominator: int = 10**6
) -> tuple[Fraction, ...] | None:
    """Round an LP point to rationals and keep it only if it verifies exactly."""
    candidate = tuple(Fraction(round(float(value) * denominator), denominator) for value in point)
    if system.is_solution(candidate):
        return candidate
    return None


def lp_feasibility(
    system: HomogeneousStrictSystem,
    require_positive: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
) -> LpFeasibility:
    """Decide (numerically) whether ``A·ε > 0`` is feasible.

    The answer is *exact* (``exact=True``) only when a positive margin was
    found **and** the rounded rational witness verifies against the system;
    otherwise the caller should treat the verdict as a hint.
    """
    working = system.with_positivity() if require_positive else system
    n = working.dimension
    m = len(working)

    if m == 0:
        witness = tuple(Fraction(0) for _ in range(n))
        return LpFeasibility(True, 1.0, witness, True)

    matrix = np.array([[float(value) for value in row] for row in working.rows], dtype=float)

    # Variables: [ε_1 ... ε_n, δ];  constraints  −A·ε + δ·1 ≤ 0;  maximise δ.
    a_ub = np.hstack([-matrix, np.ones((m, 1))])
    b_ub = np.zeros(m)
    objective = np.zeros(n + 1)
    objective[-1] = -1.0
    bounds = [(-1.0, 1.0)] * n + [(0.0, 1.0)]

    outcome = linprog(objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not outcome.success:
        return LpFeasibility(False, 0.0, None, False)

    margin = float(outcome.x[-1])
    if margin <= tolerance:
        return LpFeasibility(False, margin, None, False)

    witness = _round_witness(working, outcome.x[:-1])
    return LpFeasibility(True, margin, witness, witness is not None)


def lp_witness(
    system: HomogeneousStrictSystem,
    require_positive: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[Fraction, ...] | None:
    """Rational witness from the LP fast path, or ``None`` when unavailable."""
    return lp_feasibility(system, require_positive=require_positive, tolerance=tolerance).witness
