"""Set-semantics evaluation of conjunctive queries and UCQs.

The answer of ``q(x)`` over a set instance ``I`` is the set of tuples
``c ∈ adom(I)^|x|`` such that some homomorphism of the body into ``I`` maps
the head onto ``c``.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine import has_homomorphism
from repro.evaluation.homomorphisms import query_homomorphisms
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instances import SetInstance
from repro.relational.terms import Term

__all__ = ["evaluate_set", "evaluate_set_ucq", "holds", "answer_tuples"]


def answer_tuples(query: ConjunctiveQuery, instance: SetInstance) -> Iterator[tuple[Term, ...]]:
    """Yield each distinct answer tuple of *query* over *instance* once."""
    seen: set[tuple[Term, ...]] = set()
    for homomorphism in query_homomorphisms(query, instance):
        answer = homomorphism.apply_tuple(query.head)
        if answer not in seen:
            seen.add(answer)
            yield answer


def evaluate_set(query: ConjunctiveQuery, instance: SetInstance) -> frozenset[tuple[Term, ...]]:
    """``q^I``: the set of answer tuples of *query* over *instance*."""
    return frozenset(answer_tuples(query, instance))


def evaluate_set_ucq(
    ucq: UnionOfConjunctiveQueries, instance: SetInstance
) -> frozenset[tuple[Term, ...]]:
    """Set answer of a UCQ: the union of the answers of its disjuncts."""
    answers: set[tuple[Term, ...]] = set()
    for disjunct in ucq:
        answers.update(evaluate_set(disjunct, instance))
    return frozenset(answers)


def holds(query: ConjunctiveQuery, instance: SetInstance) -> bool:
    """Whether a Boolean query holds (has at least one homomorphism) on *instance*.

    For non-Boolean queries this means "has at least one answer tuple".
    Runs in the engine's ``exists`` mode: the search stops at the first
    homomorphism without materialising any substitution.
    """
    return has_homomorphism(query.body_atoms(), instance.facts)
