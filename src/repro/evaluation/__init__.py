"""Evaluation engine: homomorphisms, set / bag / bag-set semantics."""

from repro.evaluation.bag_evaluation import (
    AnswerBag,
    bag_multiplicity,
    evaluate_bag,
    evaluate_bag_ucq,
    homomorphism_contribution,
)
from repro.evaluation.bag_set_evaluation import (
    bag_set_multiplicity,
    evaluate_bag_set,
    evaluate_bag_set_ucq,
)
from repro.evaluation.homomorphisms import (
    containment_mappings,
    containment_mappings_to_ground,
    count_homomorphisms,
    has_homomorphism,
    homomorphisms,
    query_homomorphisms,
)
from repro.evaluation.set_evaluation import answer_tuples, evaluate_set, evaluate_set_ucq, holds

__all__ = [
    "AnswerBag",
    "answer_tuples",
    "bag_multiplicity",
    "bag_set_multiplicity",
    "containment_mappings",
    "containment_mappings_to_ground",
    "count_homomorphisms",
    "evaluate_bag",
    "evaluate_bag_set",
    "evaluate_bag_set_ucq",
    "evaluate_bag_ucq",
    "evaluate_set",
    "evaluate_set_ucq",
    "has_homomorphism",
    "holds",
    "homomorphism_contribution",
    "homomorphisms",
    "query_homomorphisms",
]
