"""Homomorphism and containment-mapping enumeration (query-level layer).

This is the combinatorial surface underneath everything else:

* ``Hom(q, I)`` — homomorphisms of a query into a set instance — drive both
  set-semantics evaluation and bag-semantics evaluation (Equation 2);
* ``CM(q2(x2), q1(x1))`` — containment mappings between queries — drive
  Chandra–Merlin set containment and the polynomial encoding of
  Definition 3.3.

Both are special cases of one operation: enumerating all substitutions ``h``
of the variables of a *source* set of atoms such that ``h(α)`` belongs to a
*target* set of atoms, subject to some pre-fixed bindings.  That operation
now lives in :mod:`repro.engine`, which compiles a ``(source, target,
fixed)`` triple into a reusable match plan and executes it iteratively in
``iterate`` / ``count`` / ``exists`` mode.  This module keeps the historical
query-level API:

* :func:`homomorphisms` is a *compatibility shim* pinned to the ``naive``
  reference backend — the original recursive backtracker — so downstream
  code (and the property tests) always have the executable specification;
* every other entry point routes through the engine's default backend
  (``indexed`` unless reconfigured), picking the cheapest execution mode:
  :func:`has_homomorphism` uses ``exists`` and never materialises a
  substitution, :func:`count_homomorphisms` uses ``count``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.engine import api as _engine
from repro.engine.backends import get_backend
from repro.engine.batch import head_fixing
from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import SetInstance
from repro.relational.substitutions import Substitution, unify_tuples
from repro.relational.terms import Term, Variable

__all__ = [
    "homomorphisms",
    "count_homomorphisms",
    "query_homomorphisms",
    "containment_mappings",
    "containment_mappings_to_ground",
    "has_homomorphism",
    "answer_fixing",
]


def homomorphisms(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
) -> Iterator[Substitution]:
    """Enumerate all homomorphisms from *source_atoms* into *target_atoms*.

    A homomorphism is a substitution ``h`` defined on every variable of the
    source such that ``h(α)`` is an element of the target for every source
    atom ``α``.  Pre-fixed bindings (*fixed*) are honoured and included in
    the yielded substitutions.  Target atoms may themselves contain
    variables (needed for containment mappings between non-ground queries).

    .. note::
       This function is the compatibility shim over the **naive** reference
       backend and ignores the engine's default-backend selection; use
       :func:`repro.engine.iterate_homomorphisms` (or the other helpers in
       this module) for the compiled engine.
    """
    return get_backend("naive").iterate(source_atoms, target_atoms, fixed)


def has_homomorphism(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
) -> bool:
    """``True`` when at least one homomorphism exists (engine ``exists`` mode)."""
    return _engine.has_homomorphism(source_atoms, target_atoms, fixed)


def count_homomorphisms(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
) -> int:
    """Number of homomorphisms (engine ``count`` mode, no substitutions built)."""
    return _engine.count_homomorphisms(source_atoms, target_atoms, fixed)


def answer_fixing(
    query: ConjunctiveQuery, answer: Sequence[Term] | None
) -> dict[Variable, Term] | None:
    """Head bindings for an answer restriction; ``None`` when inconsistent.

    Shared by every caller that pins a query's head to an answer tuple
    (query homomorphisms, bag-set counting, the batch bag evaluator).
    Raises :class:`QueryError` when the answer's arity does not match.
    """
    if answer is None:
        return {}
    answer = tuple(answer)
    if len(answer) != query.arity:
        raise QueryError(
            f"answer tuple has arity {len(answer)}, query {query.name} has arity {query.arity}"
        )
    try:
        substitution = unify_tuples(query.head, answer)
    except Exception:
        return None
    return {variable: substitution[variable] for variable in substitution}


def query_homomorphisms(
    query: ConjunctiveQuery,
    instance: SetInstance,
    answer: Sequence[Term] | None = None,
) -> Iterator[Substitution]:
    """``Hom(q(x), I)``, optionally restricted to ``h(x) = answer``.

    When *answer* is supplied it must be a tuple of constants of the query's
    arity; the head variables are pre-bound accordingly (if the binding is
    inconsistent — e.g. a repeated head variable asked to take two different
    values — no homomorphism is yielded).
    """
    fixed = answer_fixing(query, answer)
    if fixed is None:
        return iter(())
    return _engine.iterate_homomorphisms(query.body_atoms(), instance.facts, fixed)


def containment_mappings(
    containing: ConjunctiveQuery,
    containee: ConjunctiveQuery,
) -> Iterator[Substitution]:
    """``CM(q2(x2), q1(x1))``: containment mappings from *containing* to *containee*.

    A containment mapping is a homomorphism from the body of ``q2`` to the
    body of ``q1`` mapping the head of ``q2`` onto the head of ``q1``
    position-wise.  Following Chandra–Merlin, ``q1 ⊑s q2`` iff at least one
    containment mapping exists.
    """
    if containing.arity != containee.arity:
        return iter(())
    fixed = head_fixing(containing.head, containee.head)
    if fixed is None:
        return iter(())
    return _engine.iterate_homomorphisms(containing.body_atoms(), containee.body_atoms(), fixed)


def containment_mappings_to_ground(
    containing: ConjunctiveQuery,
    grounded_containee: ConjunctiveQuery,
    probe: Sequence[Term],
) -> Iterator[Substitution]:
    """``CM(q2(x2), q1(t))``: mappings of ``q2`` into the grounded containee.

    *grounded_containee* is the Boolean query ``q1(t)`` (its body is ground),
    and *probe* is the tuple ``t`` itself; the head of ``q2`` is required to
    map onto ``t`` position-wise.  This matches the paper's abuse of
    notation ``CM(q2(x2), q1(t))``.
    """
    probe = tuple(probe)
    if containing.arity != len(probe):
        return iter(())
    fixed = head_fixing(containing.head, probe)
    if fixed is None:
        return iter(())
    return _engine.iterate_homomorphisms(
        containing.body_atoms(), grounded_containee.body_atoms(), fixed
    )
