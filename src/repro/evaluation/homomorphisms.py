"""Homomorphism and containment-mapping enumeration.

This is the combinatorial engine underneath everything else:

* ``Hom(q, I)`` — homomorphisms of a query into a set instance — drive both
  set-semantics evaluation and bag-semantics evaluation (Equation 2);
* ``CM(q2(x2), q1(x1))`` — containment mappings between queries — drive
  Chandra–Merlin set containment and the polynomial encoding of
  Definition 3.3.

Both are special cases of one operation: enumerating all substitutions ``h``
of the variables of a *source* set of atoms such that ``h(α)`` belongs to a
*target* set of atoms, subject to some pre-fixed bindings (for containment
mappings the head of the source must map to the head of the target).  The
enumeration is a backtracking search over source atoms, with the target
indexed by relation name and the next atom chosen greedily by the number of
remaining candidate facts (a classic fail-first heuristic).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import SetInstance
from repro.relational.substitutions import Substitution, unify_tuples
from repro.relational.terms import Term, Variable, is_constant_like

__all__ = [
    "homomorphisms",
    "count_homomorphisms",
    "query_homomorphisms",
    "containment_mappings",
    "containment_mappings_to_ground",
    "has_homomorphism",
]


def _match_atom(atom: Atom, target: Atom, bindings: dict[Variable, Term]) -> dict[Variable, Term] | None:
    """Try to extend *bindings* so that the source *atom* maps onto *target*.

    Returns the extended bindings (a new dict) on success, ``None`` on
    failure.  Constants in the source must equal the corresponding target
    term; source variables may map to any target term but must do so
    consistently.
    """
    if atom.relation != target.relation or atom.arity != target.arity:
        return None
    extended = dict(bindings)
    for source_term, target_term in zip(atom.terms, target.terms):
        if isinstance(source_term, Variable):
            bound = extended.get(source_term)
            if bound is None:
                extended[source_term] = target_term
            elif bound != target_term:
                return None
        elif source_term != target_term:
            return None
    return extended


def homomorphisms(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
) -> Iterator[Substitution]:
    """Enumerate all homomorphisms from *source_atoms* into *target_atoms*.

    A homomorphism is a substitution ``h`` defined on every variable of the
    source such that ``h(α)`` is an element of the target for every source
    atom ``α``.  Pre-fixed bindings (*fixed*) are honoured and included in
    the yielded substitutions.  Target atoms may themselves contain
    variables (needed for containment mappings between non-ground queries).
    """
    source = list(dict.fromkeys(source_atoms))
    target = list(dict.fromkeys(target_atoms))

    by_relation: dict[str, list[Atom]] = {}
    for atom in target:
        by_relation.setdefault(atom.relation, []).append(atom)

    initial: dict[Variable, Term] = dict(fixed or {})

    source_variables: set[Variable] = set()
    for atom in source:
        source_variables.update(atom.variables())

    def candidate_count(atom: Atom, bindings: dict[Variable, Term]) -> int:
        count = 0
        for candidate in by_relation.get(atom.relation, ()):  # pragma: no branch
            if _match_atom(atom, candidate, bindings) is not None:
                count += 1
        return count

    def search(remaining: list[Atom], bindings: dict[Variable, Term]) -> Iterator[dict[Variable, Term]]:
        if not remaining:
            yield bindings
            return
        # Fail-first: pick the atom with the fewest candidate images.
        best_index = min(
            range(len(remaining)), key=lambda index: candidate_count(remaining[index], bindings)
        )
        atom = remaining[best_index]
        rest = remaining[:best_index] + remaining[best_index + 1 :]
        for candidate in by_relation.get(atom.relation, ()):  # pragma: no branch
            extended = _match_atom(atom, candidate, bindings)
            if extended is not None:
                yield from search(rest, extended)

    for solution in search(source, initial):
        complete = dict(solution)
        for variable in source_variables:
            complete.setdefault(variable, variable)
        yield Substitution(complete)


def has_homomorphism(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
) -> bool:
    """``True`` when at least one homomorphism exists."""
    return next(iter(homomorphisms(source_atoms, target_atoms, fixed)), None) is not None


def count_homomorphisms(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
) -> int:
    """Number of homomorphisms from *source_atoms* into *target_atoms*."""
    return sum(1 for _ in homomorphisms(source_atoms, target_atoms, fixed))


def query_homomorphisms(
    query: ConjunctiveQuery,
    instance: SetInstance,
    answer: Sequence[Term] | None = None,
) -> Iterator[Substitution]:
    """``Hom(q(x), I)``, optionally restricted to ``h(x) = answer``.

    When *answer* is supplied it must be a tuple of constants of the query's
    arity; the head variables are pre-bound accordingly (if the binding is
    inconsistent — e.g. a repeated head variable asked to take two different
    values — no homomorphism is yielded).
    """
    fixed: dict[Variable, Term] = {}
    if answer is not None:
        answer = tuple(answer)
        if len(answer) != query.arity:
            raise QueryError(
                f"answer tuple has arity {len(answer)}, query {query.name} has arity {query.arity}"
            )
        try:
            substitution = unify_tuples(query.head, answer)
        except Exception:
            return iter(())
        fixed = {variable: substitution[variable] for variable in substitution}
    return homomorphisms(query.body_atoms(), instance.facts, fixed)


def containment_mappings(
    containing: ConjunctiveQuery,
    containee: ConjunctiveQuery,
) -> Iterator[Substitution]:
    """``CM(q2(x2), q1(x1))``: containment mappings from *containing* to *containee*.

    A containment mapping is a homomorphism from the body of ``q2`` to the
    body of ``q1`` mapping the head of ``q2`` onto the head of ``q1``
    position-wise.  Following Chandra–Merlin, ``q1 ⊑s q2`` iff at least one
    containment mapping exists.
    """
    if containing.arity != containee.arity:
        return iter(())
    fixed: dict[Variable, Term] = {}
    for source_variable, target_term in zip(containing.head, containee.head):
        bound = fixed.get(source_variable)
        if bound is not None and bound != target_term:
            return iter(())
        fixed[source_variable] = target_term
    return homomorphisms(containing.body_atoms(), containee.body_atoms(), fixed)


def containment_mappings_to_ground(
    containing: ConjunctiveQuery,
    grounded_containee: ConjunctiveQuery,
    probe: Sequence[Term],
) -> Iterator[Substitution]:
    """``CM(q2(x2), q1(t))``: mappings of ``q2`` into the grounded containee.

    *grounded_containee* is the Boolean query ``q1(t)`` (its body is ground),
    and *probe* is the tuple ``t`` itself; the head of ``q2`` is required to
    map onto ``t`` position-wise.  This matches the paper's abuse of
    notation ``CM(q2(x2), q1(t))``.
    """
    probe = tuple(probe)
    if containing.arity != len(probe):
        return iter(())
    fixed: dict[Variable, Term] = {}
    for source_term, target_term in zip(containing.head, probe):
        if isinstance(source_term, Variable):
            bound = fixed.get(source_term)
            if bound is not None and bound != target_term:
                return iter(())
            fixed[source_term] = target_term
        elif source_term != target_term:  # pragma: no cover - heads are variables
            return iter(())
    return homomorphisms(containing.body_atoms(), grounded_containee.body_atoms(), fixed)
