"""Bag-semantics evaluation of conjunctive queries (Equation 2 of the paper).

Given a CQ ``q(x)`` and a bag ``µ`` over a set instance ``I``, the
multiplicity of an answer tuple ``c`` is::

    q^µ(c) = Σ_{h ∈ Hom(q(x), I), h(x)=c}  Π_{α ∈ body(h(q(x)))} µ(α)^{µ_{h(q(x))}(α)}

i.e. each homomorphism contributes the product, over the *distinct* atoms of
the ground query ``h(q(x))``, of the instance multiplicity of the atom raised
to the body multiplicity of the atom in ``h(q(x))`` — where collapsing atoms
have had their multiplicities summed, per Equation 1.

:class:`AnswerBag` wraps the resulting ``{answer tuple: multiplicity}``
mapping with the sub-bag comparison used by the definition of bag
containment.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.evaluation.homomorphisms import query_homomorphisms
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instances import BagInstance
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, term_sort_key


def _answer_sort_key(answer: tuple[Term, ...]) -> tuple:
    """Order answer tuples structurally (no ``str()`` collisions)."""
    return tuple(term_sort_key(term) for term in answer)

__all__ = [
    "AnswerBag",
    "homomorphism_contribution",
    "bag_multiplicity",
    "evaluate_bag",
    "evaluate_bag_ucq",
]


class AnswerBag:
    """A bag of answer tuples: mapping from tuples of constants to multiplicities.

    Only answers with positive multiplicity are stored; querying an absent
    tuple returns ``0``, matching the convention of the paper.
    """

    __slots__ = ("_answers",)

    def __init__(self, answers: Mapping[tuple[Term, ...], int] | None = None) -> None:
        self._answers: dict[tuple[Term, ...], int] = (
            {} if answers is None else {answer: count for answer, count in answers.items() if count > 0}
        )

    def __getitem__(self, answer: Sequence[Term]) -> int:
        return self._answers.get(tuple(answer), 0)

    def __contains__(self, answer: object) -> bool:
        return tuple(answer) in self._answers  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[tuple[Term, ...]]:
        return iter(sorted(self._answers, key=_answer_sort_key))

    def __len__(self) -> int:
        return len(self._answers)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AnswerBag):
            return self._answers == other._answers
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._answers.items()))

    def items(self) -> Iterator[tuple[tuple[Term, ...], int]]:
        """``(answer, multiplicity)`` pairs, ordered by term structure.

        The order is deterministic and collision-free: tuples are compared
        term by term via :func:`repro.relational.terms.term_sort_key`, so two
        distinct answers never tie the way ``str()``-keyed sorting allowed
        (e.g. ``Constant(1)`` vs ``Constant("1")``).
        """
        return iter(sorted(self._answers.items(), key=lambda item: _answer_sort_key(item[0])))

    def support(self) -> frozenset[tuple[Term, ...]]:
        """The set of answers with positive multiplicity."""
        return frozenset(self._answers)

    def total(self) -> int:
        """Sum of all answer multiplicities."""
        return sum(self._answers.values())

    def is_subbag_of(self, other: "AnswerBag") -> bool:
        """``self ⊆ other`` pointwise — the relation used by bag containment."""
        return all(count <= other[answer] for answer, count in self._answers.items())

    def violations(self, other: "AnswerBag") -> list[tuple[tuple[Term, ...], int, int]]:
        """Answers where ``self`` exceeds *other*: ``(tuple, self count, other count)``."""
        return [
            (answer, count, other[answer])
            for answer, count in self.items()
            if count > other[answer]
        ]

    def add(self, other: "AnswerBag") -> "AnswerBag":
        """Pointwise sum (used for UCQ evaluation)."""
        counts = dict(self._answers)
        for answer, count in other._answers.items():
            counts[answer] = counts.get(answer, 0) + count
        return AnswerBag(counts)

    def __repr__(self) -> str:
        inner = ", ".join(
            "(" + ", ".join(str(term) for term in answer) + f")^{count}"
            for answer, count in self.items()
        )
        return f"AnswerBag({{{inner}}})"


def homomorphism_contribution(
    query: ConjunctiveQuery, bag: BagInstance, homomorphism: Substitution
) -> int:
    """The contribution of one homomorphism to Equation 2.

    The homomorphism is applied to the query (Equation 1 merges collapsing
    atoms), and the product ``Π µ(α)^{µ_{h(q)}(α)}`` over the distinct atoms
    of the image is returned.
    """
    image = query.apply_substitution(homomorphism)
    contribution = 1
    for atom, exponent in image.body.items():
        contribution *= bag[atom] ** exponent
        if contribution == 0:
            return 0
    return contribution


def bag_multiplicity(
    query: ConjunctiveQuery, bag: BagInstance, answer: Sequence[Term]
) -> int:
    """``q^µ(c)``: the bag multiplicity of a single answer tuple.

    A tuple whose arity differs from the query's arity can never be an
    answer, so its multiplicity is 0 (this situation arises when comparing
    two queries of different arities during containment checking).
    """
    answer = tuple(answer)
    if len(answer) != query.arity:
        return 0
    instance = bag.support()
    total = 0
    for homomorphism in query_homomorphisms(query, instance, answer=answer):
        total += homomorphism_contribution(query, bag, homomorphism)
    return total


def evaluate_bag(query: ConjunctiveQuery, bag: BagInstance) -> AnswerBag:
    """``q^µ``: the full answer bag of *query* over the bag instance *bag*.

    Only tuples with positive multiplicity are materialised, which matches
    the paper's convention of restricting ``q^µ`` to ``q(x)^I``.
    """
    instance = bag.support()
    counts: dict[tuple[Term, ...], int] = {}
    for homomorphism in query_homomorphisms(query, instance):
        answer = homomorphism.apply_tuple(query.head)
        counts[answer] = counts.get(answer, 0) + homomorphism_contribution(query, bag, homomorphism)
    return AnswerBag(counts)


def evaluate_bag_ucq(ucq: UnionOfConjunctiveQueries, bag: BagInstance) -> AnswerBag:
    """Bag answer of a UCQ: the pointwise sum of the disjunct answer bags."""
    result = AnswerBag()
    for disjunct in ucq:
        result = result.add(evaluate_bag(disjunct, bag))
    return result
