"""Bag-set semantics evaluation.

Under *bag-set* semantics (Chaudhuri–Vardi) the database is a **set**
instance but the query answer is a **bag**: the multiplicity of an answer
tuple is the *number of homomorphisms* producing it (every fact has
multiplicity one, so each homomorphism contributes exactly 1).

Bag-set semantics is the natural model of SQL ``SELECT`` (without
``DISTINCT``) over duplicate-free tables.  The paper notes that for bag-set
semantics the containment problem is equivalent to set containment, which is
the content of :func:`repro.containment.bag_set_containment.decide_bag_set_containment`
and of experiment E10.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine import count_homomorphisms
from repro.evaluation.bag_evaluation import AnswerBag
from repro.evaluation.homomorphisms import answer_fixing, query_homomorphisms
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instances import SetInstance
from repro.relational.terms import Term

__all__ = ["evaluate_bag_set", "bag_set_multiplicity", "evaluate_bag_set_ucq"]


def bag_set_multiplicity(
    query: ConjunctiveQuery, instance: SetInstance, answer: Sequence[Term]
) -> int:
    """Number of homomorphisms of *query* into *instance* producing *answer*.

    Runs in the engine's ``count`` mode: no substitution objects are built.
    """
    fixed = answer_fixing(query, tuple(answer))
    if fixed is None:
        return 0
    return count_homomorphisms(query.body_atoms(), instance.facts, fixed)


def evaluate_bag_set(query: ConjunctiveQuery, instance: SetInstance) -> AnswerBag:
    """The bag-set answer: each answer tuple counted with its homomorphism count."""
    counts: dict[tuple[Term, ...], int] = {}
    for homomorphism in query_homomorphisms(query, instance):
        answer = homomorphism.apply_tuple(query.head)
        counts[answer] = counts.get(answer, 0) + 1
    return AnswerBag(counts)


def evaluate_bag_set_ucq(ucq: UnionOfConjunctiveQueries, instance: SetInstance) -> AnswerBag:
    """Bag-set answer of a UCQ (pointwise sum over disjuncts)."""
    result = AnswerBag()
    for disjunct in ucq:
        result = result.add(evaluate_bag_set(disjunct, instance))
    return result
