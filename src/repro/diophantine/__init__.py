"""Diophantine layer: monomials, polynomials, MPIs/GMPIs and their decision."""

from repro.diophantine.bounds import phi, solution_component_bound
from repro.diophantine.inequalities import GeneralizedMPI, MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.diophantine.solver import (
    MpiDecision,
    decide_mpi,
    decide_mpi_via_lp,
    smallest_univariate_solution,
    solve_univariate_gmpi,
    witness_from_linear_solution,
)

__all__ = [
    "GeneralizedMPI",
    "Monomial",
    "MonomialPolynomialInequality",
    "MpiDecision",
    "Polynomial",
    "decide_mpi",
    "decide_mpi_via_lp",
    "phi",
    "smallest_univariate_solution",
    "solution_component_bound",
    "solve_univariate_gmpi",
    "witness_from_linear_solution",
]
