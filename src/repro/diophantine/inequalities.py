"""Monomial–polynomial inequalities (Definition 4.1).

An *n-MPI* is the expression ``P(u) < M(u)`` where ``M(u) = u^e`` is a
monomial with coefficient 1 and natural exponents and ``P(u) = Σ a_i·u^{e_i}``
is a polynomial with non-negative coefficients and natural exponents, both
over the same ``n`` unknowns.  A Diophantine solution is a natural vector
``ξ`` with ``P(ξ) < M(ξ)``.

The *generalised* variant (GMPI) allows non-negative rational exponents; it
only ever appears in dimension 1 inside the proof machinery (the degree
criterion of Lemma 4.1), and is exposed here for completeness and for the
property-based tests.

Note the orientation: the paper writes the inequality as ``P(u) < M(u)``,
i.e. a solution is a point where the **monomial side wins**.  In the
bag-containment encoding the containment ``q1 ⊑b q2`` holds iff the MPI
``P < M`` associated with the most-general probe tuple has **no** solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.exceptions import DimensionMismatchError, DiophantineError
from repro.linalg.systems import HomogeneousStrictSystem

__all__ = ["MonomialPolynomialInequality", "GeneralizedMPI"]


@dataclass(frozen=True)
class MonomialPolynomialInequality:
    """An n-MPI ``polynomial < monomial`` with natural exponents."""

    polynomial: Polynomial
    monomial: Monomial

    def __post_init__(self) -> None:
        if self.monomial.dimension != self.polynomial.dimension:
            raise DimensionMismatchError(
                f"monomial dimension {self.monomial.dimension} differs from polynomial "
                f"dimension {self.polynomial.dimension}"
            )
        if self.monomial.coefficient != 1:
            raise DiophantineError(
                f"the monomial side of an MPI must have coefficient 1, got {self.monomial.coefficient}"
            )
        if not self.monomial.is_integral() or not self.polynomial.is_integral():
            raise DiophantineError("an MPI requires integer exponents; use GeneralizedMPI otherwise")

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of unknowns."""
        return self.monomial.dimension

    @property
    def num_monomials(self) -> int:
        """Number of monomials on the polynomial side (the ``m`` of Definition 4.1)."""
        return len(self.polynomial)

    # ------------------------------------------------------------------ #
    # Solutions
    # ------------------------------------------------------------------ #
    def is_solution(self, point: Sequence[int]) -> bool:
        """``True`` when *point* is a natural vector with ``P(point) < M(point)``."""
        values = tuple(point)
        if len(values) != self.dimension:
            raise DimensionMismatchError(
                f"point of size {len(values)} for an MPI of dimension {self.dimension}"
            )
        if any((not isinstance(v, int)) or isinstance(v, bool) or v < 0 for v in values):
            return False
        return self.polynomial.evaluate(values) < self.monomial.evaluate(values)

    def gap(self, point: Sequence[int]) -> Fraction:
        """``M(point) − P(point)``: positive exactly on solutions."""
        return self.monomial.evaluate(point) - self.polynomial.evaluate(point)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def to_linear_system(self) -> HomogeneousStrictSystem:
        """The homogeneous strict system ``{(e − e_i)ᵀ·ε > 0}`` of Theorem 4.1.

        The MPI admits a Diophantine solution iff this system admits a
        natural solution (equivalently, iff it is feasible together with the
        component-wise positivity of ``ε`` — see
        :mod:`repro.linalg.systems`).  For the zero polynomial the system is
        empty and trivially feasible, matching the fact that ``0 < M`` is
        solved by the all-ones vector.
        """
        monomial_exponents = self.monomial.exponents
        rows = [
            tuple(e - ei for e, ei in zip(monomial_exponents, poly_monomial.exponents))
            for poly_monomial in self.polynomial
        ]
        return HomogeneousStrictSystem(rows, self.dimension)

    def specialize(self, epsilon: Sequence[object]) -> "GeneralizedMPI":
        """The univariate GMPI obtained by substituting ``u_j = u^{ε_j}``.

        This is the parametric 1-MPI of the worked example in Section 4: the
        original MPI has a solution iff the substituted inequality has one
        for *some* non-negative parameter vector ``ε``.
        """
        return GeneralizedMPI(
            self.polynomial.substitute_power(epsilon),
            self.monomial.substitute_power(epsilon),
        )

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #
    def render(self, unknown_names: Sequence[str] | None = None) -> str:
        """Render the inequality as ``P < M``."""
        return f"{self.polynomial.render(unknown_names)} < {self.monomial.render(unknown_names)}"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class GeneralizedMPI:
    """A GMPI: like an MPI, but exponents may be non-negative rationals."""

    polynomial: Polynomial
    monomial: Monomial

    def __post_init__(self) -> None:
        if self.monomial.dimension != self.polynomial.dimension:
            raise DimensionMismatchError(
                f"monomial dimension {self.monomial.dimension} differs from polynomial "
                f"dimension {self.polynomial.dimension}"
            )
        if self.monomial.coefficient != 1:
            raise DiophantineError(
                f"the monomial side of a GMPI must have coefficient 1, got {self.monomial.coefficient}"
            )

    @property
    def dimension(self) -> int:
        """Number of unknowns."""
        return self.monomial.dimension

    def is_univariate(self) -> bool:
        """``True`` when the GMPI has a single unknown (the case of Lemma 4.1)."""
        return self.dimension == 1

    def degree_gap(self) -> Fraction:
        """``deg(M) − deg(P)``; for a univariate GMPI it is positive iff solvable."""
        return self.monomial.degree() - self.polynomial.degree()

    def is_solution_float(self, point: Sequence[float], tolerance: float = 1e-12) -> bool:
        """Numerical check ``P(point) < M(point)`` (used where exponents are fractional)."""
        return (
            self.polynomial.float_evaluate(point)
            < self.monomial.float_evaluate(point) - tolerance
        )

    def render(self, unknown_names: Sequence[str] | None = None) -> str:
        """Render the inequality as ``P < M``."""
        return f"{self.polynomial.render(unknown_names)} < {self.monomial.render(unknown_names)}"

    def __str__(self) -> str:
        return self.render()
