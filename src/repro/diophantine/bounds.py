"""Solution-size bounds for integer linear inequality systems (Lemma 5.1).

Lemma 5.1 (a reformulation of a classic result on integer programming,
see Schrijver / Nemhauser–Wolsey) states that an n-dimensional linear
inequality system with integer data admits a positive solution iff it admits
a natural one whose component sum is at most ``6·n³·φ``, where ``φ`` is the
maximum, over the inequalities, of the sum of the coefficients plus the
constant term.  The guess-&-check procedure of Theorem 5.1 uses this bound
to keep the universally guessed vector ``d`` polynomially small.
"""

from __future__ import annotations

from fractions import Fraction

from repro.linalg.systems import HomogeneousStrictSystem

__all__ = ["solution_component_bound", "phi"]


def phi(system: HomogeneousStrictSystem) -> int:
    """The quantity ``φ`` of Lemma 5.1 for a homogeneous system (constants are 0).

    ``φ = max_i Σ_j a_{i,j}``, clamped from below at 1 so the bound never
    degenerates (the lemma assumes at least one inequality and positive
    data; an all-non-positive row sum simply means very small solutions
    suffice).
    """
    if len(system) == 0:
        return 1
    maximum = system.max_coefficient_sum()
    ceiling = -(-maximum.numerator // maximum.denominator) if isinstance(maximum, Fraction) else int(maximum)
    return max(1, int(ceiling))


def solution_component_bound(system: HomogeneousStrictSystem) -> int:
    """The bound ``6·n³·φ`` on the component sum of a candidate natural solution.

    This is the ``sb(q1(t), q2(x2))``-style bound used by the reference
    implementation of the Theorem 5.1 guess-&-check decision procedure.
    """
    n = max(1, system.dimension)
    return 6 * n**3 * phi(system)
