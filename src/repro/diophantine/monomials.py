"""Monomials over a fixed vector of unknowns.

A monomial is written ``a · u^e = a · u_1^{e_1} ··· u_n^{e_n}`` where ``a``
is a non-negative rational coefficient and ``e`` is the exponent vector.
Monomial–polynomial inequalities (Definition 4.1) restrict the left-hand
monomial to coefficient 1 and natural exponents; the *generalised* variant
(GMPIs) allows non-negative real — here rational — exponents, which is what
the fresh-unknown substitution ``u_j = u^{ε_j}`` of Theorem 4.1 produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.exceptions import DiophantineError, DimensionMismatchError

__all__ = ["Monomial"]


def _check_exponents(exponents: Sequence[object]) -> tuple[Fraction, ...]:
    converted = []
    for exponent in exponents:
        value = Fraction(exponent)
        if value < 0:
            raise DiophantineError(f"exponents must be non-negative, got {exponent}")
        converted.append(value)
    return tuple(converted)


@dataclass(frozen=True)
class Monomial:
    """An immutable monomial ``coefficient · u^exponents``.

    ``exponents`` are stored as exact fractions; :meth:`is_integral` reports
    whether they are all integers (i.e. whether the monomial is admissible
    in a plain MPI as opposed to a GMPI).
    """

    coefficient: Fraction
    exponents: tuple[Fraction, ...]

    def __init__(self, coefficient: object, exponents: Sequence[object]) -> None:
        value = Fraction(coefficient)
        if value < 0:
            raise DiophantineError(f"coefficients must be non-negative, got {coefficient}")
        object.__setattr__(self, "coefficient", value)
        object.__setattr__(self, "exponents", _check_exponents(exponents))

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of unknowns the monomial ranges over."""
        return len(self.exponents)

    def degree(self) -> Fraction:
        """Total degree: the sum of the exponents."""
        return sum(self.exponents, Fraction(0))

    def is_integral(self) -> bool:
        """``True`` when every exponent is a (non-negative) integer."""
        return all(exponent.denominator == 1 for exponent in self.exponents)

    def integer_exponents(self) -> tuple[int, ...]:
        """The exponents as plain integers; raises unless :meth:`is_integral`."""
        if not self.is_integral():
            raise DiophantineError(f"monomial {self} has non-integer exponents")
        return tuple(int(exponent) for exponent in self.exponents)

    def support(self) -> frozenset[int]:
        """Indices of unknowns appearing with a positive exponent."""
        return frozenset(index for index, exponent in enumerate(self.exponents) if exponent > 0)

    # ------------------------------------------------------------------ #
    # Evaluation and algebra
    # ------------------------------------------------------------------ #
    def evaluate(self, point: Sequence[object]) -> Fraction:
        """Value of the monomial at *point* (exact, point components rational).

        Non-integer exponents are only supported when the corresponding
        point component is 0 or 1 (the only cases needed by the library,
        which evaluates GMPIs on integer grids in tests); other combinations
        raise :class:`DiophantineError` rather than silently losing
        exactness.
        """
        if len(point) != self.dimension:
            raise DimensionMismatchError(
                f"point of size {len(point)} supplied to a monomial of dimension {self.dimension}"
            )
        result = self.coefficient
        for value, exponent in zip(point, self.exponents):
            base = Fraction(value)
            if base < 0:
                raise DiophantineError("monomials are only evaluated on non-negative points")
            if exponent.denominator == 1:
                result *= base ** int(exponent)
            elif base in (0, 1):
                result *= base if exponent != 0 else Fraction(1)
            else:
                raise DiophantineError(
                    f"cannot exactly evaluate {base}^{exponent}; use float_evaluate instead"
                )
            if result == 0:
                return Fraction(0)
        return result

    def float_evaluate(self, point: Sequence[float]) -> float:
        """Floating-point value of the monomial at *point* (for plots/benches)."""
        if len(point) != self.dimension:
            raise DimensionMismatchError(
                f"point of size {len(point)} supplied to a monomial of dimension {self.dimension}"
            )
        result = float(self.coefficient)
        for value, exponent in zip(point, self.exponents):
            result *= float(value) ** float(exponent)
        return result

    def scale(self, factor: object) -> "Monomial":
        """The monomial with its coefficient multiplied by *factor*."""
        return Monomial(self.coefficient * Fraction(factor), self.exponents)

    def multiply(self, other: "Monomial") -> "Monomial":
        """Product of two monomials over the same unknowns."""
        if self.dimension != other.dimension:
            raise DimensionMismatchError(
                f"cannot multiply monomials of dimensions {self.dimension} and {other.dimension}"
            )
        return Monomial(
            self.coefficient * other.coefficient,
            tuple(a + b for a, b in zip(self.exponents, other.exponents)),
        )

    def substitute_power(self, epsilon: Sequence[object]) -> "Monomial":
        """The 1-dimensional monomial obtained by setting ``u_j = u^{ε_j}``.

        This is the substitution at the heart of Theorem 4.1: the exponent of
        the resulting univariate monomial is the dot product ``e ⊺ · ε``.
        """
        if len(epsilon) != self.dimension:
            raise DimensionMismatchError(
                f"parameter vector of size {len(epsilon)} for a monomial of dimension {self.dimension}"
            )
        exponent = sum(
            (e * Fraction(value) for e, value in zip(self.exponents, epsilon)), Fraction(0)
        )
        return Monomial(self.coefficient, (exponent,))

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #
    def render(self, unknown_names: Sequence[str] | None = None) -> str:
        """Human-readable form, e.g. ``u1^2·u3`` or ``3·u1^2``."""
        names = unknown_names or [f"u{i + 1}" for i in range(self.dimension)]
        pieces = []
        for name, exponent in zip(names, self.exponents):
            if exponent == 0:
                continue
            if exponent == 1:
                pieces.append(name)
            else:
                pieces.append(f"{name}^{exponent}")
        body = "·".join(pieces) if pieces else "1"
        if self.coefficient == 1:
            return body
        return f"{self.coefficient}·{body}"

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"Monomial({self.coefficient}, {tuple(str(e) for e in self.exponents)})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def unit(cls, dimension: int) -> "Monomial":
        """The constant monomial 1 over *dimension* unknowns."""
        return cls(1, (0,) * dimension)

    @classmethod
    def from_exponents(cls, exponents: Sequence[int], coefficient: object = 1) -> "Monomial":
        """Build ``coefficient · u^exponents``."""
        return cls(coefficient, exponents)
