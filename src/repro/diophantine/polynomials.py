"""Polynomials over a fixed vector of unknowns, as sums of monomials.

A :class:`Polynomial` is a finite sum of :class:`Monomial` objects, all over
the same unknowns.  Monomials with identical exponent vectors are merged by
summing their coefficients, which keeps the representation canonical and
makes equality structural.  The zero polynomial (empty sum) is allowed: it
arises in the bag-containment encoding when the containing query admits no
containment mapping into the grounded containee.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence

from repro.exceptions import DimensionMismatchError, DiophantineError
from repro.diophantine.monomials import Monomial

__all__ = ["Polynomial"]


class Polynomial:
    """An immutable polynomial with non-negative rational coefficients."""

    __slots__ = ("_monomials", "_dimension")

    def __init__(self, monomials: Iterable[Monomial], dimension: int | None = None) -> None:
        merged: dict[tuple[Fraction, ...], Fraction] = {}
        inferred_dimension = dimension
        for monomial in monomials:
            if not isinstance(monomial, Monomial):
                raise DiophantineError(f"{monomial!r} is not a Monomial")
            if inferred_dimension is None:
                inferred_dimension = monomial.dimension
            elif monomial.dimension != inferred_dimension:
                raise DimensionMismatchError(
                    f"monomial of dimension {monomial.dimension} in a polynomial of dimension {inferred_dimension}"
                )
            if monomial.coefficient == 0:
                continue
            merged[monomial.exponents] = merged.get(monomial.exponents, Fraction(0)) + monomial.coefficient
        if inferred_dimension is None:
            raise DiophantineError("the dimension of an empty polynomial must be given explicitly")
        self._dimension = inferred_dimension
        self._monomials: tuple[Monomial, ...] = tuple(
            Monomial(coefficient, exponents)
            for exponents, coefficient in sorted(merged.items(), key=lambda item: item[0])
        )

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def monomials(self) -> tuple[Monomial, ...]:
        """The merged monomials, in a deterministic order."""
        return self._monomials

    @property
    def dimension(self) -> int:
        """Number of unknowns."""
        return self._dimension

    def __len__(self) -> int:
        return len(self._monomials)

    def __iter__(self) -> Iterator[Monomial]:
        return iter(self._monomials)

    def is_zero(self) -> bool:
        """``True`` for the empty sum."""
        return not self._monomials

    def degree(self) -> Fraction:
        """Maximal total degree over the monomials (0 for the zero polynomial)."""
        if not self._monomials:
            return Fraction(0)
        return max(monomial.degree() for monomial in self._monomials)

    def is_integral(self) -> bool:
        """``True`` when every monomial has integer exponents."""
        return all(monomial.is_integral() for monomial in self._monomials)

    def has_constant_term(self) -> bool:
        """``True`` when some monomial has all exponents equal to zero."""
        return any(all(exponent == 0 for exponent in monomial.exponents) for monomial in self._monomials)

    def coefficients(self) -> tuple[Fraction, ...]:
        """Coefficients of the monomials, in the canonical order."""
        return tuple(monomial.coefficient for monomial in self._monomials)

    def exponent_vectors(self) -> tuple[tuple[Fraction, ...], ...]:
        """Exponent vectors of the monomials, in the canonical order."""
        return tuple(monomial.exponents for monomial in self._monomials)

    # ------------------------------------------------------------------ #
    # Evaluation and algebra
    # ------------------------------------------------------------------ #
    def evaluate(self, point: Sequence[object]) -> Fraction:
        """Exact value of the polynomial at *point*."""
        if len(point) != self._dimension:
            raise DimensionMismatchError(
                f"point of size {len(point)} supplied to a polynomial of dimension {self._dimension}"
            )
        return sum((monomial.evaluate(point) for monomial in self._monomials), Fraction(0))

    def float_evaluate(self, point: Sequence[float]) -> float:
        """Floating-point value of the polynomial at *point*."""
        return sum(monomial.float_evaluate(point) for monomial in self._monomials)

    def add(self, other: "Polynomial") -> "Polynomial":
        """Sum of two polynomials over the same unknowns."""
        if other.dimension != self._dimension:
            raise DimensionMismatchError(
                f"cannot add polynomials of dimensions {self._dimension} and {other.dimension}"
            )
        return Polynomial(list(self._monomials) + list(other.monomials), self._dimension)

    def scale(self, factor: object) -> "Polynomial":
        """The polynomial with every coefficient multiplied by *factor*."""
        return Polynomial([monomial.scale(factor) for monomial in self._monomials], self._dimension)

    def substitute_power(self, epsilon: Sequence[object]) -> "Polynomial":
        """Univariate polynomial obtained by setting ``u_j = u^{ε_j}`` (Theorem 4.1)."""
        return Polynomial(
            [monomial.substitute_power(epsilon) for monomial in self._monomials], 1
        )

    # ------------------------------------------------------------------ #
    # Display / equality
    # ------------------------------------------------------------------ #
    def render(self, unknown_names: Sequence[str] | None = None) -> str:
        """Human-readable rendering, ``0`` for the zero polynomial."""
        if not self._monomials:
            return "0"
        return " + ".join(monomial.render(unknown_names) for monomial in self._monomials)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"Polynomial({self.render()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._dimension == other._dimension and self._monomials == other._monomials

    def __hash__(self) -> int:
        return hash((self._dimension, self._monomials))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls, dimension: int) -> "Polynomial":
        """The zero polynomial over *dimension* unknowns."""
        return cls((), dimension)

    @classmethod
    def from_terms(
        cls, terms: Iterable[tuple[object, Sequence[int]]], dimension: int | None = None
    ) -> "Polynomial":
        """Build a polynomial from ``(coefficient, exponents)`` pairs."""
        return cls(
            [Monomial(coefficient, exponents) for coefficient, exponents in terms], dimension
        )
