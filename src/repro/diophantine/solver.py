"""Deciding monomial–polynomial inequalities (Theorems 4.1 and 4.2).

The decision pipeline follows the paper exactly:

1. the n-MPI ``P(u) < M(u)`` is translated into the homogeneous strict
   linear system ``{(e − e_i)ᵀ·ε > 0}``;
2. the system (together with positivity of ``ε`` — see
   :mod:`repro.linalg.systems` for why that is equivalent to asking for a
   natural solution) is decided exactly by Fourier–Motzkin elimination, or
   numerically by the scipy LP fast path;
3. when feasible, the rational solution is scaled to a natural vector ``d``,
   a base ``ξ⋆`` satisfying the induced univariate inequality is found by
   the explicit argument of Lemma 4.1, and the Diophantine witness
   ``ξ_j = ξ⋆^{d_j}`` of the original MPI is assembled and re-verified.

Every positive answer therefore carries a concrete, exactly verified
Diophantine solution of the MPI.

One generalisation beyond the paper: Theorem 4.1 characterises solutions
with *positive* components, which is all the bag-containment encodings ever
need because their monomial mentions every unknown with exponent ≥ 1
(Proposition 4.1 then forces positivity).  A *general* MPI, however, may
only be solvable by zeroing unknowns that do not occur in the monomial —
``u2 < 1`` is solved by ``u2 = 0`` alone.  The solver therefore first sets
every unknown outside the monomial's support to zero (this can only shrink
the polynomial and never changes the monomial), drops the polynomial
monomials that vanish, and runs the paper's reduction on the restricted
inequality, whose monomial now has all-positive exponents.  This makes the
module complete for arbitrary MPIs while remaining a conservative extension
of the paper's procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.diophantine.inequalities import GeneralizedMPI, MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.exceptions import DiophantineError, LinearSystemError
from repro.linalg.fourier_motzkin import solve_strict_system
from repro.linalg.lp_scipy import lp_feasibility
from repro.linalg.rationals import scale_to_natural
from repro.linalg.systems import HomogeneousStrictSystem

__all__ = [
    "MpiDecision",
    "decide_mpi",
    "decide_mpi_via_lp",
    "solve_univariate_gmpi",
    "smallest_univariate_solution",
    "witness_from_linear_solution",
]


@dataclass(frozen=True)
class MpiDecision:
    """Outcome of an MPI solvability decision.

    Attributes
    ----------
    solvable:
        Whether the MPI admits a Diophantine (natural) solution.
    inequality:
        The decided MPI.
    linear_system:
        The associated homogeneous strict system of Theorem 4.1.
    linear_solution:
        A natural solution ``d`` of the linear system (``None`` when unsolvable).
    witness:
        A natural solution ``ξ`` of the MPI itself (``None`` when unsolvable).
    method:
        Which feasibility engine answered: ``"fourier-motzkin"``, ``"lp"``,
        ``"trivial"``, or ``"lp-fallback"`` (the LP verdict accepted after
        Fourier–Motzkin exceeded its elimination row cap).
    """

    solvable: bool
    inequality: MonomialPolynomialInequality
    linear_system: HomogeneousStrictSystem
    linear_solution: tuple[int, ...] | None
    witness: tuple[int, ...] | None
    method: str

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.solvable


def solve_univariate_gmpi(gmpi: GeneralizedMPI) -> bool:
    """Lemma 4.1: a 1-GMPI is solvable iff ``deg(P) < deg(M)``.

    The zero polynomial has degree 0 by convention but is dominated by any
    monomial of positive degree and equals 0 < 1 at ``u = 1``, so it is
    treated as always solvable.
    """
    if not gmpi.is_univariate():
        raise DiophantineError("the degree criterion applies to univariate GMPIs only")
    if gmpi.polynomial.is_zero():
        return True
    return gmpi.polynomial.degree() < gmpi.monomial.degree()


def smallest_univariate_solution(gmpi: GeneralizedMPI, search_limit: int = 10**9) -> int:
    """The smallest natural solution of a solvable univariate MPI/GMPI with integer exponents.

    The existence argument of Lemma 4.1 only needs the asymptotic dominance
    of the monomial; here the actual minimum is found by doubling up to a
    point that satisfies the inequality and then binary-searching down.
    Raises :class:`DiophantineError` when the inequality is unsolvable.
    """
    if not solve_univariate_gmpi(gmpi):
        raise DiophantineError(f"the univariate inequality {gmpi} has no Diophantine solution")
    if not (gmpi.polynomial.is_integral() and gmpi.monomial.is_integral()):
        raise DiophantineError("exact search requires integer exponents")

    def satisfied(value: int) -> bool:
        point = (Fraction(value),)
        return gmpi.polynomial.evaluate(point) < gmpi.monomial.evaluate(point)

    if satisfied(1):
        return 1
    upper = 2
    while not satisfied(upper):
        upper *= 2
        if upper > search_limit:
            raise DiophantineError(
                f"no solution of {gmpi} found below {search_limit}; "
                "the inequality is solvable but its minimum solution is out of range"
            )
    low, high = upper // 2, upper
    while low + 1 < high:
        middle = (low + high) // 2
        if satisfied(middle):
            high = middle
        else:
            low = middle
    return high


def witness_from_linear_solution(
    inequality: MonomialPolynomialInequality, linear_solution: Sequence[int]
) -> tuple[int, ...]:
    """Build a Diophantine solution ``ξ`` of the MPI from a natural solution ``d``.

    Following the "if" direction of Theorem 4.1: substitute ``u_j = u^{d_j}``
    to obtain a univariate MPI whose degrees are separated, find a base
    ``ξ⋆`` satisfying it (Lemma 4.1), and return ``ξ_j = ξ⋆^{d_j}``.  The
    result is verified exactly before being returned.
    """
    d = tuple(int(component) for component in linear_solution)
    if len(d) != inequality.dimension:
        raise DiophantineError(
            f"linear solution of size {len(d)} for an MPI of dimension {inequality.dimension}"
        )
    if any(component < 0 for component in d):
        raise DiophantineError(f"linear solutions must be natural vectors, got {d}")

    univariate = inequality.specialize(d)
    base = smallest_univariate_solution(univariate)
    witness = tuple(base**component for component in d)
    if not inequality.is_solution(witness):
        raise DiophantineError(
            f"internal error: constructed witness {witness} does not solve {inequality}"
        )
    return witness


def _restrict_to_monomial_support(
    inequality: MonomialPolynomialInequality,
) -> tuple[tuple[int, ...], MonomialPolynomialInequality | None]:
    """Zero out the unknowns missing from the monomial and project the MPI.

    Returns ``(support, restricted)`` where *support* lists the unknown
    indices that occur in the monomial (in increasing order) and *restricted*
    is the MPI over just those unknowns — or ``None`` when the support is
    empty (the monomial is the constant 1), in which case the original MPI
    is solvable iff the polynomial's constant coefficient sum is below 1
    (witnessed by the all-zero vector).
    """
    support = tuple(sorted(inequality.monomial.support()))
    if len(support) == inequality.dimension:
        return support, inequality
    if not support:
        return support, None

    projected_monomial = Monomial(
        1, tuple(inequality.monomial.exponents[index] for index in support)
    )
    surviving = [
        Monomial(
            poly_monomial.coefficient,
            tuple(poly_monomial.exponents[index] for index in support),
        )
        for poly_monomial in inequality.polynomial
        if poly_monomial.support() <= set(support)
    ]
    projected_polynomial = Polynomial(surviving, dimension=len(support))
    return support, MonomialPolynomialInequality(projected_polynomial, projected_monomial)


def _expand_witness(
    dimension: int, support: tuple[int, ...], restricted_witness: Sequence[int]
) -> tuple[int, ...]:
    """Re-insert zeros for the unknowns that were projected away."""
    witness = [0] * dimension
    for index, value in zip(support, restricted_witness):
        witness[index] = int(value)
    return tuple(witness)


def _constant_coefficient_sum(inequality: MonomialPolynomialInequality) -> Fraction:
    """Sum of the coefficients of the polynomial's constant monomials."""
    return sum(
        (
            monomial.coefficient
            for monomial in inequality.polynomial
            if all(exponent == 0 for exponent in monomial.exponents)
        ),
        Fraction(0),
    )


def _decision_from_linear(
    inequality: MonomialPolynomialInequality,
    system: HomogeneousStrictSystem,
    support: tuple[int, ...],
    restricted: MonomialPolynomialInequality,
    rational_witness: tuple[Fraction, ...] | None,
    method: str,
) -> MpiDecision:
    if rational_witness is None:
        return MpiDecision(False, inequality, system, None, None, method)
    d = scale_to_natural(rational_witness)
    if not restricted.to_linear_system().is_solution(d):  # pragma: no cover - sanity check
        raise DiophantineError(f"scaled linear solution {d} does not satisfy the system")
    restricted_witness = witness_from_linear_solution(restricted, d)
    witness = _expand_witness(inequality.dimension, support, restricted_witness)
    if not inequality.is_solution(witness):  # pragma: no cover - sanity check
        raise DiophantineError(f"expanded witness {witness} does not solve {inequality}")
    linear_solution = _expand_witness(inequality.dimension, support, d)
    return MpiDecision(True, inequality, system, linear_solution, witness, method)


def _decide_with(
    inequality: MonomialPolynomialInequality, method: str, fall_back_to_exact: bool = True
) -> MpiDecision:
    """Shared driver for the exact and LP-first decision paths."""
    system = inequality.to_linear_system()

    support, restricted = _restrict_to_monomial_support(inequality)
    if restricted is None:
        # The monomial is the constant 1: solvable iff the constant part of
        # the polynomial stays below 1, witnessed by the all-zero vector.
        if _constant_coefficient_sum(inequality) < 1:
            witness = (0,) * inequality.dimension
            return MpiDecision(True, inequality, system, witness, witness, "trivial")
        return MpiDecision(False, inequality, system, None, None, "trivial")

    if restricted.polynomial.is_zero():
        # 0 < M is solved by ones on the monomial's support (zeros elsewhere).
        witness = _expand_witness(inequality.dimension, support, (1,) * len(support))
        linear_solution = (0,) * inequality.dimension
        return MpiDecision(True, inequality, system, linear_solution, witness, "trivial")

    restricted_system = restricted.to_linear_system()
    if method == "lp":
        outcome = lp_feasibility(restricted_system, require_positive=True)
        if outcome.feasible and outcome.witness is not None:
            return _decision_from_linear(
                inequality, system, support, restricted, outcome.witness, "lp"
            )
        if not fall_back_to_exact:
            return MpiDecision(outcome.feasible, inequality, system, None, None, "lp")

    try:
        exact = solve_strict_system(restricted_system, require_positive=True)
    except LinearSystemError:
        # Fourier–Motzkin blew its row cap mid-elimination.  Rather than
        # surfacing an error for a decidable instance, fall back to the LP
        # formulation, which is insensitive to elimination blow-up: a
        # feasible outcome carries an exactly-verified rational witness (so
        # the positive answer is certified as usual), while an infeasible
        # outcome is the solver's tolerance-based verdict — strictly more
        # information than the error, and tagged ``method="lp-fallback"``
        # so consumers can tell it from an exact elimination.
        outcome = lp_feasibility(restricted_system, require_positive=True)
        if outcome.feasible and outcome.witness is not None:
            return _decision_from_linear(
                inequality, system, support, restricted, outcome.witness, "lp-fallback"
            )
        if not outcome.feasible:
            return MpiDecision(False, inequality, system, None, None, "lp-fallback")
        raise  # feasible but unverifiable witness: no trustworthy answer
    return _decision_from_linear(
        inequality,
        system,
        support,
        restricted,
        exact.witness if exact.feasible else None,
        "fourier-motzkin",
    )


def decide_mpi(inequality: MonomialPolynomialInequality) -> MpiDecision:
    """Decide an MPI exactly (Theorem 4.2), producing a verified witness when solvable."""
    return _decide_with(inequality, method="exact")


def decide_mpi_via_lp(
    inequality: MonomialPolynomialInequality, fall_back_to_exact: bool = True
) -> MpiDecision:
    """Decide an MPI through the scipy LP fast path.

    A positive LP verdict is only accepted when its rounded rational witness
    verifies exactly; otherwise (and for negative verdicts, which a
    floating-point solver cannot certify) the decision falls back to the
    exact solver unless *fall_back_to_exact* is disabled, in which case the
    LP verdict is returned as-is with ``method="lp"``.
    """
    return _decide_with(inequality, method="lp", fall_back_to_exact=fall_back_to_exact)
