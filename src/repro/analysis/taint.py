"""Flow-sensitive determinism-taint analysis.

The paper reproduction's central promise is bit-identical artefacts:
verdicts, certificates, corpora and persistent-cache digests must not
depend on hash order, object identity, the environment or the clock.
PR 8's syntactic ``set-order-iteration`` rule can only pattern-match "a
set is iterated here" — it cannot see that the set was ``sorted()`` two
lines earlier, nor that the resulting value never reaches anything that
is serialized.  This analyzer tracks *taint* through each function's CFG
(:mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`) and reports
only when a value that is still nondeterministic **reaches a sink**.

Taint kinds
-----------
``unordered``
    The value is an unordered container (``set``/``frozenset``).  Holding
    or testing membership in one is harmless — and the canonical encoders
    (``persistent_digest``) sort containers themselves — so this kind is
    *not* reportable at sinks; it exists to detect the moment an iteration
    order is captured.
``iteration-order``
    The value's content or order was fixed by iterating an unordered
    container (``list(s)``, a comprehension over a set, an accumulator
    appended inside a set-order loop, ``s.pop()``).
``identity`` / ``environment`` / ``time``
    The value derives from ``id()``/``hash()``, environment reads
    (``os.environ``/``os.getenv``/``os.urandom``) or clock reads
    (``time.time()``, ``datetime.now()``).

Sanitizers
----------
``sorted(...)`` and ``.sort()`` erase ``unordered``/``iteration-order``;
order-insensitive aggregations (``len``/``sum``/``min``/``max``/``any``/
``all``) do the same, as do the canonical-key helpers
(``term_sort_key``, ``persistent_digest`` itself) and the interning
layer's dense-id lookups — their outputs are deterministic functions of
the multiset, not of the iteration order.

Sinks
-----
Calls whose arguments become durable or observable artefacts: the
session ``Outcome`` and certificate constructors, corpus/JSON
serialization (``json.dump(s)``, ``save_corpus``, ``pair_to_dict``) and
``persistent_digest`` inputs.  A reportable taint kind still live in an
argument at the call site is a ``determinism-taint`` finding.

Known approximations (documented, deliberate): augmented arithmetic
accumulation (``total += x``) inside a set-order loop is treated as an
order-insensitive reduction unless the operand is a string; calls the
analyzer does not model propagate only reportable kinds and never
introduce order taint.  Both choices trade recall for a zero
false-positive clean tree, which is what lets the rule run in CI.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.cfg import Block, ControlFlowGraph, StatementNode, build_cfg
from repro.analysis.dataflow import State, run_analysis

__all__ = [
    "ENVIRONMENT",
    "IDENTITY",
    "ITERATION_ORDER",
    "REPORTABLE",
    "TIME",
    "UNORDERED",
    "analyze_module",
]

UNORDERED = "unordered"
ITERATION_ORDER = "iteration-order"
IDENTITY = "identity"
ENVIRONMENT = "environment"
TIME = "time"

#: The kinds that constitute a finding when they reach a sink.
REPORTABLE = frozenset({ITERATION_ORDER, IDENTITY, ENVIRONMENT, TIME})

#: Kinds that survive element extraction: iterating or indexing a
#: container whose *order* is tainted yields elements whose values are
#: still deterministic; only value-level kinds ride along.
_VALUE_KINDS = frozenset({IDENTITY, ENVIRONMENT, TIME})

_EMPTY: frozenset[str] = frozenset()

#: Builtins that construct unordered containers.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Builtins that capture an iteration order into an ordered value.
_ORDER_CAPTURING = frozenset({"list", "tuple", "dict", "iter", "enumerate", "reversed"})

#: Order-insensitive aggregations: deterministic functions of the multiset.
_AGGREGATIONS = frozenset({"len", "sum", "min", "max", "any", "all"})

#: Deterministic canonicalisers: their output depends only on the value,
#: never on iteration order (``persistent_digest`` sorts internally;
#: ``term_sort_key`` is the canonical structural ordering; the interning
#: layer's dense-id paths are deterministic given the interned content).
_CANONICALIZERS = frozenset({"sorted", "persistent_digest", "term_sort_key"})

#: Method names that preserve the receiver's container kinds.
_PRESERVING_METHODS = frozenset(
    {"copy", "union", "intersection", "difference", "symmetric_difference"}
)

#: Mutating method calls that absorb argument taint into the receiver.
_MUTATORS = frozenset({"append", "extend", "insert", "add", "update", "setdefault"})

#: Mutators that additionally capture insertion order when executed inside
#: a loop over an unordered container (``add`` keeps a set unordered and
#: ``update`` on a set is order-free; on a dict it is not, but the shared
#: name forces a choice — order-capturing is the safe one for dicts and
#: the fixtures pin the set case via ``add``).
_ORDER_CAPTURING_MUTATORS = frozenset({"append", "extend", "insert", "update", "setdefault"})

#: ``time``-module attributes whose call yields a clock read.
_TIME_CALLS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)

#: ``datetime``-ish constructors that read the clock.
_NOW_CALLS = frozenset({"now", "utcnow", "today"})


def _call_name(func: ast.expr) -> str | None:
    """The simple name of a call target (``f`` or ``obj.f``), if any."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_name(func: ast.expr) -> str | None:
    """For ``obj.method(...)``, the plain name of ``obj``, if it has one."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _is_environ_access(node: ast.expr) -> bool:
    """``os.environ`` (or a bare ``environ``) as an expression."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    return isinstance(node, ast.Name) and node.id == "environ"


def _target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class _Finding:
    """One taint observation, pre-rendered for the lint layer."""

    __slots__ = ("line", "message")

    def __init__(self, line: int, message: str) -> None:
        self.line = line
        self.message = message


class DeterminismTaint:
    """The :class:`repro.analysis.dataflow.Analysis` for determinism taint."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg

    # ------------------------------------------------------------------ #
    # Expression taint evaluation
    # ------------------------------------------------------------------ #
    def taint_of(self, node: ast.expr | None, state: State) -> frozenset[str]:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return state.get(node.id, _EMPTY)
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Set):
            return frozenset({UNORDERED}) | (self._union(node.elts, state) & _VALUE_KINDS)
        if isinstance(node, ast.Call):
            return self._call_taint(node, state)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension_taint(node, state)
        if isinstance(node, ast.Attribute):
            return self.taint_of(node.value, state)
        if isinstance(node, ast.Subscript):
            if _is_environ_access(node.value):
                return frozenset({ENVIRONMENT})
            combined = self.taint_of(node.value, state) | self.taint_of(node.slice, state)
            return combined - frozenset({UNORDERED})
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left, state) | self.taint_of(node.right, state)
        if isinstance(node, ast.BoolOp):
            return self._union(node.values, state)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand, state)
        if isinstance(node, ast.Compare):
            combined = self.taint_of(node.left, state) | self._union(node.comparators, state)
            # Membership/equality results do not inherit iteration order.
            return combined & _VALUE_KINDS
        if isinstance(node, ast.IfExp):
            return (
                self.taint_of(node.body, state)
                | self.taint_of(node.orelse, state)
                | (self.taint_of(node.test, state) & REPORTABLE)
            )
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._union(node.elts, state) & REPORTABLE
        if isinstance(node, ast.Dict):
            keys = self._union([key for key in node.keys if key is not None], state)
            values = self._union(node.values, state)
            return (keys | values) & REPORTABLE
        if isinstance(node, ast.JoinedStr):
            return self._union(node.values, state) & REPORTABLE
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value, state)
        if isinstance(node, ast.NamedExpr):
            taint = self.taint_of(node.value, state)
            if isinstance(node.target, ast.Name):
                state[node.target.id] = taint
            return taint
        if isinstance(node, (ast.Await, ast.Starred)):
            return self.taint_of(node.value, state)
        if isinstance(node, ast.Lambda):
            return _EMPTY
        return _EMPTY

    def _union(self, nodes: Iterable[ast.expr], state: State) -> frozenset[str]:
        combined: frozenset[str] = _EMPTY
        for node in nodes:
            combined |= self.taint_of(node, state)
        return combined

    def _argument_taint(self, call: ast.Call, state: State) -> frozenset[str]:
        combined = self._union(call.args, state)
        for keyword in call.keywords:
            combined |= self.taint_of(keyword.value, state)
        return combined

    def _call_taint(self, call: ast.Call, state: State) -> frozenset[str]:
        name = _call_name(call.func)
        arguments = self._argument_taint(call, state)
        if name in _SET_CONSTRUCTORS:
            return frozenset({UNORDERED}) | (arguments & _VALUE_KINDS)
        if name in ("id", "hash"):
            return frozenset({IDENTITY}) | (arguments & REPORTABLE)
        if name in ("getenv", "urandom") or (
            isinstance(call.func, ast.Attribute) and _is_environ_access(call.func.value)
        ):
            return frozenset({ENVIRONMENT})
        if name in _TIME_CALLS or name in _NOW_CALLS:
            return frozenset({TIME})
        if name in _CANONICALIZERS:
            return arguments - frozenset({UNORDERED, ITERATION_ORDER})
        if name in _AGGREGATIONS:
            return arguments & _VALUE_KINDS
        if name in _ORDER_CAPTURING or name == "join":
            if arguments & frozenset({UNORDERED, ITERATION_ORDER}):
                return (arguments & REPORTABLE) | frozenset({ITERATION_ORDER})
            return arguments & REPORTABLE
        if name == "pop":
            receiver = _receiver_name(call.func)
            if receiver is not None and UNORDERED in state.get(receiver, _EMPTY):
                return frozenset({ITERATION_ORDER})
        if name in _PRESERVING_METHODS:
            receiver = _receiver_name(call.func)
            receiver_taint = (
                state.get(receiver, _EMPTY) if receiver is not None else _EMPTY
            )
            return receiver_taint | (arguments & _VALUE_KINDS)
        if name == "next":
            return arguments
        # Unknown callables: propagate reportable kinds from the arguments
        # (and the receiver), never introduce order taint of their own.
        receiver = _receiver_name(call.func)
        receiver_taint = state.get(receiver, _EMPTY) if receiver is not None else _EMPTY
        return (arguments | receiver_taint) & REPORTABLE

    def _comprehension_taint(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
        state: State,
    ) -> frozenset[str]:
        local = dict(state)
        result: frozenset[str] = _EMPTY
        order_tainted = False
        for generator in node.generators:
            iter_taint = self.taint_of(generator.iter, local)
            if iter_taint & frozenset({UNORDERED, ITERATION_ORDER}):
                order_tainted = True
            element_taint = iter_taint & _VALUE_KINDS
            for name in _target_names(generator.target):
                local[name] = element_taint
            for condition in generator.ifs:
                self.taint_of(condition, local)  # walrus side effects only
        if isinstance(node, ast.DictComp):
            result |= (
                self.taint_of(node.key, local) | self.taint_of(node.value, local)
            ) & REPORTABLE
        else:
            result |= self.taint_of(node.elt, local) & REPORTABLE
        if isinstance(node, ast.SetComp):
            # The produced set is itself unordered; capturing order comes
            # later, if and when it is iterated.
            return frozenset({UNORDERED}) | (result & _VALUE_KINDS)
        if order_tainted:
            result |= frozenset({ITERATION_ORDER})
        return result

    # ------------------------------------------------------------------ #
    # The dataflow hooks
    # ------------------------------------------------------------------ #
    def initial_state(self, cfg: ControlFlowGraph) -> State:
        state: State = {}
        root = cfg.root
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = root.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                state[arg.arg] = self._annotation_taint(arg.annotation)
            if arguments.vararg is not None:
                state[arguments.vararg.arg] = _EMPTY
            if arguments.kwarg is not None:
                state[arguments.kwarg.arg] = _EMPTY
        return state

    @staticmethod
    def _annotation_taint(annotation: ast.expr | None) -> frozenset[str]:
        """Parameters annotated as sets start life unordered.

        An unannotated parameter is assumed ordered (flagging every
        ``list(param)`` would drown the tree in false positives); a
        ``set``/``frozenset`` annotation is an explicit declaration that
        iteration order is not meaningful, so capturing it is a defect.
        """
        base = annotation
        if isinstance(base, ast.Subscript):  # set[str], frozenset[Atom], ...
            base = base.value
        name: str | None = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):  # typing.AbstractSet etc.
            name = base.attr
        if name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"):
            return frozenset({UNORDERED})
        return _EMPTY

    def _in_nondet_loop(self, state: State, block: Block) -> bool:
        return any(state.get(f"@loop{head}") for head in block.loop_heads)

    def transfer(self, statement: StatementNode, state: State, block: Block) -> None:
        if isinstance(statement, ast.Assign):
            taint = self.taint_of(statement.value, state)
            for target in statement.targets:
                self._assign(target, taint, state, block)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            taint = self.taint_of(statement.value, state)
            self._assign(statement.target, taint, state, block)
        elif isinstance(statement, ast.AugAssign):
            self._aug_assign(statement, state, block)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._for_header(statement, state, block)
        elif isinstance(statement, (ast.While, ast.If)):
            self.taint_of(statement.test, state)  # walrus side effects
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                taint = self.taint_of(item.context_expr, state)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint, state, block)
        elif isinstance(statement, ast.excepthandler):
            if statement.name:
                state[statement.name] = _EMPTY
        elif isinstance(statement, ast.Expr):
            self._expression_statement(statement.value, state, block)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            state[statement.name] = _EMPTY
        elif isinstance(statement, ast.Return):
            self.taint_of(statement.value, state)
        elif isinstance(statement, (ast.Import, ast.ImportFrom)):
            for alias in statement.names:
                state[(alias.asname or alias.name).split(".")[0]] = _EMPTY

    def _assign(
        self, target: ast.expr, taint: frozenset[str], state: State, block: Block
    ) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = taint  # strong, flow-sensitive update
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            element_taint = taint - frozenset({UNORDERED})
            for name in _target_names(target):
                state[name] = element_taint
            return
        # Attribute/subscript targets: weak update on the base object; a
        # keyed write inside a nondeterministic-order loop captures that
        # order in the container.
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name):
            added = taint & REPORTABLE
            if isinstance(target, ast.Subscript) and self._in_nondet_loop(state, block):
                added |= frozenset({ITERATION_ORDER})
            if added:
                state[base.id] = state.get(base.id, _EMPTY) | added

    def _aug_assign(self, statement: ast.AugAssign, state: State, block: Block) -> None:
        taint = self.taint_of(statement.value, state)
        order_sensitive = isinstance(statement.value, (ast.JoinedStr, ast.List)) or (
            isinstance(statement.value, ast.Constant)
            and isinstance(statement.value.value, str)
        )
        target = statement.target
        if isinstance(target, ast.Name):
            combined = state.get(target.id, _EMPTY) | (taint & REPORTABLE)
            if self._in_nondet_loop(state, block) and order_sensitive:
                combined |= frozenset({ITERATION_ORDER})
            state[target.id] = combined
        else:
            self._assign(target, taint, state, block)

    def _for_header(
        self, statement: ast.For | ast.AsyncFor, state: State, block: Block
    ) -> None:
        iter_taint = self.taint_of(statement.iter, state)
        element_taint = iter_taint & _VALUE_KINDS
        for name in _target_names(statement.target):
            state[name] = element_taint
        if iter_taint & frozenset({UNORDERED, ITERATION_ORDER}):
            state[f"@loop{block.index}"] = frozenset({ITERATION_ORDER})

    def _expression_statement(self, value: ast.expr, state: State, block: Block) -> None:
        if not isinstance(value, ast.Call):
            self.taint_of(value, state)
            return
        name = _call_name(value.func)
        receiver = _receiver_name(value.func)
        if receiver is not None and name == "sort":
            state[receiver] = state.get(receiver, _EMPTY) - frozenset(
                {UNORDERED, ITERATION_ORDER}
            )
            return
        if receiver is not None and name in _MUTATORS:
            added = self._argument_taint(value, state) & REPORTABLE
            if name in _ORDER_CAPTURING_MUTATORS and self._in_nondet_loop(state, block):
                added |= frozenset({ITERATION_ORDER})
            if added:
                state[receiver] = state.get(receiver, _EMPTY) | added
            return
        self.taint_of(value, state)

    # ------------------------------------------------------------------ #
    # Sinks
    # ------------------------------------------------------------------ #

    #: Call-target names whose arguments become durable artefacts.
    SINKS: dict[str, str] = {
        "persistent_digest": "a persistent cache digest",
        "dumps": "JSON serialization",
        "dump": "JSON serialization",
        "save_corpus": "a saved corpus",
        "pair_to_dict": "corpus serialization",
        "Outcome": "a session Outcome",
        "ContainmentCounterexample": "a containment certificate",
    }

    def observe(
        self, statement: StatementNode, state: State, block: Block
    ) -> Iterator[_Finding]:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        for node in self._statement_calls(statement):
            name = _call_name(node.func)
            if name not in self.SINKS:
                continue
            if name in ("dumps", "dump") and not self._is_json_call(node.func):
                continue
            local = dict(state)
            for argument in [*node.args, *[keyword.value for keyword in node.keywords]]:
                live = self.taint_of(argument, local) & REPORTABLE
                if live:
                    kinds = ", ".join(sorted(live))
                    # Anchor at the offending argument, so a suppression on
                    # that argument's line silences exactly this flow.
                    yield _Finding(
                        argument.lineno,
                        f"nondeterministic value ({kinds}) flows into "
                        f"{self.SINKS[name]} via {name}(); canonicalize it "
                        "(sorted()/stable keys) before it becomes an artefact",
                    )
                    break  # one finding per sink call

    @staticmethod
    def _is_json_call(func: ast.expr) -> bool:
        return isinstance(func, ast.Attribute) and (
            isinstance(func.value, ast.Name) and func.value.id == "json"
        )

    def _statement_calls(self, statement: StatementNode) -> Iterator[ast.Call]:
        """Calls evaluated by this statement, excluding nested scopes.

        Compound-statement markers only evaluate their header expressions,
        so only those are searched (the bodies live in other blocks).
        """
        header: list[ast.expr] = []
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            header = [statement.iter]
        elif isinstance(statement, (ast.While, ast.If)):
            header = [statement.test]
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            header = [item.context_expr for item in statement.items]
        elif isinstance(statement, (ast.Try, ast.excepthandler, ast.Match)):
            header = []
        elif isinstance(statement, ast.stmt):
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    yield node
            return
        for expression in header:
            for node in ast.walk(expression):
                if isinstance(node, ast.Call):
                    yield node


def analyze_module(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Run the determinism-taint analysis over every scope of a module.

    Yields ``(line, message)`` pairs, the lint framework's finding shape.
    Each function (at any nesting depth) and the module body itself is
    analyzed as its own scope; nested scopes start from unknown (empty)
    bindings, which under-approximates closures but never fabricates
    taint.
    """
    scopes: list[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    for scope in scopes:
        cfg = build_cfg(scope)
        analysis = DeterminismTaint(cfg)
        for finding in run_analysis(cfg, analysis):
            yield finding.line, finding.message
