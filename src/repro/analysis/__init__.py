"""Static analysis for the repro engine and codebase.

Two halves live here:

:mod:`repro.analysis.soundness`
    The plan/codegen soundness verifier — :func:`verify_plan` proves a
    compiled plan IR (indexed, interned or generated) binding-safe,
    signature-correct, injective in its packed keys and a valid
    permutation of the query body; :func:`verify_generated` structurally
    checks a generated function's AST against its plan.
    :mod:`repro.analysis.hooks` runs both online behind
    ``Session(debug_verify_plans=True)``.

:mod:`repro.analysis.lint`
    A repo-wide AST lint framework with repro-specific rules (determinism
    hazards, mutable defaults, global state, shim calls, bare excepts),
    exposed as ``repro lint`` on the command line.

The soundness names are re-exported lazily: the verifier imports the
engine, and the engine imports :mod:`repro.analysis.hooks`, so an eager
import here would cycle.
"""

from __future__ import annotations

from repro.analysis.hooks import (
    check_generated,
    check_plan,
    debug_verify_plans,
    reset_verification_counts,
    verification_counts,
    verification_enabled,
)

__all__ = [
    "Violation",
    "check_generated",
    "check_plan",
    "debug_verify_plans",
    "reset_verification_counts",
    "verification_counts",
    "verification_enabled",
    "verify_generated",
    "verify_plan",
]

_SOUNDNESS_EXPORTS = frozenset({"Violation", "verify_generated", "verify_plan"})


def __getattr__(name: str):
    if name in _SOUNDNESS_EXPORTS:
        from repro.analysis import soundness

        return getattr(soundness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
