"""Static soundness verification of compiled plans and generated code.

The engine bottoms out in machine-built artifacts: cost-ordered
:class:`~repro.engine.plan.MatchPlan` join orders, integer-compiled
:class:`~repro.engine.interned.InternedPlan` step programs, and the
``exec``-synthesized nested-loop functions of :mod:`repro.engine.codegen`.
Their correctness is exercised dynamically by the differential fuzz
harness; this module adds the complementary *static* guarantee — every
artifact can be proven well-formed before a single row is probed.

:func:`verify_plan` checks a compiled plan IR (any of the three flavours)
for

* **variable-binding safety** — every slot (or variable) a key op or
  filter reads is bound before use, by the fixed contract or an earlier
  step's fresh ops;
* **signature/arity agreement** — each step's key/new op partition is
  exactly what its atom demands under the running bound set, so the
  compiled program answers the query body it claims to;
* **packed-key injectivity** — multi-position probe keys stay injective
  within the :class:`~repro.engine.interning.TermDictionary` bit budget
  (the bound is *computed* from the dictionary size and capacity, never
  assumed);
* **cost-order permutation validity** — the scheduled steps are a
  permutation of the deduplicated source atoms (reordering is the only
  freedom cost-based planning and mid-execution replanning have).

:func:`verify_generated` parses a ``compile_suffix`` / ``compile_static``
output into an AST and structurally checks the loop nest against the plan:
one loop (or filter gate) per step, nested in plan order, with the exact
probe-key expression, the per-signature counter ticks, the
duplicate-fresh-variable row checks, the mode's terminal, and nothing else
— only allowlisted names may appear, and no imports, attribute access or
foreign calls are tolerated.  The matcher is written from the *plan's*
specification (it re-derives entry slots, bind/check splits and key
expressions independently), so drift in either the emitter or the verifier
surfaces as a violation.

Both entry points return a list of :class:`Violation` records;
:mod:`repro.analysis.hooks` wraps them into raising checks that the engine
runs online behind ``Session(debug_verify_plans=True)``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.generated import GeneratedPlan
from repro.engine.interned import InternedPlan, InternedStep
from repro.engine.interning import ID_BITS, TermDictionary
from repro.engine.plan import _CONST, _VAR, MatchPlan
from repro.relational.atoms import Atom
from repro.relational.terms import Variable

__all__ = ["Violation", "verify_generated", "verify_plan"]

#: Generated-function modes the AST verifier knows how to match.
GENERATED_MODES = ("count", "exists", "collect", "static")


@dataclass(frozen=True)
class Violation:
    """One soundness defect established by the verifier."""

    code: str
    subject: str
    message: str

    def describe(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


def _dedup_atoms(source_atoms) -> tuple[Atom, ...] | None:
    """Normalise a source-side argument to deduplicated atoms (or ``None``).

    Accepts an iterable of atoms or a query-like object exposing
    ``body_atoms()`` — so tests can pass the query the plan was compiled
    for directly.
    """
    if source_atoms is None:
        return None
    body = getattr(source_atoms, "body_atoms", None)
    if callable(body):
        source_atoms = body()
    return tuple(dict.fromkeys(source_atoms))


# --------------------------------------------------------------------------- #
# Plan IR verification
# --------------------------------------------------------------------------- #
def verify_plan(
    plan,
    source_atoms=None,
    fixed_variables: Iterable[Variable] | None = None,
    dictionary: TermDictionary | None = None,
    include_chains: bool = True,
) -> list[Violation]:
    """Statically verify a compiled plan IR; returns all violations found.

    *plan* may be a :class:`MatchPlan`, an :class:`InternedPlan` or a
    :class:`GeneratedPlan`.  *source_atoms* (an atom iterable or a query
    exposing ``body_atoms()``) and *fixed_variables* tighten the check to
    the triple the plan was compiled for; *dictionary* enables the id and
    packed-key-budget checks for the integer plans (a
    :class:`GeneratedPlan` carries its own and needs neither).  With
    ``include_chains`` every already-compiled generated function is also
    AST-verified via :func:`verify_generated`.
    """
    if isinstance(plan, MatchPlan):
        return _verify_match_plan(plan, _dedup_atoms(source_atoms), fixed_variables)
    if isinstance(plan, GeneratedPlan):
        return _verify_generated_plan(
            plan, _dedup_atoms(source_atoms), fixed_variables, include_chains
        )
    if isinstance(plan, InternedPlan):
        return _verify_interned_steps(
            plan,
            plan.static_steps,
            plan.steps,
            _dedup_atoms(source_atoms),
            fixed_variables,
            dictionary,
        )
    return [
        Violation(
            "unknown-plan",
            type(plan).__name__,
            "not a MatchPlan, InternedPlan or GeneratedPlan",
        )
    ]


def _verify_match_plan(
    plan: MatchPlan,
    source: tuple[Atom, ...] | None,
    fixed_variables: Iterable[Variable] | None,
) -> list[Violation]:
    """The indexed IR: key sources, signatures and order over term objects."""
    out: list[Violation] = []
    template = plan.template

    if fixed_variables is not None and frozenset(fixed_variables) != template.fixed_variables:
        out.append(
            Violation(
                "fixed-mismatch",
                "template",
                f"compiled for fixed set {sorted(map(str, template.fixed_variables))}, "
                f"caller expects {sorted(map(str, frozenset(fixed_variables)))}",
            )
        )

    expected = source if source is not None else template.source_atoms
    scheduled = tuple(step.atom for step in template.steps)
    if len(scheduled) != len(expected) or set(scheduled) != set(expected):
        out.append(
            Violation(
                "order-permutation",
                "template",
                f"scheduled atoms {sorted(map(str, scheduled))} are not a permutation "
                f"of the source atoms {sorted(map(str, expected))}",
            )
        )
    if source is not None and set(template.source_atoms) != set(source):
        out.append(
            Violation(
                "source-mismatch",
                "template",
                "template source atoms differ from the query body",
            )
        )

    bound: set[Variable] = set(template.fixed_variables)
    for number, step in enumerate(template.steps):
        subject = f"step {number} ({step.atom})"
        atom = step.atom
        if step.relation != atom.relation or step.arity != atom.arity:
            out.append(
                Violation("arity-mismatch", subject, "step relation/arity disagree with its atom")
            )
            continue
        signature = step.signature
        new_positions = tuple(position for position, _ in step.new_var_positions)
        if sorted(set(signature) | set(new_positions)) != list(range(atom.arity)) or set(
            signature
        ) & set(new_positions):
            out.append(
                Violation(
                    "arity-mismatch",
                    subject,
                    f"signature {signature} and fresh positions {new_positions} do not "
                    f"partition the {atom.arity} argument positions",
                )
            )
            continue
        if len(step.key_sources) != len(signature):
            out.append(
                Violation(
                    "signature-mismatch", subject, "key sources are not aligned with the signature"
                )
            )
            continue
        for position, (kind, value) in zip(signature, step.key_sources):
            term = atom.terms[position]
            if kind == _VAR:
                if not isinstance(value, Variable) or term != value:
                    out.append(
                        Violation(
                            "signature-mismatch",
                            subject,
                            f"position {position} key source {value!r} disagrees with "
                            f"the atom term {term!r}",
                        )
                    )
                elif value not in bound:
                    out.append(
                        Violation(
                            "unbound-read",
                            subject,
                            f"key reads variable {value} before any step binds it",
                        )
                    )
            elif kind == _CONST:
                if isinstance(term, Variable) or term != value:
                    out.append(
                        Violation(
                            "signature-mismatch",
                            subject,
                            f"position {position} constant {value!r} disagrees with "
                            f"the atom term {term!r}",
                        )
                    )
            else:
                out.append(Violation("signature-mismatch", subject, f"unknown key kind {kind!r}"))
        for position, variable in step.new_var_positions:
            term = atom.terms[position]
            if term != variable:
                out.append(
                    Violation(
                        "signature-mismatch",
                        subject,
                        f"fresh position {position} names {variable} but the atom holds {term!r}",
                    )
                )
            elif variable in bound:
                out.append(
                    Violation(
                        "binding-order",
                        subject,
                        f"{variable} is already bound but scheduled as a fresh binding",
                    )
                )
        bound.update(atom.variables())
    return out


def _verify_interned_steps(
    plan: InternedPlan,
    static_steps: Sequence[InternedStep],
    dynamic_steps: Sequence[InternedStep],
    source: tuple[Atom, ...] | None,
    fixed_variables: Iterable[Variable] | None,
    dictionary: TermDictionary | None,
) -> list[Violation]:
    """The integer IR: slot layout, op streams and the packed-key budget."""
    out: list[Violation] = []

    # --- Slot layout: slot_of must invert slot_variables exactly. ----------
    slot_variables = plan.slot_variables
    if len(plan.slot_of) != len(slot_variables) or any(
        plan.slot_of.get(variable) != slot for slot, variable in enumerate(slot_variables)
    ):
        out.append(
            Violation("slot-layout", "plan", "slot_of is not the inverse of slot_variables")
        )
        return out
    if len(plan.self_ids) != len(slot_variables):
        out.append(Violation("slot-layout", "plan", "self_ids does not cover every slot"))
        return out
    if dictionary is not None:
        for slot, variable in enumerate(slot_variables):
            if dictionary.lookup(variable) != plan.self_ids[slot]:
                out.append(
                    Violation(
                        "slot-layout",
                        f"slot {slot}",
                        f"self id {plan.self_ids[slot]} is not the dictionary id of {variable}",
                    )
                )

    # --- Fixed contract. ----------------------------------------------------
    if fixed_variables is not None and frozenset(fixed_variables) != plan.fixed_variables:
        out.append(
            Violation(
                "fixed-mismatch",
                "plan",
                f"compiled for fixed set {sorted(map(str, plan.fixed_variables))}, "
                f"caller expects {sorted(map(str, frozenset(fixed_variables)))}",
            )
        )
    expected_fixed_slots = tuple(
        (variable, slot)
        for slot, variable in enumerate(slot_variables)
        if variable in plan.fixed_variables
    )
    if plan.fixed_slots != expected_fixed_slots:
        out.append(
            Violation("fixed-mismatch", "plan", "fixed_slots disagree with the fixed variables")
        )
    fixed_slot_numbers = {slot for _, slot in expected_fixed_slots}

    # --- Cost-order permutation validity. ------------------------------------
    scheduled = tuple(step.atom for step in static_steps) + tuple(
        step.atom for step in dynamic_steps
    )
    if len(set(scheduled)) != len(scheduled):
        out.append(Violation("order-permutation", "plan", "an atom is scheduled more than once"))
    if source is not None and (
        len(scheduled) != len(source) or set(scheduled) != set(source)
    ):
        out.append(
            Violation(
                "order-permutation",
                "plan",
                f"scheduled atoms {sorted(map(str, scheduled))} are not a permutation "
                f"of the source atoms {sorted(map(str, source))}",
            )
        )
    for atom in scheduled:
        for variable in atom.variables():
            if variable not in plan.slot_of:
                out.append(
                    Violation("slot-layout", str(atom), f"variable {variable} has no slot")
                )
                return out

    # --- Packed-key injectivity within the computed bit budget. --------------
    window = 1 << ID_BITS
    packs_keys = any(
        len(step.key_ops) >= 2 for step in (*static_steps, *dynamic_steps)
    )
    if dictionary is not None and packs_keys:
        if len(dictionary) > window:
            out.append(
                Violation(
                    "key-overflow",
                    "dictionary",
                    f"{len(dictionary)} interned ids exceed the {ID_BITS}-bit pack "
                    f"window ({window}); multi-position keys are no longer injective",
                )
            )
        elif dictionary.capacity > window:
            out.append(
                Violation(
                    "key-overflow",
                    "dictionary",
                    f"dictionary capacity {dictionary.capacity} exceeds the {ID_BITS}-bit "
                    f"pack window ({window}); the overflow guard fires too late to keep "
                    "multi-position keys injective",
                )
            )

    # --- Static filters: constants and fixed slots only, full signature. -----
    for number, step in enumerate(static_steps):
        subject = f"filter {number} ({step.atom})"
        if step.new_ops:
            out.append(Violation("static-binds", subject, "a static filter must bind no slots"))
        if len(step.key_ops) != step.atom.arity:
            out.append(
                Violation(
                    "arity-mismatch",
                    subject,
                    f"{len(step.key_ops)} key ops do not cover the arity-{step.atom.arity} atom",
                )
            )
        for op in step.key_ops:
            if op >= 0 and op not in fixed_slot_numbers:
                out.append(
                    Violation(
                        "unbound-read",
                        subject,
                        f"static key reads slot {op}, which no fixed binding covers",
                    )
                )
        _check_step_ops(step, set(plan.fixed_variables), plan, dictionary, subject, out)

    # --- Dynamic steps: binding-safe op streams in schedule order. -----------
    bound_variables: set[Variable] = set(plan.fixed_variables)
    bound_slots = set(fixed_slot_numbers)
    for number, step in enumerate(dynamic_steps):
        subject = f"step {number} ({step.atom})"
        if len(step.key_ops) + len(step.new_ops) != step.atom.arity:
            out.append(
                Violation(
                    "arity-mismatch",
                    subject,
                    f"{len(step.key_ops)} key ops + {len(step.new_ops)} fresh ops do not "
                    f"cover the arity-{step.atom.arity} atom",
                )
            )
            continue
        for op in step.key_ops:
            if op >= 0 and op not in bound_slots:
                out.append(
                    Violation(
                        "unbound-read",
                        subject,
                        f"key reads slot {op} before any earlier step binds it",
                    )
                )
        _check_step_ops(step, bound_variables, plan, dictionary, subject, out)
        bound_variables.update(step.atom.variables())
        bound_slots.update(slot for _, slot in step.new_ops)
        bound_slots.update(
            plan.slot_of[v] for v in step.atom.variables() if v in plan.slot_of
        )
    return out


def _check_step_ops(
    step: InternedStep,
    bound_variables: set[Variable],
    plan: InternedPlan,
    dictionary: TermDictionary | None,
    subject: str,
    out: list[Violation],
) -> None:
    """Recompute the expected op streams of *step* from its atom and compare.

    This is the signature-agreement core: under the bound set the schedule
    implies, each argument position must compile to exactly one key op
    (slot for a bound variable, ``-1 - id`` for a constant) or one fresh
    ``(position, slot)`` op — in position order, like the compiler emits.
    """
    expected_keys: list[int | None] = []  # None = constant with unknown id
    expected_new: list[tuple[int, int]] = []
    for position, term in enumerate(step.atom.terms):
        if isinstance(term, Variable):
            slot = plan.slot_of.get(term)
            if slot is None:
                return  # already reported as slot-layout
            if term in bound_variables:
                expected_keys.append(slot)
            else:
                expected_new.append((position, slot))
        elif dictionary is None:
            expected_keys.append(None)
        else:
            identifier = dictionary.lookup(term)
            if identifier is None:
                out.append(
                    Violation(
                        "constant-id",
                        subject,
                        f"constant {term!r} was never interned in the plan's dictionary",
                    )
                )
                return
            expected_keys.append(-1 - identifier)

    if tuple(expected_new) != tuple(step.new_ops):
        out.append(
            Violation(
                "signature-mismatch",
                subject,
                f"fresh ops {step.new_ops} should be {tuple(expected_new)} under the "
                "schedule's bound set",
            )
        )
    if len(expected_keys) != len(step.key_ops):
        out.append(
            Violation(
                "signature-mismatch",
                subject,
                f"{len(step.key_ops)} key ops where the atom demands {len(expected_keys)}",
            )
        )
        return
    for position, (expected, actual) in enumerate(zip(expected_keys, step.key_ops)):
        if expected is None:
            if actual >= 0:
                out.append(
                    Violation(
                        "signature-mismatch",
                        subject,
                        f"key op {position} reads slot {actual} where the atom holds a constant",
                    )
                )
        elif expected != actual:
            out.append(
                Violation(
                    "signature-mismatch",
                    subject,
                    f"key op {position} is {actual}, expected {expected}",
                )
            )


def _verify_generated_plan(
    plan: GeneratedPlan,
    source: tuple[Atom, ...] | None,
    fixed_variables: Iterable[Variable] | None,
    include_chains: bool,
) -> list[Violation]:
    """A generated plan: its base IR under the *current* (replanned) order."""
    base = plan.base
    out: list[Violation] = []

    # Replanning may permute everything after the driver-owned first step;
    # verify binding safety for the order that actually executes.
    dynamic = tuple(base.steps[:1]) + tuple(plan.suffix)
    suffix_atoms = tuple(step.atom for step in plan.suffix)
    original_atoms = tuple(step.atom for step in base.steps[1:])
    if len(suffix_atoms) != len(original_atoms) or set(suffix_atoms) != set(original_atoms):
        out.append(
            Violation(
                "order-permutation",
                "suffix",
                "the replanned suffix is not a permutation of the compiled suffix atoms",
            )
        )
    if len(plan.planned) != len(plan.suffix):
        out.append(
            Violation(
                "replan-state", "suffix", "planned cost baselines do not cover the suffix"
            )
        )

    out.extend(
        _verify_interned_steps(
            base, base.static_steps, dynamic, source, fixed_variables, plan.dictionary
        )
    )

    if include_chains:
        static_source = getattr(plan.static_chain, "__source__", None)
        if static_source is None:
            out.append(
                Violation("missing-source", "static chain", "compiled without __source__")
            )
        else:
            out.extend(verify_generated(static_source, plan, "static"))
        for mode, function in plan.chains.items():
            chain_source = getattr(function, "__source__", None)
            if chain_source is None:
                out.append(
                    Violation(
                        "missing-source", f"chain[{mode}]", "compiled without __source__"
                    )
                )
            else:
                out.extend(verify_generated(chain_source, plan, mode))
    return out


# --------------------------------------------------------------------------- #
# Generated-code verification
# --------------------------------------------------------------------------- #

#: Every identifier a generated function may mention.
_NAME_PATTERN = re.compile(r"^(?:binding|emit|len|total|_E|[BGC]\d+|v\d+|rows?\d+)$")

#: Call targets a generated function may invoke.
_CALL_PATTERN = re.compile(r"^(?:len|emit|G\d+)$")

#: The node types the emitter can produce — anything else is foreign code.
_ALLOWED_NODES = (
    ast.Module,
    ast.FunctionDef,
    ast.arguments,
    ast.arg,
    ast.Assign,
    ast.AugAssign,
    ast.For,
    ast.If,
    ast.Return,
    ast.Expr,
    ast.Continue,
    ast.Name,
    ast.Constant,
    ast.Call,
    ast.BinOp,
    ast.LShift,
    ast.BitOr,
    ast.Add,
    ast.Compare,
    ast.NotEq,
    ast.Subscript,
    ast.Tuple,
    ast.UnaryOp,
    ast.Not,
    ast.Load,
    ast.Store,
)


class _Mismatch(Exception):
    """Internal: the loop nest diverged from the plan (first difference wins)."""


def _split_new_ops(
    new_ops: Sequence[tuple[int, int]],
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """First-occurrence binds vs same-row duplicate checks (re-derived here)."""
    binds: list[tuple[int, int]] = []
    checks: list[tuple[int, int]] = []
    first_position: dict[int, int] = {}
    for position, slot in new_ops:
        seen = first_position.get(slot)
        if seen is None:
            first_position[slot] = position
            binds.append((position, slot))
        else:
            checks.append((seen, position))
    return binds, checks


def _entry_slots(steps: Sequence[InternedStep]) -> list[int]:
    """Slots a suffix reads from ``binding`` before any step assigns them."""
    assigned: set[int] = set()
    needed: set[int] = set()
    for step in steps:
        for op in step.key_ops:
            if op >= 0 and op not in assigned:
                needed.add(op)
        for _, slot in step.new_ops:
            assigned.add(slot)
    return sorted(needed)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise _Mismatch(message)


def _dump(node: ast.AST) -> str:
    return ast.dump(node)


def _expected_dump(expression: str) -> str:
    return _dump(ast.parse(expression, mode="eval").body)


def _expected_store_dump(expression: str) -> str:
    """Dump of *expression* as an assignment target (outer context Store)."""
    node = ast.parse(expression, mode="eval").body
    node.ctx = ast.Store()
    return _dump(node)


def _probe_expression(step: InternedStep, index: int, static: bool) -> str:
    """The exact probe expression the plan demands for this step."""
    key_ops = step.key_ops
    if step.group is None or all(op < 0 for op in key_ops):
        return f"B{index}"
    reference = "binding[{op}]" if static else "v{op}"
    parts = [
        reference.format(op=op) if op >= 0 else str(-1 - op) for op in key_ops
    ]
    expression = parts[0]
    for part in parts[1:]:
        expression = f"({expression} << {ID_BITS} | {part})"
    return f"G{index}({expression}, _E)"


def _match_probe(statements: list[ast.stmt], step: InternedStep, index: int, static: bool) -> None:
    """Consume the probe assignment plus both counter ticks for step *index*."""
    _expect(len(statements) >= 3, f"step {index}: probe and counter ticks are missing")
    probe = statements[0]
    rows = f"rows{index}"
    _expect(
        isinstance(probe, ast.Assign)
        and len(probe.targets) == 1
        and _dump(probe.targets[0]) == _expected_store_dump(rows),
        f"step {index}: first statement must assign {rows}",
    )
    expected = _expected_dump(_probe_expression(step, index, static))
    _expect(
        _dump(probe.value) == expected,
        f"step {index}: probe expression disagrees with the plan's key ops",
    )
    for which, value in ((0, "1"), (1, f"len({rows})")):
        tick = statements[1 + which]
        _expect(
            isinstance(tick, ast.AugAssign)
            and isinstance(tick.op, ast.Add)
            and _dump(tick.target) == _expected_store_dump(f"C{index}[{which}]")
            and _dump(tick.value) == _expected_dump(value),
            f"step {index}: counter tick C{index}[{which}] is missing or wrong",
        )


def _match_terminal(statement: ast.stmt, mode: str, num_slots: int) -> None:
    if mode == "count":
        _expect(
            isinstance(statement, ast.AugAssign)
            and isinstance(statement.op, ast.Add)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "total"
            and _dump(statement.value) == _expected_dump("1"),
            "count terminal must be 'total += 1'",
        )
    elif mode == "exists":
        _expect(
            isinstance(statement, ast.Return)
            and statement.value is not None
            and _dump(statement.value) == _expected_dump("True"),
            "exists terminal must be 'return True'",
        )
    else:
        solution = ", ".join(f"v{slot}" for slot in range(num_slots))
        expected = f"emit(({solution},))" if num_slots else "emit(())"
        _expect(
            isinstance(statement, ast.Expr) and _dump(statement.value) == _expected_dump(expected),
            f"collect terminal must be {expected!r}",
        )


def _match_suffix_level(
    statements: list[ast.stmt],
    steps: Sequence[InternedStep],
    index: int,
    mode: str,
    num_slots: int,
) -> list[ast.stmt]:
    """Match step *index* (and, nested inside it, all later steps) at one
    indentation level; returns the statements left over at this level."""
    step = steps[index]
    last = index == len(steps) - 1
    rows = f"rows{index}"
    _match_probe(statements, step, index, static=False)
    rest = statements[3:]
    binds, checks = _split_new_ops(step.new_ops)

    # Terminal short-circuits on the innermost step.
    if last and mode == "count" and not checks:
        _expect(bool(rest), f"step {index}: missing count terminal")
        head, rest = rest[0], rest[1:]
        if binds:
            _expect(
                isinstance(head, ast.AugAssign)
                and isinstance(head.op, ast.Add)
                and isinstance(head.target, ast.Name)
                and head.target.id == "total"
                and _dump(head.value) == _expected_dump(f"len({rows})"),
                f"step {index}: innermost count step must collapse to 'total += len({rows})'",
            )
        else:
            _expect(
                isinstance(head, ast.If)
                and _dump(head.test) == _expected_dump(rows)
                and not head.orelse
                and len(head.body) == 1,
                f"step {index}: innermost count filter must gate on {rows}",
            )
            _match_terminal(head.body[0], "count", num_slots)
        return rest
    if last and mode == "exists" and not checks:
        _expect(bool(rest), f"step {index}: missing exists terminal")
        head, rest = rest[0], rest[1:]
        _expect(
            isinstance(head, ast.If)
            and _dump(head.test) == _expected_dump(rows)
            and not head.orelse
            and len(head.body) == 1,
            f"step {index}: innermost exists step must gate on {rows}",
        )
        _match_terminal(head.body[0], "exists", num_slots)
        return rest

    # The general nest: a filter gate or a candidate-row loop.
    _expect(bool(rest), f"step {index}: loop nest body is missing")
    head, rest = rest[0], rest[1:]
    if not step.new_ops:
        _expect(
            isinstance(head, ast.If)
            and _dump(head.test) == _expected_dump(rows)
            and not head.orelse,
            f"step {index}: filter step must gate on 'if {rows}:'",
        )
        inner = list(head.body)
    else:
        _expect(
            isinstance(head, ast.For)
            and isinstance(head.target, ast.Name)
            and head.target.id == f"row{index}"
            and _dump(head.iter) == _expected_dump(rows)
            and not head.orelse,
            f"step {index}: exactly one 'for row{index} in {rows}:' loop is required",
        )
        inner = list(head.body)
        for first, later in checks:
            _expect(bool(inner), f"step {index}: duplicate-variable check is missing")
            check, inner = inner[0], inner[1:]
            _expect(
                isinstance(check, ast.If)
                and _dump(check.test)
                == _expected_dump(f"row{index}[{first}] != row{index}[{later}]")
                and len(check.body) == 1
                and isinstance(check.body[0], ast.Continue)
                and not check.orelse,
                f"step {index}: duplicate-variable check for positions "
                f"({first}, {later}) is missing or wrong",
            )
        if not (last and mode != "collect"):
            for position, slot in binds:
                _expect(bool(inner), f"step {index}: bind of slot {slot} is missing")
                bind, inner = inner[0], inner[1:]
                _expect(
                    isinstance(bind, ast.Assign)
                    and len(bind.targets) == 1
                    and isinstance(bind.targets[0], ast.Name)
                    and bind.targets[0].id == f"v{slot}"
                    and _dump(bind.value) == _expected_dump(f"row{index}[{position}]"),
                    f"step {index}: bind 'v{slot} = row{index}[{position}]' is missing or wrong",
                )
    if last:
        _expect(len(inner) == 1, f"step {index}: terminal statement is missing or duplicated")
        _match_terminal(inner[0], mode, num_slots)
    else:
        leftover = _match_suffix_level(inner, steps, index + 1, mode, num_slots)
        _expect(
            not leftover,
            f"step {index}: unexpected statements after the nested step",
        )
    return rest


def _match_suffix_function(
    function: ast.FunctionDef,
    steps: Sequence[InternedStep],
    mode: str,
    num_slots: int,
) -> None:
    expected_args = ["binding", "emit"] if mode == "collect" else ["binding"]
    _expect(
        [argument.arg for argument in function.args.args] == expected_args
        and not function.args.posonlyargs
        and not function.args.kwonlyargs
        and function.args.vararg is None
        and function.args.kwarg is None
        and not function.args.defaults,
        f"signature must be _run({', '.join(expected_args)})",
    )
    body = list(function.body)

    entry = range(num_slots) if mode == "collect" else _entry_slots(steps)
    for slot in entry:
        _expect(bool(body), f"prologue load of slot {slot} is missing")
        load, body = body[0], body[1:]
        _expect(
            isinstance(load, ast.Assign)
            and len(load.targets) == 1
            and isinstance(load.targets[0], ast.Name)
            and load.targets[0].id == f"v{slot}"
            and _dump(load.value) == _expected_dump(f"binding[{slot}]"),
            f"prologue must load 'v{slot} = binding[{slot}]'",
        )
    if mode == "count":
        _expect(bool(body), "prologue 'total = 0' is missing")
        init, body = body[0], body[1:]
        _expect(
            isinstance(init, ast.Assign)
            and len(init.targets) == 1
            and isinstance(init.targets[0], ast.Name)
            and init.targets[0].id == "total"
            and _dump(init.value) == _expected_dump("0"),
            "prologue must initialise 'total = 0'",
        )

    if not steps:
        _expect(len(body) == 1, "an empty suffix must be a single terminal statement")
        statement = body[0]
        if mode == "count":
            _expect(
                isinstance(statement, ast.Return)
                and statement.value is not None
                and _dump(statement.value) == _expected_dump("1"),
                "empty count suffix must 'return 1'",
            )
        elif mode == "exists":
            _expect(
                isinstance(statement, ast.Return)
                and statement.value is not None
                and _dump(statement.value) == _expected_dump("True"),
                "empty exists suffix must 'return True'",
            )
        else:
            _match_terminal(statement, "collect", num_slots)
        return

    body = _match_suffix_level(body, steps, 0, mode, num_slots)
    if mode == "count":
        _expect(
            len(body) == 1
            and isinstance(body[0], ast.Return)
            and body[0].value is not None
            and _dump(body[0].value) == _expected_dump("total"),
            "count epilogue must be exactly 'return total'",
        )
    elif mode == "exists":
        _expect(
            len(body) == 1
            and isinstance(body[0], ast.Return)
            and body[0].value is not None
            and _dump(body[0].value) == _expected_dump("False"),
            "exists epilogue must be exactly 'return False'",
        )
    else:
        _expect(not body, "collect functions must end inside the loop nest")


def _match_static_function(function: ast.FunctionDef, steps: Sequence[InternedStep]) -> None:
    _expect(
        [argument.arg for argument in function.args.args] == ["binding"]
        and not function.args.posonlyargs
        and not function.args.kwonlyargs
        and function.args.vararg is None
        and function.args.kwarg is None
        and not function.args.defaults,
        "signature must be _run(binding)",
    )
    body = list(function.body)
    for index, step in enumerate(steps):
        _match_probe(body, step, index, static=True)
        body = body[3:]
        _expect(bool(body), f"filter {index}: early-return gate is missing")
        gate, body = body[0], body[1:]
        _expect(
            isinstance(gate, ast.If)
            and _dump(gate.test) == _expected_dump(f"not rows{index}")
            and len(gate.body) == 1
            and isinstance(gate.body[0], ast.Return)
            and gate.body[0].value is not None
            and _dump(gate.body[0].value) == _expected_dump("False")
            and not gate.orelse,
            f"filter {index}: must gate with 'if not rows{index}: return False'",
        )
    _expect(
        len(body) == 1
        and isinstance(body[0], ast.Return)
        and body[0].value is not None
        and _dump(body[0].value) == _expected_dump("True"),
        "static chain must end with exactly 'return True'",
    )


def _check_allowlist(
    tree: ast.Module, num_steps: int, num_slots: int, subject: str, out: list[Violation]
) -> None:
    """Only allowlisted node kinds, names and call targets may appear."""
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            out.append(
                Violation(
                    "illegal-node",
                    subject,
                    f"{type(node).__name__} nodes never occur in generated code",
                )
            )
            continue
        if isinstance(node, ast.Call):
            target = node.func
            if not isinstance(target, ast.Name) or not _CALL_PATTERN.match(target.id):
                out.append(
                    Violation(
                        "illegal-call",
                        subject,
                        "generated code may only call len(), emit() and the baked "
                        "G<step> index getters",
                    )
                )
        elif isinstance(node, ast.Name):
            if not _NAME_PATTERN.match(node.id):
                out.append(
                    Violation("illegal-name", subject, f"name {node.id!r} is not allowlisted")
                )
                continue
            head = node.id.rstrip("0123456789")
            if head in ("B", "G", "C", "row", "rows"):
                if int(node.id[len(head):]) >= num_steps:
                    out.append(
                        Violation(
                            "illegal-name",
                            subject,
                            f"{node.id!r} references a step beyond the plan's {num_steps}",
                        )
                    )
            elif head == "v" and int(node.id[1:]) >= num_slots:
                out.append(
                    Violation(
                        "illegal-name",
                        subject,
                        f"{node.id!r} references a slot beyond the plan's {num_slots}",
                    )
                )


def verify_generated(fn_source: str, plan: GeneratedPlan, mode: str) -> list[Violation]:
    """Structurally verify one generated function's source against its plan.

    *mode* is one of ``count`` / ``exists`` / ``collect`` (a
    ``compile_suffix`` output over the plan's current suffix) or ``static``
    (the ``compile_static`` output over the base plan's hoisted filters).
    Returns all violations found; an empty list certifies that the loop
    nest is exactly the one the plan demands.
    """
    subject = f"chain[{mode}]"
    if mode not in GENERATED_MODES:
        return [Violation("unknown-mode", subject, f"unknown generated mode {mode!r}")]
    if not isinstance(plan, GeneratedPlan):
        return [
            Violation(
                "unknown-plan", subject, "verify_generated needs the owning GeneratedPlan"
            )
        ]
    try:
        tree = ast.parse(fn_source)
    except SyntaxError as error:
        return [Violation("syntax-error", subject, f"source does not parse: {error}")]

    out: list[Violation] = []
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        return [Violation("structure", subject, "source must define exactly one function")]
    function = tree.body[0]
    if function.name != "_run" or function.decorator_list or function.returns is not None:
        out.append(Violation("structure", subject, "function must be a plain 'def _run'"))

    steps: Sequence[InternedStep]
    if mode == "static":
        steps = tuple(plan.base.static_steps)
    else:
        steps = tuple(plan.suffix)
    num_slots = len(plan.base.slot_variables)

    _check_allowlist(tree, len(steps), num_slots, subject, out)
    try:
        if mode == "static":
            _match_static_function(function, steps)
        else:
            _match_suffix_function(function, steps, mode, num_slots)
    except _Mismatch as mismatch:
        out.append(Violation("structure", subject, str(mismatch)))
    return out
