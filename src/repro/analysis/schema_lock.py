"""Persist-schema drift detection for :class:`repro.engine.persist.PersistentCache`.

The persistent cache pickles plan IR (``MatchPlan`` and everything it
references) and decision memos (``BagContainmentResult`` /
``SetContainmentResult`` and their certificate payloads) to disk, keyed in
part by ``SCHEMA_VERSION``.  The contract since PR 7 is: *change the layout
of anything that gets pickled → bump ``SCHEMA_VERSION``* so stale rows are
never unpickled into mismatched shapes.  That contract used to live in the
README; this module makes it machine-checked.

The mechanism is a structural fingerprint.  Starting from the root types
that actually enter the store, we transitively collect every ``repro``
class reachable through dataclass field annotations and record, per type:

* dataclasses — the ordered ``(field name, rendered type)`` list;
* ``__slots__`` classes — the slot names plus whether the class customises
  pickling via ``__getstate__`` / ``__setstate__``;
* anything else — the sorted class-level annotation names.

The rendered layouts are serialised to canonical JSON and hashed; the
``(SCHEMA_VERSION, digest)`` pair is committed as ``persist-schema.lock``
at the repository root.  :func:`check_lock` then distinguishes the three
interesting states:

* layouts unchanged → OK;
* layouts changed, same ``SCHEMA_VERSION`` → **drift without a bump**, the
  failure this module exists to catch, reported with a per-type diff;
* ``SCHEMA_VERSION`` bumped → the lock is stale and must be regenerated
  with ``repro analyze --write-schema-lock`` (a deliberate second commit
  step, so the bump and the new fingerprint land together in review).

Fingerprints are *structural*, not semantic: renaming a field the pickle
protocol never sees (a property, a method) does not trip the check, and
type renderings avoid ``repr`` artefacts so the digest is stable across
interpreter versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from importlib import import_module
from pathlib import Path
from typing import Any, Iterator, Union

__all__ = [
    "ROOT_TYPES",
    "SchemaFingerprint",
    "check_lock",
    "current_fingerprint",
    "diff_layouts",
    "write_lock",
]

#: ``(module, class name)`` of every type whose instances are pickled into
#: the persistent store: the plans layer stores ``MatchPlan``; the results
#: layer stores the session decision memos and their certificate payloads.
ROOT_TYPES: tuple[tuple[str, str], ...] = (
    ("repro.engine.plan", "MatchPlan"),
    ("repro.core.decision", "BagContainmentResult"),
    ("repro.containment.set_containment", "SetContainmentResult"),
    ("repro.core.encoding", "MpiEncoding"),
    ("repro.diophantine.solver", "MpiDecision"),
    ("repro.core.certificates", "ContainmentCounterexample"),
)

Layout = dict[str, Any]


@dataclasses.dataclass(frozen=True)
class SchemaFingerprint:
    """The committed identity of the persisted-object layouts."""

    schema_version: int
    digest: str
    types: dict[str, Layout]

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema_version": self.schema_version,
                "digest": self.digest,
                "types": self.types,
            },
            indent=2,
            sort_keys=True,
        )


def _qualified(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _is_repro_class(obj: Any) -> bool:
    return isinstance(obj, type) and obj.__module__.startswith("repro.")


def _render(hint: Any, referenced: set[type]) -> str:
    """Render a type annotation deterministically, collecting repro classes."""
    if hint is None or hint is type(None):
        return "None"
    if isinstance(hint, type):
        if _is_repro_class(hint) or dataclasses.is_dataclass(hint):
            # First-party classes and any dataclass (wherever it lives)
            # are part of the pickled layout — fingerprint them too.
            referenced.add(hint)
            return _qualified(hint)
        return hint.__qualname__
    origin = typing.get_origin(hint)
    if origin is not None:
        arguments = typing.get_args(hint)
        if origin is Union:
            parts = sorted(_render(argument, referenced) for argument in arguments)
            return " | ".join(parts)
        origin_name = _render(origin, referenced)
        if not arguments:
            return origin_name
        rendered = ", ".join(
            "..." if argument is Ellipsis else _render(argument, referenced)
            for argument in arguments
        )
        return f"{origin_name}[{rendered}]"
    return str(hint)


def _layout_of(cls: type, referenced: set[type]) -> Layout:
    if dataclasses.is_dataclass(cls):
        try:
            hints = typing.get_type_hints(cls)
        except Exception:  # pragma: no cover - unresolvable forward refs
            hints = {field.name: field.type for field in dataclasses.fields(cls)}
        fields = [
            [field.name, _render(hints.get(field.name, field.type), referenced)]
            for field in dataclasses.fields(cls)
        ]
        return {"kind": "dataclass", "fields": fields}
    slots = getattr(cls, "__slots__", None)
    if slots is not None:
        slot_names = [slots] if isinstance(slots, str) else sorted(slots)
        return {
            "kind": "slots",
            "slots": slot_names,
            "custom_pickle": [
                name
                for name in ("__getstate__", "__setstate__", "__reduce__")
                if name in cls.__dict__
            ],
        }
    annotations = getattr(cls, "__annotations__", {})
    return {
        "kind": "class",
        "annotations": sorted(annotations),
        "custom_pickle": [
            name
            for name in ("__getstate__", "__setstate__", "__reduce__")
            if name in cls.__dict__
        ],
    }


def _collect_layouts() -> dict[str, Layout]:
    pending: list[type] = []
    for module_name, class_name in ROOT_TYPES:
        module = import_module(module_name)
        pending.append(getattr(module, class_name))
    layouts: dict[str, Layout] = {}
    seen: set[type] = set()
    while pending:
        cls = pending.pop()
        if cls in seen:
            continue
        seen.add(cls)
        referenced: set[type] = set()
        layouts[_qualified(cls)] = _layout_of(cls, referenced)
        if dataclasses.is_dataclass(cls):
            # Non-dataclass fields reached only via __slots__ don't carry
            # annotations to chase, but their layout is still recorded.
            for field in dataclasses.fields(cls):
                if _is_repro_class(field.type):
                    referenced.add(field.type)
        pending.extend(sorted(referenced - seen, key=_qualified))
    return layouts


def current_fingerprint() -> SchemaFingerprint:
    """Fingerprint the persisted-object layouts of the running code."""
    from repro.engine.persist import SCHEMA_VERSION

    layouts = _collect_layouts()
    digest = hashlib.sha256(
        json.dumps(layouts, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return SchemaFingerprint(schema_version=SCHEMA_VERSION, digest=digest, types=layouts)


def write_lock(path: str | Path) -> SchemaFingerprint:
    """Write the current fingerprint to *path* and return it."""
    fingerprint = current_fingerprint()
    Path(path).write_text(fingerprint.to_json() + "\n", encoding="utf-8")
    return fingerprint


def _load_lock(path: Path) -> SchemaFingerprint | None:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return SchemaFingerprint(
            schema_version=int(payload["schema_version"]),
            digest=str(payload["digest"]),
            types={str(name): dict(layout) for name, layout in payload["types"].items()},
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def diff_layouts(old: dict[str, Layout], new: dict[str, Layout]) -> Iterator[str]:
    """Human-readable structural differences, one line per change."""
    for name in sorted(old.keys() - new.keys()):
        yield f"{name}: no longer reachable from the persisted roots"
    for name in sorted(new.keys() - old.keys()):
        yield f"{name}: newly reachable from the persisted roots"
    for name in sorted(old.keys() & new.keys()):
        before, after = old[name], new[name]
        if before == after:
            continue
        if before.get("kind") != after.get("kind"):
            yield f"{name}: kind changed {before.get('kind')} -> {after.get('kind')}"
            continue
        if before.get("kind") == "dataclass":
            old_fields = dict(map(tuple, before.get("fields", [])))
            new_fields = dict(map(tuple, after.get("fields", [])))
            for field_name in sorted(old_fields.keys() - new_fields.keys()):
                yield f"{name}: field {field_name} removed"
            for field_name in sorted(new_fields.keys() - old_fields.keys()):
                yield f"{name}: field {field_name} added"
            for field_name in sorted(old_fields.keys() & new_fields.keys()):
                if old_fields[field_name] != new_fields[field_name]:
                    yield (
                        f"{name}: field {field_name} retyped "
                        f"{old_fields[field_name]} -> {new_fields[field_name]}"
                    )
            old_order = [field_name for field_name, _ in before.get("fields", [])]
            new_order = [field_name for field_name, _ in after.get("fields", [])]
            if old_order != new_order and set(old_order) == set(new_order):
                yield f"{name}: field order changed {old_order} -> {new_order}"
        else:
            yield f"{name}: layout changed {before} -> {after}"


def check_lock(path: str | Path) -> list[str]:
    """Check the committed lock against the running code.

    Returns a list of problems; empty means the lock matches.
    """
    lock_path = Path(path)
    current = current_fingerprint()
    if not lock_path.exists():
        return [
            f"schema lock {lock_path} is missing; generate it with "
            "`repro analyze --write-schema-lock`"
        ]
    lock = _load_lock(lock_path)
    if lock is None:
        return [
            f"schema lock {lock_path} is unreadable; regenerate it with "
            "`repro analyze --write-schema-lock`"
        ]
    if lock.digest == current.digest and lock.schema_version == current.schema_version:
        return []
    if lock.schema_version != current.schema_version:
        return [
            "persist-schema.lock is stale: SCHEMA_VERSION is now "
            f"{current.schema_version} (lock has {lock.schema_version}); "
            "refresh it with `repro analyze --write-schema-lock` and commit "
            "the result alongside the bump"
        ]
    problems = [
        "persisted-object layout changed without a SCHEMA_VERSION bump "
        f"(still {current.schema_version}); bump repro.engine.persist."
        "SCHEMA_VERSION, then refresh the lock with "
        "`repro analyze --write-schema-lock`"
    ]
    problems.extend(diff_layouts(lock.types, current.types))
    return problems
