"""A generic forward may-dataflow framework over :mod:`repro.analysis.cfg`.

The framework is deliberately small and concrete: an abstract *state* maps
variable names to finite label sets (``frozenset[str]``), the join is the
pointwise union, and an analysis plugs in three operations —

``initial_state(cfg)``
    The state on entry to the function (typically the parameters, bound to
    empty label sets).

``transfer(statement, state, block)``
    Mutate *state* in place with the effect of one statement (or one
    compound-statement header marker — see :mod:`repro.analysis.cfg`).
    Transfer functions must be monotone in the label sets: growing an input
    set may only grow the output sets.  Under that contract the fixpoint
    below terminates, because names and labels are both finite.

``observe(statement, state, block)``
    Called *after* the fixpoint, once per statement, with the stable state
    holding immediately **before** the statement executes; yields findings
    (any values — the clients yield ``(line, message)`` pairs).

Because labels are finite and the join only adds labels, the standard
worklist iteration converges; after it does, a second sweep replays every
block from its stable in-state and lets the analysis report on what it
sees.  That split is what makes the clients flow-sensitive: a sanitizer
(``sorted(...)``) between the source and the sink strips labels from the
state *before* the sink's ``observe`` runs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Protocol, TypeVar

from repro.analysis.cfg import Block, ControlFlowGraph, StatementNode

__all__ = ["Analysis", "State", "join", "run_analysis"]

#: Abstract state: variable name → finite set of labels.  The framework
#: never interprets names, so analyses are free to add pseudo-variables
#: (the taint analysis keys loop-order facts as ``@loop<block>``).
State = dict[str, frozenset[str]]

_FindingT = TypeVar("_FindingT", covariant=True)


class Analysis(Protocol[_FindingT]):
    """The three hooks a concrete forward analysis provides."""

    def initial_state(self, cfg: ControlFlowGraph) -> State: ...

    def transfer(self, statement: StatementNode, state: State, block: Block) -> None: ...

    def observe(
        self, statement: StatementNode, state: State, block: Block
    ) -> Iterable[_FindingT]: ...


def join(states: Iterable[State]) -> State:
    """The pointwise union of several abstract states."""
    merged: State = {}
    for state in states:
        for name, labels in state.items():
            existing = merged.get(name)
            merged[name] = labels if existing is None else existing | labels
    return merged


def _transfer_block(analysis: Analysis[_FindingT], block: Block, state: State) -> State:
    out = dict(state)
    for statement in block.statements:
        analysis.transfer(statement, out, block)
    return out


def run_analysis(cfg: ControlFlowGraph, analysis: Analysis[_FindingT]) -> Iterator[_FindingT]:
    """Fixpoint the analysis over *cfg*, then yield every observation.

    The worklist seeds with the entry block; unreachable blocks keep the
    bottom state (no names bound), which is sound for a may-analysis.
    """
    in_states: dict[int, State] = {block.index: {} for block in cfg.blocks}
    out_states: dict[int, State] = {block.index: {} for block in cfg.blocks}
    in_states[cfg.entry] = analysis.initial_state(cfg)
    predecessors = cfg.predecessors()

    worklist: deque[int] = deque(block.index for block in cfg.blocks)
    pending = set(worklist)
    while worklist:
        index = worklist.popleft()
        pending.discard(index)
        block = cfg.blocks[index]
        if index != cfg.entry and predecessors[index]:
            in_states[index] = join(out_states[pred] for pred in predecessors[index])
        new_out = _transfer_block(analysis, block, in_states[index])
        if new_out != out_states[index]:
            out_states[index] = new_out
            for successor in block.successors:
                if successor not in pending:
                    pending.add(successor)
                    worklist.append(successor)

    for block in cfg.blocks:
        state = dict(in_states[block.index])
        for statement in block.statements:
            yield from analysis.observe(statement, state, block)
            analysis.transfer(statement, state, block)
