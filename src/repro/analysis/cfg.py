"""Per-function control-flow graphs over the Python AST.

The dataflow analyzers (:mod:`repro.analysis.dataflow` and the clients in
:mod:`repro.analysis.taint` / :mod:`repro.analysis.forksafety`) need
*flow-sensitive* facts: whether a value is still tainted **at the point it
reaches a sink**, not merely whether a tainted expression appears somewhere
in the same function.  That requires a control-flow graph; this module
builds one per function (or per module body) from the AST alone.

The graph is statement-granular: a :class:`Block` holds a run of simple
statements executed in sequence, and compound statements contribute their
header node as a *marker* statement (so a transfer function can model the
bindings the header performs — a ``for`` target, a ``with ... as`` alias,
an ``except ... as`` name) followed by edges into their component bodies:

* ``if``/``elif``/``else`` — the branch bodies fork from the header block
  and re-converge on a join block;
* ``while``/``for`` — a dedicated *head* block holding the header marker,
  a back edge from the body, an exit edge to the code after the loop (via
  the ``else`` suite when present); ``break`` and ``continue`` edge to the
  loop exit and head respectively;
* ``try`` — every block of the ``try`` suite gains an edge to every
  handler entry (an exception can surface anywhere inside the suite), the
  handlers re-converge with the ``else`` path, and the ``finally`` suite
  runs on the converged path (the analyses here are may-analyses over
  normal control flow; the exceptional-exit-through-finally path adds no
  reachable bindings they care about);
* ``with`` — the header is a marker in the current block and the body is
  inlined (a context manager does not branch);
* ``return``/``raise`` — edge to the function exit block (``raise`` also
  edges into the active handlers); the statements after them land in an
  unreachable block with no predecessors.

Every block records the chain of enclosing loop-head block indices
(:attr:`Block.loop_heads`, innermost last).  The taint analysis uses this
to scope "this loop iterates in nondeterministic order" facts to the
statements that actually run inside that loop.

Nested function and class definitions are *not* descended into: a ``def``
or ``class`` statement is a simple binding statement of the enclosing
scope, and the nested body gets its own CFG when the analyzer reaches it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "ControlFlowGraph", "FunctionLike", "StatementNode", "build_cfg"]


#: Function-like AST roots accepted by :func:`build_cfg`.
FunctionLike = ast.FunctionDef | ast.AsyncFunctionDef | ast.Module

#: What a :class:`Block` holds: plain statements plus ``except`` markers.
StatementNode = ast.stmt | ast.excepthandler


@dataclass
class Block:
    """A straight-line run of statements with its outgoing edges.

    ``statements`` mixes simple statements with compound-statement *header
    markers* (the ``ast.If``/``ast.While``/``ast.For``/``ast.With``/
    ``ast.Try``/``ast.ExceptHandler`` node itself); a transfer function
    recognises the marker types and models only their header effects.
    """

    index: int
    statements: list[ast.stmt | ast.excepthandler] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    #: Enclosing loop-head block indices, outermost first.
    loop_heads: tuple[int, ...] = ()


@dataclass
class ControlFlowGraph:
    """The blocks of one function body plus entry/exit indices."""

    root: FunctionLike
    blocks: list[Block]
    entry: int
    exit: int

    def predecessors(self) -> dict[int, list[int]]:
        """Block index → predecessor block indices."""
        preds: dict[int, list[int]] = {block.index: [] for block in self.blocks}
        for block in self.blocks:
            for successor in block.successors:
                preds[successor].append(block.index)
        return preds

    def describe(self) -> str:
        """A compact rendering for debugging and the CFG tests."""
        lines = [f"cfg entry={self.entry} exit={self.exit}"]
        for block in self.blocks:
            kinds = ",".join(type(statement).__name__ for statement in block.statements) or "-"
            loops = f" loops={list(block.loop_heads)}" if block.loop_heads else ""
            lines.append(f"  B{block.index} [{kinds}] -> {sorted(block.successors)}{loops}")
        return "\n".join(lines)


class _Builder:
    """One-shot CFG construction over a function (or module) body."""

    def __init__(self, root: FunctionLike) -> None:
        self.root = root
        self.blocks: list[Block] = []
        #: ``(head index, after index)`` per enclosing loop, innermost last.
        self.loop_stack: list[tuple[int, int]] = []
        #: Handler-entry block indices per enclosing ``try``, innermost last.
        self.handler_stack: list[list[int]] = []
        self.entry = self.new_block().index
        self.exit = self.new_block().index

    # ------------------------------------------------------------------ #
    # Block and edge plumbing
    # ------------------------------------------------------------------ #
    def new_block(self) -> Block:
        block = Block(
            index=len(self.blocks),
            loop_heads=tuple(head for head, _ in self.loop_stack),
        )
        self.blocks.append(block)
        return block

    def edge(self, source: int, target: int) -> None:
        successors = self.blocks[source].successors
        if target not in successors:
            successors.append(target)

    def _edge_to_handlers(self, source: int) -> None:
        if self.handler_stack:
            for handler_entry in self.handler_stack[-1]:
                self.edge(source, handler_entry)

    # ------------------------------------------------------------------ #
    # Statement dispatch
    # ------------------------------------------------------------------ #
    def build(self) -> ControlFlowGraph:
        end = self.process_body(self.root.body, self.entry)
        self.edge(end, self.exit)
        return ControlFlowGraph(
            root=self.root, blocks=self.blocks, entry=self.entry, exit=self.exit
        )

    def process_body(self, body: list[ast.stmt], current: int) -> int:
        for statement in body:
            current = self.process_statement(statement, current)
        return current

    def process_statement(self, statement: ast.stmt, current: int) -> int:
        if isinstance(statement, ast.If):
            return self._process_if(statement, current)
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            return self._process_loop(statement, current)
        if isinstance(statement, ast.Try):
            return self._process_try(statement, current)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            self.blocks[current].statements.append(statement)
            return self.process_body(statement.body, current)
        if isinstance(statement, ast.Match):
            return self._process_match(statement, current)
        if isinstance(statement, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(statement)
            self.edge(current, self.exit)
            if isinstance(statement, ast.Raise):
                self._edge_to_handlers(current)
            return self.new_block().index  # unreachable continuation
        if isinstance(statement, ast.Break):
            self.blocks[current].statements.append(statement)
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][1])
            return self.new_block().index
        if isinstance(statement, ast.Continue):
            self.blocks[current].statements.append(statement)
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][0])
            return self.new_block().index
        # Simple statement (including nested def/class, which bind a name in
        # this scope and are analyzed separately).
        if self.handler_stack and self.blocks[current].statements:
            # Inside a try suite, each simple statement gets its own block:
            # an exception can interrupt the suite between any two
            # statements, so every intermediate state must be able to flow
            # into the handlers, not just each block's final state.
            next_block = self.new_block()
            self.edge(current, next_block.index)
            current = next_block.index
        self.blocks[current].statements.append(statement)
        return current

    # ------------------------------------------------------------------ #
    # Compound statements
    # ------------------------------------------------------------------ #
    def _process_if(self, statement: ast.If, current: int) -> int:
        self.blocks[current].statements.append(statement)  # header marker (test)
        after = self.new_block()
        then_entry = self.new_block()
        self.edge(current, then_entry.index)
        then_end = self.process_body(statement.body, then_entry.index)
        self.edge(then_end, after.index)
        if statement.orelse:
            else_entry = self.new_block()
            self.edge(current, else_entry.index)
            else_end = self.process_body(statement.orelse, else_entry.index)
            self.edge(else_end, after.index)
        else:
            self.edge(current, after.index)
        return after.index

    def _process_loop(self, statement: ast.While | ast.For | ast.AsyncFor, current: int) -> int:
        head = self.new_block()
        self.blocks[head.index].statements.append(statement)  # header marker
        self.edge(current, head.index)
        after = self.new_block()

        self.loop_stack.append((head.index, after.index))
        body_entry = self.new_block()
        self.edge(head.index, body_entry.index)
        body_end = self.process_body(statement.body, body_entry.index)
        self.edge(body_end, head.index)
        self.loop_stack.pop()

        if statement.orelse:
            else_entry = self.new_block()
            self.edge(head.index, else_entry.index)
            else_end = self.process_body(statement.orelse, else_entry.index)
            self.edge(else_end, after.index)
        else:
            self.edge(head.index, after.index)
        return after.index

    def _process_try(self, statement: ast.Try, current: int) -> int:
        self.blocks[current].statements.append(statement)  # header marker
        handler_entries = [self.new_block().index for _ in statement.handlers]
        after = self.new_block()

        body_entry = self.new_block()
        self.edge(current, body_entry.index)
        first_body_block = len(self.blocks)
        self.handler_stack.append(handler_entries)
        body_end = self.process_body(statement.body, body_entry.index)
        self.handler_stack.pop()
        # An exception can surface anywhere in the suite: every block the
        # suite contributed (plus its entry, plus the header block — the
        # very first statement can raise before binding anything) may jump
        # to every handler.
        try_region = [current, body_entry.index, *range(first_body_block, len(self.blocks))]
        for block_index in try_region:
            for handler_entry in handler_entries:
                self.edge(block_index, handler_entry)

        else_end = self.process_body(statement.orelse, body_end)
        self.edge(else_end, after.index)

        for handler, handler_entry in zip(statement.handlers, handler_entries):
            self.blocks[handler_entry].statements.append(handler)  # marker (binds name)
            handler_end = self.process_body(handler.body, handler_entry)
            self.edge(handler_end, after.index)

        if statement.finalbody:
            return self.process_body(statement.finalbody, after.index)
        return after.index

    def _process_match(self, statement: ast.Match, current: int) -> int:
        self.blocks[current].statements.append(statement)  # header marker (subject)
        after = self.new_block()
        for case in statement.cases:
            case_entry = self.new_block()
            self.edge(current, case_entry.index)
            case_end = self.process_body(case.body, case_entry.index)
            self.edge(case_end, after.index)
        self.edge(current, after.index)  # no case may match
        return after.index


def build_cfg(root: FunctionLike) -> ControlFlowGraph:
    """Build the CFG of one function definition or module body."""
    return _Builder(root).build()
