"""Runtime hooks for compile-time plan/codegen verification.

The soundness verifier of :mod:`repro.analysis.soundness` can run in two
ways: exhaustively from tests, or *online* — every plan the engine compiles
and every function the generated backend synthesizes is verified the moment
it is built.  The online mode is controlled here, through one context-local
flag that :class:`repro.session.Session` sets when constructed with
``debug_verify_plans=True`` (and the fuzz runner sets for verified
campaigns).

This module is deliberately dependency-free (stdlib only): the engine
modules import it at module level, and the verifier itself — which imports
the engine — is loaded lazily on the first actual check, so no import cycle
can form.  The counters are process-global, so a campaign can report how
many artefacts were verified across every backend it drove.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Iterator

__all__ = [
    "check_generated",
    "check_plan",
    "debug_verify_plans",
    "reset_verification_counts",
    "set_enabled",
    "verification_counts",
    "verification_enabled",
]

#: Context-local switch: when true, the engine verifies every plan it
#: compiles and every generated function the moment it is built.
_DEBUG_VERIFY: ContextVar[bool] = ContextVar("repro_debug_verify_plans", default=False)

#: Process-global counters: [plans verified, generated functions verified,
#: violations found].  Violations also raise, so the third entry is normally
#: zero; it is reported by verified fuzz campaigns.
_COUNTS: list[int] = [0, 0, 0]  # lint: disable=global-mutable-state -- deliberate cross-backend counters, reset via reset_verification_counts()


def verification_enabled() -> bool:
    """Whether online plan/codegen verification is active in this context."""
    return _DEBUG_VERIFY.get()


def set_enabled(enabled: bool = True) -> Token:
    """Set the context-local verification flag; returns the reset token."""
    return _DEBUG_VERIFY.set(enabled)


def reset(token: Token) -> None:
    """Restore the verification flag from a :func:`set_enabled` token."""
    _DEBUG_VERIFY.reset(token)


@contextmanager
def debug_verify_plans(enabled: bool = True) -> Iterator[None]:
    """Enable (or disable) online verification for a ``with`` block."""
    token = _DEBUG_VERIFY.set(enabled)
    try:
        yield
    finally:
        _DEBUG_VERIFY.reset(token)


def verification_counts() -> tuple[int, int, int]:
    """``(plans verified, generated functions verified, violations)`` so far."""
    return (_COUNTS[0], _COUNTS[1], _COUNTS[2])


def reset_verification_counts() -> None:
    """Zero the process-global verification counters (tests and campaigns)."""
    _COUNTS[0] = _COUNTS[1] = _COUNTS[2] = 0


def check_plan(plan, source_atoms=None, fixed_variables=None, dictionary=None) -> None:
    """Verify one compiled plan, raising on any violation.

    Called by the backends right after plan construction/retrieval when
    :func:`verification_enabled`.  Compiled generated-function chains are
    *not* re-verified here (they get their own :func:`check_generated` hook
    at compile time), so repeated plan retrievals stay cheap.
    """
    from repro.analysis.soundness import verify_plan
    from repro.exceptions import PlanVerificationError

    violations = verify_plan(
        plan,
        source_atoms=source_atoms,
        fixed_variables=fixed_variables,
        dictionary=dictionary,
        include_chains=False,
    )
    _COUNTS[0] += 1
    if violations:
        _COUNTS[2] += len(violations)
        raise PlanVerificationError(
            f"plan failed soundness verification with {len(violations)} violation(s):\n"
            + "\n".join("  " + violation.describe() for violation in violations),
            violations=tuple(violations),
        )


def check_generated(fn_source: str, plan, mode: str) -> None:
    """Verify one generated function's source against its plan, raising on
    any violation.  Called from the generated backend's compile points when
    :func:`verification_enabled` — including post-replan recompilations."""
    from repro.analysis.soundness import verify_generated
    from repro.exceptions import PlanVerificationError

    violations = verify_generated(fn_source, plan, mode)
    _COUNTS[1] += 1
    if violations:
        _COUNTS[2] += len(violations)
        raise PlanVerificationError(
            f"generated {mode!r} function failed verification with "
            f"{len(violations)} violation(s):\n"
            + "\n".join("  " + violation.describe() for violation in violations),
            violations=tuple(violations),
        )
