"""The repro-specific lint rules and dataflow analyzers.

:data:`RULES` holds the syntactic checks (per-node AST matches);
:data:`ANALYZER_RULES` holds the flow-sensitive dataflow analyzers built
on :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`.  Both run
under the same driver, share one parsed AST per file (via
:meth:`LintContext.nodes`), and use the same justified-suppression
syntax.  The catalogue in ``docs/static-analysis.md`` documents every
rule's rationale and suppression guidance; keep the two in sync.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import LintContext, LintRule

__all__ = ["ALL_RULES", "ANALYZER_RULES", "RULES"]

#: Node types whose evaluation yields a freshly allocated mutable object.
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Constructor names that likewise produce mutable containers.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        if isinstance(target, ast.Name):
            return target.id in _MUTABLE_CALLS
        if isinstance(target, ast.Attribute):
            return target.attr in _MUTABLE_CALLS
    return False


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


# --------------------------------------------------------------------------- #
# set-order-iteration
# --------------------------------------------------------------------------- #
def _builds_set(node: ast.expr) -> bool:
    """Does this expression syntactically construct a set (unordered)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _check_set_order_iteration(context: LintContext) -> Iterator[tuple[int, str]]:
    message = (
        "iterating a set here is hash-order-dependent; wrap it in sorted() "
        "so fingerprints and serialised artefacts stay bit-identical"
    )
    for node in context.nodes(ast.For, ast.AsyncFor):
        assert isinstance(node, (ast.For, ast.AsyncFor))
        if _builds_set(node.iter):
            yield node.iter.lineno, message
    for node in context.nodes(ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp):
        assert isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp))
        for generator in node.generators:
            if _builds_set(generator.iter):
                yield generator.iter.lineno, message


# --------------------------------------------------------------------------- #
# mutable-default
# --------------------------------------------------------------------------- #
def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else ""
        )
        if name == "dataclass":
            return True
    return False


def _check_mutable_default(context: LintContext) -> Iterator[tuple[int, str]]:
    for node in context.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_value(default):
                yield (
                    default.lineno,
                    f"mutable default argument in {node.name}(); defaults are "
                    "evaluated once and shared across calls — use None and "
                    "allocate inside the body",
                )
    for node in context.nodes(ast.ClassDef):
        assert isinstance(node, ast.ClassDef)
        if not _is_dataclass_decorated(node):
            continue
        for statement in node.body:
            value = (
                statement.value
                if isinstance(statement, (ast.Assign, ast.AnnAssign))
                else None
            )
            if value is not None and _is_mutable_value(value):
                yield (
                    statement.lineno,
                    "mutable dataclass field default is shared across instances; "
                    "use field(default_factory=...)",
                )


# --------------------------------------------------------------------------- #
# global-mutable-state
# --------------------------------------------------------------------------- #

#: Modules allowed to hold module-level mutable containers: the sanctioned
#: registries (backend factories and the decision-strategy registry).
_REGISTRY_FILES = ("engine/backends.py", "core/decision.py")


def _check_global_mutable_state(context: LintContext) -> Iterator[tuple[int, str]]:
    posix = context.path.replace("\\", "/")
    if any(posix.endswith(registry) for registry in _REGISTRY_FILES):
        return
    for statement in context.tree.body:
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        else:
            continue
        names = [target.id for target in targets if isinstance(target, ast.Name)]
        if not names or all(_is_dunder(name) for name in names):
            continue
        if _is_mutable_value(value):
            yield (
                statement.lineno,
                f"module-level mutable state {', '.join(names)}; process-global "
                "mutability belongs in the sanctioned registries — justify with "
                "a suppression if this one is deliberate",
            )


# --------------------------------------------------------------------------- #
# internal-shim-call
# --------------------------------------------------------------------------- #

#: The shim module itself may touch its own machinery.
_SHIM_EXEMPT = ("session/shims.py",)


def _shim_names() -> frozenset[str]:
    from repro.session.shims import DEPRECATED_SHIMS

    return frozenset(DEPRECATED_SHIMS)


def _check_internal_shim_call(context: LintContext) -> Iterator[tuple[int, str]]:
    posix = context.path.replace("\\", "/")
    if any(posix.endswith(exempt) for exempt in _SHIM_EXEMPT):
        return
    shims = _shim_names()

    # Aliases under which the shim namespace (top-level ``repro`` or the
    # shims module) is reachable, and shim functions imported by name.
    module_aliases: set[str] = set()
    direct_names: set[str] = set()
    for node in context.nodes(ast.Import):
        assert isinstance(node, ast.Import)
        for alias in node.names:
            if alias.name in ("repro", "repro.session.shims"):
                module_aliases.add(alias.asname or alias.name.split(".")[0])
    for node in context.nodes(ast.ImportFrom):
        assert isinstance(node, ast.ImportFrom)
        if node.module in ("repro", "repro.session.shims"):
            for alias in node.names:
                if alias.name in shims:
                    direct_names.add(alias.asname or alias.name)
        elif node.module == "repro.session":
            for alias in node.names:
                if alias.name == "shims":
                    module_aliases.add(alias.asname or "shims")

    if not module_aliases and not direct_names:
        return
    for node in context.nodes(ast.Call):
        assert isinstance(node, ast.Call)
        target = node.func
        name = None
        if isinstance(target, ast.Name) and target.id in direct_names:
            name = target.id
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in module_aliases
            and target.attr in shims
        ):
            name = target.attr
        if name is not None:
            yield (
                node.lineno,
                f"internal call into deprecation shim {name}(); library code "
                "must use sessions or the underlying submodules directly",
            )


# --------------------------------------------------------------------------- #
# bare-except
# --------------------------------------------------------------------------- #
def _check_bare_except(context: LintContext) -> Iterator[tuple[int, str]]:
    for node in context.nodes(ast.ExceptHandler):
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield (
                node.lineno,
                "bare 'except:' swallows SystemExit/KeyboardInterrupt and hides "
                "engine failures; catch a specific exception type",
            )


# --------------------------------------------------------------------------- #
# Flow-sensitive analyzer rules (CFG + dataflow, see taint.py / forksafety.py)
# --------------------------------------------------------------------------- #
def _check_determinism_taint(context: LintContext) -> Iterator[tuple[int, str]]:
    from repro.analysis.taint import analyze_module

    yield from analyze_module(context.tree)


def _check_fork_unpicklable(context: LintContext) -> Iterator[tuple[int, str]]:
    from repro.analysis.forksafety import unpicklable_findings

    yield from unpicklable_findings(context.tree)


def _check_fork_shared_state(context: LintContext) -> Iterator[tuple[int, str]]:
    from repro.analysis.forksafety import shared_state_findings

    yield from shared_state_findings(context.tree)


RULES: tuple[LintRule, ...] = (
    LintRule(
        name="set-order-iteration",
        summary="no hash-order set iteration in fingerprint/serialisation paths",
        check=_check_set_order_iteration,
        scope=("engine/fingerprints.py", "engine/persist.py", "io/json_codec.py"),
        explanation=(
            "Python sets iterate in hash order, which varies across processes "
            "(PYTHONHASHSEED) and interpreter versions.  In the fingerprint and "
            "serialisation modules that nondeterminism leaks straight into "
            "persisted digests and JSON artefacts, breaking warm starts and "
            "bit-identical replay.  Wrap the iterable in sorted() with a stable "
            "key.  This is the syntactic ancestor of the flow-sensitive "
            "determinism-taint analyzer, kept for the three scoped modules "
            "where *any* raw set iteration is suspect."
        ),
    ),
    LintRule(
        name="mutable-default",
        summary="no mutable default arguments or dataclass field defaults",
        check=_check_mutable_default,
        explanation=(
            "Default values are evaluated once at definition time; a mutable "
            "default is silently shared across every call (or every dataclass "
            "instance), so state leaks between unrelated computations.  Use "
            "None plus an in-body allocation, or field(default_factory=...)."
        ),
    ),
    LintRule(
        name="global-mutable-state",
        summary="no process-global mutable containers outside the registries",
        check=_check_global_mutable_state,
        explanation=(
            "Module-level mutable containers are process-global hidden state: "
            "they survive across sessions, are not keyed into any fingerprint, "
            "and fork into inconsistent per-process copies under "
            "multiprocessing.  The sanctioned registries (backend factories, "
            "decision strategies) are the deliberate exceptions; anything else "
            "needs a justified suppression."
        ),
    ),
    LintRule(
        name="internal-shim-call",
        summary="library code must not call its own deprecation shims",
        check=_check_internal_shim_call,
        explanation=(
            "The top-level deprecation shims exist for external callers during "
            "migration; internal use would re-entrench the deprecated surface "
            "and bypass the session layer's caching and memoisation."
        ),
    ),
    LintRule(
        name="bare-except",
        summary="no bare except clauses",
        check=_check_bare_except,
        explanation=(
            "A bare 'except:' also catches SystemExit and KeyboardInterrupt "
            "and hides engine failures as silent fallbacks.  Catch the "
            "narrowest exception type the recovery actually handles."
        ),
    ),
)

#: The flow-sensitive analyzers.  They run under ``repro lint`` alongside
#: the syntactic rules and alone under ``repro analyze``.
ANALYZER_RULES: tuple[LintRule, ...] = (
    LintRule(
        name="determinism-taint",
        summary="no nondeterministic value may flow into verdicts, certificates, "
        "serialised artefacts, or persistent digests",
        check=_check_determinism_taint,
        explanation=(
            "A forward may-taint analysis over each function's CFG.  Sources: "
            "iteration over unsorted sets/dicts (captured order), id(), "
            "identity hash(), os.environ reads, time/clock calls.  "
            "Sanitizers: sorted(), canonical-key ordering, the interning "
            "layer's dense-id paths.  Sinks: Outcome construction, "
            "certificate constructors, json.dump(s)/corpus serialisation, and "
            "persistent_digest() inputs.  Flow-sensitivity is the point: "
            "sorted(list(s)) is clean, and a raw set passed directly to "
            "persistent_digest() is clean too (the digest canonicalises "
            "containers itself) — only *captured* iteration order and "
            "value-level nondeterminism (identity, environment, time) are "
            "reported, which is what kills the false positives the syntactic "
            "set-order-iteration rule had to suppress."
        ),
    ),
    LintRule(
        name="fork-unpicklable",
        summary="every value crossing pool_imap/parallel_batch/SessionSpec must "
        "be picklable",
        check=_check_fork_unpicklable,
        explanation=(
            "A flow-sensitive binding analysis labels names bound to lambdas, "
            "function-local defs and classes, and open file handles, and "
            "reports any labelled value (or literal lambda) reaching a "
            "pool_imap()/parallel_batch()/SessionSpec() argument — those "
            "values cross the multiprocessing pickle boundary and would raise "
            "PicklingError only when the parallel path actually runs.  "
            "Rebinding the name to a module-level callable before the call "
            "site is recognised as clean."
        ),
    ),
    LintRule(
        name="fork-shared-state",
        summary="no worker-reachable writes to module-level state (lost update "
        "across fork)",
        check=_check_fork_shared_state,
        explanation=(
            "Builds the same-module call graph rooted at every function handed "
            "to a worker boundary (pool_imap targets, initializer= callbacks) "
            "and reports global rebinding or in-place mutation of module-level "
            "mutable containers anywhere reachable: under fork/spawn the write "
            "lands in the worker's copy of the module and is silently lost in "
            "the parent."
        ),
    ),
)

#: Everything ``repro lint`` runs by default.
ALL_RULES: tuple[LintRule, ...] = RULES + ANALYZER_RULES
