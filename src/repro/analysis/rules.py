"""The repro-specific lint rules.

Each rule is a syntactic check over one parsed module, registered in
:data:`RULES` (an immutable tuple — the lint framework itself carries no
process state).  The rule catalogue in ``docs/lint-rules.md`` documents
every rule's rationale and suppression guidance; keep the two in sync.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import LintContext, LintRule

__all__ = ["RULES"]

#: Node types whose evaluation yields a freshly allocated mutable object.
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Constructor names that likewise produce mutable containers.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        if isinstance(target, ast.Name):
            return target.id in _MUTABLE_CALLS
        if isinstance(target, ast.Attribute):
            return target.attr in _MUTABLE_CALLS
    return False


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


# --------------------------------------------------------------------------- #
# set-order-iteration
# --------------------------------------------------------------------------- #
def _builds_set(node: ast.expr) -> bool:
    """Does this expression syntactically construct a set (unordered)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _check_set_order_iteration(context: LintContext) -> Iterator[tuple[int, str]]:
    message = (
        "iterating a set here is hash-order-dependent; wrap it in sorted() "
        "so fingerprints and serialised artefacts stay bit-identical"
    )
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _builds_set(node.iter):
            yield node.iter.lineno, message
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _builds_set(generator.iter):
                    yield generator.iter.lineno, message


# --------------------------------------------------------------------------- #
# mutable-default
# --------------------------------------------------------------------------- #
def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else ""
        )
        if name == "dataclass":
            return True
    return False


def _check_mutable_default(context: LintContext) -> Iterator[tuple[int, str]]:
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_value(default):
                    yield (
                        default.lineno,
                        f"mutable default argument in {node.name}(); defaults are "
                        "evaluated once and shared across calls — use None and "
                        "allocate inside the body",
                    )
        elif isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
            for statement in node.body:
                value = (
                    statement.value
                    if isinstance(statement, (ast.Assign, ast.AnnAssign))
                    else None
                )
                if value is not None and _is_mutable_value(value):
                    yield (
                        statement.lineno,
                        "mutable dataclass field default is shared across instances; "
                        "use field(default_factory=...)",
                    )


# --------------------------------------------------------------------------- #
# global-mutable-state
# --------------------------------------------------------------------------- #

#: Modules allowed to hold module-level mutable containers: the sanctioned
#: registries (backend factories and the decision-strategy registry).
_REGISTRY_FILES = ("engine/backends.py", "core/decision.py")


def _check_global_mutable_state(context: LintContext) -> Iterator[tuple[int, str]]:
    posix = context.path.replace("\\", "/")
    if any(posix.endswith(registry) for registry in _REGISTRY_FILES):
        return
    for statement in context.tree.body:
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        else:
            continue
        names = [target.id for target in targets if isinstance(target, ast.Name)]
        if not names or all(_is_dunder(name) for name in names):
            continue
        if _is_mutable_value(value):
            yield (
                statement.lineno,
                f"module-level mutable state {', '.join(names)}; process-global "
                "mutability belongs in the sanctioned registries — justify with "
                "a suppression if this one is deliberate",
            )


# --------------------------------------------------------------------------- #
# internal-shim-call
# --------------------------------------------------------------------------- #

#: The shim module itself may touch its own machinery.
_SHIM_EXEMPT = ("session/shims.py",)


def _shim_names() -> frozenset[str]:
    from repro.session.shims import DEPRECATED_SHIMS

    return frozenset(DEPRECATED_SHIMS)


def _check_internal_shim_call(context: LintContext) -> Iterator[tuple[int, str]]:
    posix = context.path.replace("\\", "/")
    if any(posix.endswith(exempt) for exempt in _SHIM_EXEMPT):
        return
    shims = _shim_names()

    # Aliases under which the shim namespace (top-level ``repro`` or the
    # shims module) is reachable, and shim functions imported by name.
    module_aliases: set[str] = set()
    direct_names: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("repro", "repro.session.shims"):
                    module_aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("repro", "repro.session.shims"):
                for alias in node.names:
                    if alias.name in shims:
                        direct_names.add(alias.asname or alias.name)
            elif node.module == "repro.session" :
                for alias in node.names:
                    if alias.name == "shims":
                        module_aliases.add(alias.asname or "shims")

    if not module_aliases and not direct_names:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = None
        if isinstance(target, ast.Name) and target.id in direct_names:
            name = target.id
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in module_aliases
            and target.attr in shims
        ):
            name = target.attr
        if name is not None:
            yield (
                node.lineno,
                f"internal call into deprecation shim {name}(); library code "
                "must use sessions or the underlying submodules directly",
            )


# --------------------------------------------------------------------------- #
# bare-except
# --------------------------------------------------------------------------- #
def _check_bare_except(context: LintContext) -> Iterator[tuple[int, str]]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield (
                node.lineno,
                "bare 'except:' swallows SystemExit/KeyboardInterrupt and hides "
                "engine failures; catch a specific exception type",
            )


RULES: tuple[LintRule, ...] = (
    LintRule(
        name="set-order-iteration",
        summary="no hash-order set iteration in fingerprint/serialisation paths",
        check=_check_set_order_iteration,
        scope=("engine/fingerprints.py", "engine/persist.py", "io/json_codec.py"),
    ),
    LintRule(
        name="mutable-default",
        summary="no mutable default arguments or dataclass field defaults",
        check=_check_mutable_default,
    ),
    LintRule(
        name="global-mutable-state",
        summary="no process-global mutable containers outside the registries",
        check=_check_global_mutable_state,
    ),
    LintRule(
        name="internal-shim-call",
        summary="library code must not call its own deprecation shims",
        check=_check_internal_shim_call,
    ),
    LintRule(
        name="bare-except",
        summary="no bare except clauses",
        check=_check_bare_except,
    ),
)
