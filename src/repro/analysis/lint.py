"""A small AST lint framework with repro-specific rules.

The rules (:mod:`repro.analysis.rules`) target the hazards that matter to
*this* codebase: nondeterministic iteration inside the fingerprint and
serialisation paths (which would silently break ``persistent_digest`` warm
starts and bit-identical parallel replay), mutable defaults, process-global
mutable state outside the sanctioned registries, internal calls into the
deprecation shims, and bare ``except`` clauses.

The framework is deliberately tiny: a rule is a named check over one
parsed module, findings are ``path:line`` records, and suppressions are
explicit and *justified* —

.. code-block:: python

    _CACHE: dict[str, int] = {}  # lint: disable=global-mutable-state -- cleared per session in reset()

A suppression without the ``-- justification`` tail is itself reported (as
a ``bad-suppression`` finding), so silencing a rule always leaves a
reviewable reason in the source.  Run it as ``repro lint [--check]
[--rule NAME] [PATHS]``; with no paths it lints the installed ``repro``
package tree.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

__all__ = [
    "LintContext",
    "LintFinding",
    "LintRule",
    "LintStats",
    "default_paths",
    "default_rules",
    "iter_source_files",
    "lint_paths",
    "lint_paths_timed",
    "lint_source",
]

#: ``# lint: disable=rule-a,rule-b -- why this is fine``
_SUPPRESSION = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)(?P<tail>.*)$"
)
_JUSTIFICATION = re.compile(r"^\s*--\s*\S")


@dataclass(frozen=True)
class LintFinding:
    """One reported problem: a rule name anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintContext:
    """Everything a rule check sees: one parsed module plus its source.

    The module is parsed exactly once per file and this context is shared
    across every rule and dataflow analyzer that runs on it.  Rules that
    only care about a few node types should use :meth:`nodes` instead of
    ``ast.walk`` — the first call walks the tree once and buckets every
    node by type, so N rules cost one traversal instead of N.
    """

    path: str
    tree: ast.Module
    lines: tuple[str, ...]
    #: Lazily built node-type buckets, shared by all rules on this module.
    _node_index: dict[type, tuple[ast.AST, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def nodes(self, *types: type) -> tuple[ast.AST, ...]:
        """All nodes of the given types, in document order, from one walk."""
        if not self._node_index:
            buckets: dict[type, list[ast.AST]] = {}
            for node in ast.walk(self.tree):
                buckets.setdefault(type(node), []).append(node)
            for node_type, bucket in buckets.items():
                self._node_index[node_type] = tuple(bucket)
        if len(types) == 1:
            return self._node_index.get(types[0], ())
        matched: list[ast.AST] = []
        for node_type in types:
            matched.extend(self._node_index.get(node_type, ()))
        matched.sort(key=lambda node: (getattr(node, "lineno", 0), getattr(node, "col_offset", 0)))
        return tuple(matched)


#: A rule check yields ``(line, message)`` pairs over one module.
Check = Callable[[LintContext], Iterable[tuple[int, str]]]


@dataclass(frozen=True)
class LintRule:
    """A named, documented check; ``scope`` restricts it to matching paths."""

    name: str
    summary: str
    check: Check
    scope: tuple[str, ...] = ()
    #: Long-form rationale shown by ``repro analyze --explain NAME``.
    explanation: str = ""

    def applies(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        return not self.scope or any(pattern in posix for pattern in self.scope)


@dataclass(frozen=True)
class LintStats:
    """Where a lint run spent its time (reported by ``--check``)."""

    files: int
    rules: int
    parse_seconds: float
    check_seconds: float

    def describe(self) -> str:
        total = self.parse_seconds + self.check_seconds
        return (
            f"checked {self.files} files with {self.rules} rules in {total:.2f}s "
            f"(parse {self.parse_seconds:.2f}s, rules {self.check_seconds:.2f}s; "
            "one parse per file, AST shared across rules)"
        )


def default_rules() -> tuple[LintRule, ...]:
    """The built-in rule set (imported lazily to keep this module generic).

    Includes both the syntactic rules and the flow-sensitive analyzers;
    ``repro analyze`` runs the analyzer subset alone.
    """
    from repro.analysis.rules import ALL_RULES

    return ALL_RULES


def default_paths() -> list[Path]:
    """With no explicit paths, lint the installed ``repro`` package tree."""
    import repro

    return [Path(repro.__file__).parent]


def _parse_suppressions(
    lines: Sequence[str], path: str
) -> tuple[dict[int, frozenset[str]], list[LintFinding]]:
    """Line → suppressed rule names, plus findings for unjustified ones."""
    suppressed: dict[int, frozenset[str]] = {}
    meta: list[LintFinding] = []
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        if not _JUSTIFICATION.match(match.group("tail")):
            meta.append(
                LintFinding(
                    "bad-suppression",
                    path,
                    number,
                    "suppression lacks a justification; write "
                    "'# lint: disable=RULE -- why this is fine'",
                )
            )
            continue
        suppressed[number] = suppressed.get(number, frozenset()) | names
    return suppressed, meta


def lint_source(
    source: str, path: str, rules: Sequence[LintRule] | None = None
) -> list[LintFinding]:
    """Lint one module's source text; returns findings sorted by position.

    Unparseable source yields a single ``syntax-error`` finding rather than
    raising — the linter must be able to sweep a tree containing a broken
    file and still report on the rest.
    """
    if rules is None:
        rules = default_rules()
    findings, _, _ = _lint_source_timed(source, path, rules)
    return findings


def _lint_source_timed(
    source: str, path: str, rules: Sequence[LintRule]
) -> tuple[list[LintFinding], float, float]:
    """Lint one module, returning ``(findings, parse_seconds, check_seconds)``."""
    parse_start = time.perf_counter()
    lines = tuple(source.splitlines())
    suppressed, findings = _parse_suppressions(lines, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        findings.append(
            LintFinding("syntax-error", path, error.lineno or 1, f"does not parse: {error.msg}")
        )
        return findings, time.perf_counter() - parse_start, 0.0
    context = LintContext(path=path, tree=tree, lines=lines)
    check_start = time.perf_counter()
    for rule in rules:
        if not rule.applies(path):
            continue
        for line, message in rule.check(context):
            if rule.name in suppressed.get(line, frozenset()):
                continue
            findings.append(LintFinding(rule.name, path, line, message))
    check_end = time.perf_counter()
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return findings, check_start - parse_start, check_end - check_start


def iter_source_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path] | None = None, rules: Sequence[LintRule] | None = None
) -> list[LintFinding]:
    """Lint files/directories (default: the ``repro`` package tree)."""
    findings, _ = lint_paths_timed(paths, rules)
    return findings


def lint_paths_timed(
    paths: Sequence[Path] | None = None, rules: Sequence[LintRule] | None = None
) -> tuple[list[LintFinding], LintStats]:
    """Like :func:`lint_paths`, but also reports where the time went."""
    if rules is None:
        rules = default_rules()
    targets = iter_source_files(paths if paths else default_paths())
    findings: list[LintFinding] = []
    parse_seconds = 0.0
    check_seconds = 0.0
    for target in targets:
        file_findings, parsed, checked = _lint_source_timed(
            target.read_text(encoding="utf-8"), _display_path(target), rules
        )
        findings.extend(file_findings)
        parse_seconds += parsed
        check_seconds += checked
    stats = LintStats(
        files=len(targets),
        rules=len(rules),
        parse_seconds=parse_seconds,
        check_seconds=check_seconds,
    )
    return findings, stats
