"""A small AST lint framework with repro-specific rules.

The rules (:mod:`repro.analysis.rules`) target the hazards that matter to
*this* codebase: nondeterministic iteration inside the fingerprint and
serialisation paths (which would silently break ``persistent_digest`` warm
starts and bit-identical parallel replay), mutable defaults, process-global
mutable state outside the sanctioned registries, internal calls into the
deprecation shims, and bare ``except`` clauses.

The framework is deliberately tiny: a rule is a named check over one
parsed module, findings are ``path:line`` records, and suppressions are
explicit and *justified* —

.. code-block:: python

    _CACHE: dict[str, int] = {}  # lint: disable=global-mutable-state -- cleared per session in reset()

A suppression without the ``-- justification`` tail is itself reported (as
a ``bad-suppression`` finding), so silencing a rule always leaves a
reviewable reason in the source.  Run it as ``repro lint [--check]
[--rule NAME] [PATHS]``; with no paths it lints the installed ``repro``
package tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

__all__ = [
    "LintContext",
    "LintFinding",
    "LintRule",
    "default_paths",
    "default_rules",
    "iter_source_files",
    "lint_paths",
    "lint_source",
]

#: ``# lint: disable=rule-a,rule-b -- why this is fine``
_SUPPRESSION = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)(?P<tail>.*)$"
)
_JUSTIFICATION = re.compile(r"^\s*--\s*\S")


@dataclass(frozen=True)
class LintFinding:
    """One reported problem: a rule name anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintContext:
    """Everything a rule check sees: one parsed module plus its source."""

    path: str
    tree: ast.Module
    lines: tuple[str, ...]


#: A rule check yields ``(line, message)`` pairs over one module.
Check = Callable[[LintContext], Iterable[tuple[int, str]]]


@dataclass(frozen=True)
class LintRule:
    """A named, documented check; ``scope`` restricts it to matching paths."""

    name: str
    summary: str
    check: Check
    scope: tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        return not self.scope or any(pattern in posix for pattern in self.scope)


def default_rules() -> tuple[LintRule, ...]:
    """The built-in rule set (imported lazily to keep this module generic)."""
    from repro.analysis.rules import RULES

    return RULES


def default_paths() -> list[Path]:
    """With no explicit paths, lint the installed ``repro`` package tree."""
    import repro

    return [Path(repro.__file__).parent]


def _parse_suppressions(
    lines: Sequence[str], path: str
) -> tuple[dict[int, frozenset[str]], list[LintFinding]]:
    """Line → suppressed rule names, plus findings for unjustified ones."""
    suppressed: dict[int, frozenset[str]] = {}
    meta: list[LintFinding] = []
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        if not _JUSTIFICATION.match(match.group("tail")):
            meta.append(
                LintFinding(
                    "bad-suppression",
                    path,
                    number,
                    "suppression lacks a justification; write "
                    "'# lint: disable=RULE -- why this is fine'",
                )
            )
            continue
        suppressed[number] = suppressed.get(number, frozenset()) | names
    return suppressed, meta


def lint_source(
    source: str, path: str, rules: Sequence[LintRule] | None = None
) -> list[LintFinding]:
    """Lint one module's source text; returns findings sorted by position.

    Unparseable source yields a single ``syntax-error`` finding rather than
    raising — the linter must be able to sweep a tree containing a broken
    file and still report on the rest.
    """
    if rules is None:
        rules = default_rules()
    lines = tuple(source.splitlines())
    suppressed, findings = _parse_suppressions(lines, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        findings.append(
            LintFinding("syntax-error", path, error.lineno or 1, f"does not parse: {error.msg}")
        )
        return findings
    context = LintContext(path=path, tree=tree, lines=lines)
    for rule in rules:
        if not rule.applies(path):
            continue
        for line, message in rule.check(context):
            if rule.name in suppressed.get(line, frozenset()):
                continue
            findings.append(LintFinding(rule.name, path, line, message))
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return findings


def iter_source_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path] | None = None, rules: Sequence[LintRule] | None = None
) -> list[LintFinding]:
    """Lint files/directories (default: the ``repro`` package tree)."""
    if rules is None:
        rules = default_rules()
    targets = iter_source_files(paths if paths else default_paths())
    findings: list[LintFinding] = []
    for target in targets:
        findings.extend(
            lint_source(target.read_text(encoding="utf-8"), _display_path(target), rules)
        )
    return findings
