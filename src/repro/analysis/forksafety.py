"""Fork/pickle-safety analysis for the parallel execution boundary.

Everything that crosses into a ``multiprocessing`` worker —
the callable and payloads handed to :func:`repro.parallel.pool_imap`, the
request chunks of :func:`repro.parallel.parallel_batch`, and every field
of a :class:`repro.session.session.SessionSpec` — must pickle.  A lambda,
a function or class defined inside another function, or an open file
handle raises ``PicklingError`` (or worse, pickles something subtly
wrong) only when the parallel path actually runs, which tier-1 tests on
small workloads rarely force.  This module proves the absence of those
defects statically, in two passes per module:

**Flow-sensitive unpicklable-value tracking** — a forward dataflow over
each function's CFG labels names bound to lambdas (``lambda``), nested
``def``s (``nested-function``), function-local classes (``local-class``)
and open handles (``open-handle``, from ``open(...)`` or ``with open(...)
as f``), propagating through tuples/lists/dicts and
``functools.partial``.  Any labelled value (or a literal ``lambda``)
reaching a worker-boundary call argument is a ``fork-unpicklable``
finding.  Flow-sensitivity matters in both directions: rebinding the
name to a module-level function before the call is clean, and a label
acquired on only one branch still may-reach the sink.

**Worker-reachable shared-state writes** — a per-module call graph is
rooted at every function the module hands to a worker boundary
(``pool_imap(fn, ...)`` targets, ``initializer=`` callbacks).  Any
function reachable from those roots that rebinds a module-level name
(``global x; x = ...``) or mutates a module-level mutable container
(``CACHE[key] = ...``, ``REGISTRY.append(...)``) is a
``fork-shared-state`` finding: with the fork/spawn start methods the
write lands in the worker's copy of the module and is silently lost in
the parent (and, under ``fork``, may expose a half-written parent state
to begin with).

Both passes only *report* at the worker boundary, so modules that never
touch the parallel layer are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.cfg import Block, ControlFlowGraph, StatementNode, build_cfg
from repro.analysis.dataflow import State, run_analysis

__all__ = ["analyze_module", "shared_state_findings", "unpicklable_findings"]

LAMBDA = "lambda"
NESTED_FUNCTION = "nested-function"
LOCAL_CLASS = "local-class"
OPEN_HANDLE = "open-handle"

_EMPTY: frozenset[str] = frozenset()

#: Call-target names that ship arguments across the process boundary.
_BOUNDARY_CALLS = frozenset({"pool_imap", "parallel_batch", "SessionSpec"})

#: How each label reads in a finding message.
_LABEL_PROBLEM = {  # lint: disable=global-mutable-state -- read-only label-to-message table; never mutated
    LAMBDA: "a lambda (unpicklable)",
    NESTED_FUNCTION: "a function defined in a local scope (unpicklable)",
    LOCAL_CLASS: "a class defined in a local scope (unpicklable)",
    OPEN_HANDLE: "an open file handle (unpicklable, and the offset would not survive the fork)",
}

#: Mutating method names on module-level containers.
_CONTAINER_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)

#: Node types that allocate a mutable container (shared with the
#: ``global-mutable-state`` lint rule's notion of mutability).
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in _MUTABLE_CALLS
    return False


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class _Finding:
    __slots__ = ("line", "message")

    def __init__(self, line: int, message: str) -> None:
        self.line = line
        self.message = message


# --------------------------------------------------------------------------- #
# Pass 1: flow-sensitive unpicklable-value tracking
# --------------------------------------------------------------------------- #
class ForkSafety:
    """The dataflow analysis labelling unpicklable bindings."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        #: Nested ``def``s are only unpicklable when *this* scope is itself
        #: a function (a module-level ``def`` pickles by qualified name).
        self.function_scope = isinstance(cfg.root, (ast.FunctionDef, ast.AsyncFunctionDef))

    # -- expression labels ---------------------------------------------- #
    def labels_of(self, node: ast.expr | None, state: State) -> frozenset[str]:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Lambda):
            return frozenset({LAMBDA})
        if isinstance(node, ast.Name):
            return state.get(node.id, _EMPTY)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name == "open":
                return frozenset({OPEN_HANDLE})
            if isinstance(node.func, ast.Name) and LOCAL_CLASS in state.get(
                node.func.id, _EMPTY
            ):
                # Instances of a function-local class are as unpicklable as
                # the class itself.
                return frozenset({LOCAL_CLASS})
            if name == "partial":
                combined: frozenset[str] = _EMPTY
                for argument in node.args:
                    combined |= self.labels_of(argument, state)
                for keyword in node.keywords:
                    combined |= self.labels_of(keyword.value, state)
                return combined
            return _EMPTY
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            combined = _EMPTY
            for element in node.elts:
                combined |= self.labels_of(element, state)
            return combined
        if isinstance(node, ast.Dict):
            combined = _EMPTY
            for value in node.values:
                combined |= self.labels_of(value, state)
            return combined
        if isinstance(node, ast.Starred):
            return self.labels_of(node.value, state)
        if isinstance(node, ast.IfExp):
            return self.labels_of(node.body, state) | self.labels_of(node.orelse, state)
        if isinstance(node, ast.NamedExpr):
            labels = self.labels_of(node.value, state)
            if isinstance(node.target, ast.Name):
                state[node.target.id] = labels
            return labels
        return _EMPTY

    # -- dataflow hooks -------------------------------------------------- #
    def initial_state(self, cfg: ControlFlowGraph) -> State:
        state: State = {}
        root = cfg.root
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = root.args
            for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
                state[arg.arg] = _EMPTY
            if arguments.vararg is not None:
                state[arguments.vararg.arg] = _EMPTY
            if arguments.kwarg is not None:
                state[arguments.kwarg.arg] = _EMPTY
        return state

    def transfer(self, statement: StatementNode, state: State, block: Block) -> None:
        if isinstance(statement, ast.Assign):
            labels = self.labels_of(statement.value, state)
            for target in statement.targets:
                for name in _target_names(target):
                    state[name] = labels
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            for name in _target_names(statement.target):
                state[name] = self.labels_of(statement.value, state)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            state[statement.name] = (
                frozenset({NESTED_FUNCTION}) if self.function_scope else _EMPTY
            )
        elif isinstance(statement, ast.ClassDef):
            state[statement.name] = (
                frozenset({LOCAL_CLASS}) if self.function_scope else _EMPTY
            )
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    labels = self.labels_of(item.context_expr, state)
                    for name in _target_names(item.optional_vars):
                        state[name] = labels
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            labels = self.labels_of(statement.iter, state)
            for name in _target_names(statement.target):
                state[name] = labels
        elif isinstance(statement, ast.excepthandler):
            if statement.name:
                state[statement.name] = _EMPTY
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        elif isinstance(statement, ast.Expr):
            self.labels_of(statement.value, state)  # walrus side effects

    def observe(
        self, statement: StatementNode, state: State, block: Block
    ) -> Iterator[_Finding]:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if not isinstance(statement, (ast.stmt, ast.excepthandler)):
            return  # pragma: no cover - defensive
        for call in ast.walk(statement):
            if not isinstance(call, ast.Call):
                continue
            name = _call_name(call.func)
            if name not in _BOUNDARY_CALLS:
                continue
            arguments: list[tuple[str, ast.expr]] = [
                (f"argument {position}", argument)
                for position, argument in enumerate(call.args, start=1)
            ]
            arguments.extend(
                (f"keyword {keyword.arg or '**'}", keyword.value)
                for keyword in call.keywords
            )
            for describe, argument in arguments:
                labels = self.labels_of(argument, state)
                if not labels:
                    continue
                problems = "; ".join(
                    _LABEL_PROBLEM[label] for label in sorted(labels)
                )
                yield _Finding(
                    call.lineno,
                    f"{describe} of {name}() crosses the fork/pickle boundary "
                    f"but is {problems}; pass a module-level callable and "
                    "picklable payloads",
                )


# --------------------------------------------------------------------------- #
# Pass 2: worker-reachable module-state writes
# --------------------------------------------------------------------------- #
def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        statement.name: statement
        for statement in tree.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _module_mutable_names(tree: ast.Module) -> set[str]:
    mutable: set[str] = set()
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        else:
            continue
        if _is_mutable_value(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
    return mutable


def _worker_roots(tree: ast.Module, functions: Iterable[str]) -> set[str]:
    """Module-level function names handed to a worker boundary call."""
    known = set(functions)
    roots: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node.func) not in ("pool_imap", "parallel_batch"):
            continue
        candidates: list[ast.expr] = list(node.args[:1])
        for keyword in node.keywords:
            if keyword.arg in ("initializer", "fn", "worker"):
                candidates.append(keyword.value)
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in known:
                roots.add(candidate.id)
            elif (
                isinstance(candidate, ast.Call)
                and _call_name(candidate.func) == "partial"
                and candidate.args
                and isinstance(candidate.args[0], ast.Name)
                and candidate.args[0].id in known
            ):
                roots.add(candidate.args[0].id)
    return roots


def _reachable(
    roots: set[str], functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]
) -> set[str]:
    seen: set[str] = set()
    frontier = [root for root in sorted(roots) if root in functions]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for node in ast.walk(functions[name]):
            if isinstance(node, ast.Call):
                callee = _call_name(node.func)
                if callee in functions and callee not in seen:
                    frontier.append(callee)
            elif isinstance(node, ast.Name) and node.id in functions and node.id not in seen:
                # A bare reference (e.g. passed on as a callback) keeps the
                # function on the worker-reachable frontier.
                frontier.append(node.id)
    return seen


def _local_bindings(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (parameters and non-``global`` assignments)."""
    arguments = function.args
    local = {
        arg.arg
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
    }
    if arguments.vararg is not None:
        local.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        local.add(arguments.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                local.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            local.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            local.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    local.update(_target_names(item.optional_vars))
    return local - declared_global


def _shared_state_findings(tree: ast.Module) -> Iterator[_Finding]:
    functions = _module_functions(tree)
    roots = _worker_roots(tree, functions)
    if not roots:
        return
    mutable = _module_mutable_names(tree)
    for name in sorted(_reachable(roots, functions)):
        function = functions[name]
        local = _local_bindings(function)
        declared_global: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        shared_mutable = mutable - local
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for bound in _target_names(target):
                        if bound in declared_global:
                            yield _Finding(
                                node.lineno,
                                f"worker-reachable {name}() rebinds module-global "
                                f"{bound}; the write happens in the worker's copy "
                                "and is lost in the parent (lost update across fork)",
                            )
                    base = target
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base is not target
                        and base.id in shared_mutable
                    ):
                        yield _Finding(
                            node.lineno,
                            f"worker-reachable {name}() writes into module-level "
                            f"mutable {base.id}; the write is per-process and is "
                            "lost in the parent (lost update across fork)",
                        )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if isinstance(base, ast.Name) and (
                    base.id in declared_global
                    or (base is not target and base.id in shared_mutable)
                ):
                    yield _Finding(
                        node.lineno,
                        f"worker-reachable {name}() updates module-level state "
                        f"{base.id} in place; the update is per-process and is "
                        "lost in the parent (lost update across fork)",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CONTAINER_MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in shared_mutable
                ):
                    yield _Finding(
                        node.lineno,
                        f"worker-reachable {name}() mutates module-level "
                        f"container {func.value.id} ({func.attr}); the mutation "
                        "is per-process and is lost in the parent "
                        "(lost update across fork)",
                    )


def unpicklable_findings(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Pass 1 only: unpicklable values reaching a worker boundary."""
    scopes: list[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    for scope in scopes:
        cfg = build_cfg(scope)
        for finding in run_analysis(cfg, ForkSafety(cfg)):
            yield finding.line, finding.message


def shared_state_findings(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Pass 2 only: worker-reachable writes to module-level state."""
    for finding in _shared_state_findings(tree):
        yield finding.line, finding.message


def analyze_module(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Run both fork-safety passes over a module.

    Yields ``(line, message)`` pairs.  Pass 1 (unpicklable values reaching
    a worker boundary) runs per scope; pass 2 (worker-reachable writes to
    module state) runs once per module.
    """
    yield from unpicklable_findings(tree)
    yield from shared_state_findings(tree)
