"""Large-scale pair families: the workloads of the parallel batch layer.

The structured families of :mod:`repro.workloads.structured` are parameter
sweeps — one integer, a handful of distinct instances.  Scaling experiments
(``Session.batch(jobs=N)``, ``benchmarks/bench_e14_parallel.py``) need the
opposite: *wide* families that produce hundreds to tens of thousands of
**distinct** (containee, containing) pairs with mixed verdicts, so that no
memoisation layer can collapse the work and the sharded execution path is
actually exercised.  Three families cover the shapes a rewrite enumerator
would generate:

* :func:`wide_star_pair` / :func:`star_pair_family` — stars with varying
  ray counts, extra existential rays and multiplicity boosts on either
  side (boosting the containing side preserves containment, boosting the
  containee side tends to break it);
* :func:`long_chain_pair` / :func:`chain_pair_family` — chains of varying
  length with relaxation atoms and multiplicity boosts;
* :func:`random_acyclic_pair` / :func:`acyclic_pair_family` — random
  DAG-shaped projection-free containees (every atom is an edge ``R(x_i,
  x_j)`` with ``i < j``, so the body graph is acyclic by construction)
  whose containing query is a seeded relaxation; this family is wide
  enough to stay duplicate-free at the 10⁴ scale.

:func:`mixed_pairs` blends the three deterministically per ``(seed,
index)`` — the same stream no matter how it is later sharded — and
:func:`mixed_requests` wraps the blend into
:class:`~repro.session.ContainmentRequest` values, optionally enforcing
that no two requests share a containee or containing query (``distinct=
True``), the precondition under which serial and parallel cache statistics
merge to identical totals.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.exceptions import WorkloadError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.terms import Variable
from repro.session.requests import ContainmentRequest
from repro.workloads.structured import projection_free_chain, projection_free_star

__all__ = [
    "acyclic_pair_family",
    "chain_pair_family",
    "long_chain_pair",
    "mixed_pairs",
    "mixed_requests",
    "random_acyclic_pair",
    "star_pair_family",
    "wide_star_pair",
]

Pair = tuple[ConjunctiveQuery, ConjunctiveQuery]


# --------------------------------------------------------------------- #
# Wide stars
# --------------------------------------------------------------------- #
def wide_star_pair(
    rays: int,
    extra_rays: int = 1,
    containee_boost: int = 1,
    containing_boost: int = 1,
) -> Pair:
    """A star containee vs. a containing star with extra existential rays.

    ``containee_boost`` / ``containing_boost`` multiply the body
    multiplicities of the respective side; boosting the containing side
    only grows the identity mapping's contribution (containment-friendly),
    boosting the containee side grows the monomial (containment-hostile),
    so sweeping both produces mixed verdicts near the boundary.
    """
    if rays < 1 or extra_rays < 0:
        raise WorkloadError("stars need at least one ray and a non-negative extra count")
    if containee_boost < 1 or containing_boost < 1:
        raise WorkloadError("multiplicity boosts must be at least 1")
    containee = projection_free_star(rays, multiplicity=containee_boost, name="star1")
    center = Variable("c")
    body = {
        Atom("R", (center, Variable(f"l{i}"))): containing_boost for i in range(rays)
    }
    for i in range(extra_rays):
        body[Atom("R", (center, Variable(f"z{i}")))] = 1
    return containee, ConjunctiveQuery(containee.head, body, name="star2")


def star_pair_family(count: int, seed: int = 0, max_rays: int = 3) -> list[Pair]:
    """*count* seeded wide-star pairs with varying rays and boosts."""
    return [_star_pair(seed, index, max_rays) for index in range(count)]


def _star_pair(seed: int, index: int, max_rays: int) -> Pair:
    rng = random.Random(f"{seed}:{index}:star")
    return wide_star_pair(
        rays=rng.randint(1, max_rays),
        extra_rays=rng.randint(0, 2),
        containee_boost=rng.randint(1, 2),
        containing_boost=rng.randint(1, 2),
    )


# --------------------------------------------------------------------- #
# Long chains
# --------------------------------------------------------------------- #
def long_chain_pair(
    length: int,
    relax: int = 1,
    containee_boost: int = 1,
    containing_boost: int = 1,
) -> Pair:
    """A projection-free chain containee vs. a relaxed, boosted containing chain."""
    if length < 1 or relax < 0:
        raise WorkloadError("chains need at least one edge and a non-negative relax count")
    if containee_boost < 1 or containing_boost < 1:
        raise WorkloadError("multiplicity boosts must be at least 1")
    containee = projection_free_chain(length, multiplicity=containee_boost, name="chain1")
    body = {
        atom: containing_boost for atom in projection_free_chain(length).body_atoms()
    }
    for index in range(relax):
        body[Atom("R", (Variable("x0"), Variable(f"y{index}")))] = 1
    return containee, ConjunctiveQuery(containee.head, body, name="chain2")


def chain_pair_family(count: int, seed: int = 0, max_length: int = 5) -> list[Pair]:
    """*count* seeded long-chain pairs with varying lengths and boosts."""
    return [_chain_pair(seed, index, max_length) for index in range(count)]


def _chain_pair(seed: int, index: int, max_length: int) -> Pair:
    rng = random.Random(f"{seed}:{index}:chain")
    return long_chain_pair(
        length=rng.randint(1, max_length),
        relax=rng.randint(0, 2),
        containee_boost=rng.randint(1, 2),
        containing_boost=rng.randint(1, 2),
    )


# --------------------------------------------------------------------- #
# Random acyclic pairs
# --------------------------------------------------------------------- #
def random_acyclic_pair(
    seed: int,
    num_atoms: int = 4,
    num_variables: int = 5,
    max_multiplicity: int = 2,
) -> Pair:
    """A random DAG-shaped projection-free containee and a seeded relaxation.

    Every body atom is an edge ``R(x_i, x_j)`` with ``i < j`` over an
    ordered variable pool, so the body graph is acyclic by construction.
    The head is the tuple of all variables the body uses (projection-free).
    The containing query starts from the same body and is relaxed: some
    variable occurrences are renamed apart into fresh existential
    variables and multiplicities may be lowered — containment-rich but not
    containment-certain, like the output of a rewrite enumerator.

    The family is wide (edge sets × multiplicities × relaxations), so
    draws stay essentially duplicate-free into the 10⁴-pair range.
    """
    if num_atoms < 1 or num_variables < 2:
        raise WorkloadError("acyclic pairs need at least one atom and two variables")
    if max_multiplicity < 1:
        raise WorkloadError("max_multiplicity must be at least 1")
    rng = random.Random(f"acyclic:{seed}:{num_atoms}:{num_variables}:{max_multiplicity}")

    counts: dict[Atom, int] = {}
    for _ in range(num_atoms):
        low = rng.randrange(num_variables - 1)
        high = rng.randrange(low + 1, num_variables)
        atom = Atom("R", (Variable(f"x{low}"), Variable(f"x{high}")))
        counts[atom] = counts.get(atom, 0) + rng.randint(1, max_multiplicity)

    used = sorted({v.name for atom in counts for v in atom.variables()})
    head = tuple(Variable(name) for name in used)
    containee = ConjunctiveQuery(head, counts, name="q1")

    fresh = 0
    relaxed: dict[Atom, int] = {}
    for atom, multiplicity in counts.items():
        terms = []
        for term in atom.terms:
            if rng.random() < 0.25:
                terms.append(Variable(f"z{fresh}"))
                fresh += 1
            else:
                terms.append(term)
        image = Atom(atom.relation, tuple(terms))
        lowered = max(1, multiplicity - rng.randint(0, 1))
        relaxed[image] = relaxed.get(image, 0) + lowered

    # Keep the containing query safe: every head variable must still occur.
    for variable in head:
        if not any(variable in atom.variables() for atom in relaxed):
            original = next(
                atom for atom in counts if variable in atom.variables()
            )
            relaxed[original] = relaxed.get(original, 0) + 1

    return containee, ConjunctiveQuery(head, relaxed, name="q2")


def acyclic_pair_family(
    count: int,
    seed: int = 0,
    num_atoms: int = 4,
    num_variables: int = 5,
) -> list[Pair]:
    """*count* seeded random-acyclic pairs (one independent draw per index)."""
    rng = random.Random(f"{seed}:acyclic-family")
    return [
        random_acyclic_pair(
            rng.randrange(2**30), num_atoms=num_atoms, num_variables=num_variables
        )
        for _ in range(count)
    ]


# --------------------------------------------------------------------- #
# Mixed workloads
# --------------------------------------------------------------------- #
#: Family blend of the mixed workload: (name, weight).  The acyclic family
#: dominates because it is the one wide enough to stay duplicate-free.
_FAMILIES: tuple[tuple[str, float], ...] = (
    ("acyclic", 0.5),
    ("star", 0.25),
    ("chain", 0.25),
)


def _mixed_pair(
    seed: int,
    index: int,
    acyclic_atoms: int = 4,
    acyclic_variables: int = 5,
    max_rays: int = 3,
    max_length: int = 5,
) -> tuple[str, Pair]:
    rng = random.Random(f"{seed}:{index}:mix")
    choice = rng.random()
    cumulative = 0.0
    name = _FAMILIES[-1][0]
    for family, weight in _FAMILIES:
        cumulative += weight
        if choice < cumulative:
            name = family
            break
    if name == "acyclic":
        draw = rng.randrange(2**30)
        return f"acyclic[{draw}]", random_acyclic_pair(
            draw, num_atoms=acyclic_atoms, num_variables=acyclic_variables
        )
    if name == "star":
        return f"star[{index}]", _star_pair(seed, index, max_rays=max_rays)
    return f"chain[{index}]", _chain_pair(seed, index, max_length=max_length)


def mixed_pairs(
    count: int,
    seed: int = 0,
    acyclic_atoms: int = 4,
    acyclic_variables: int = 5,
    max_rays: int = 3,
    max_length: int = 5,
) -> Iterator[tuple[str, Pair]]:
    """A deterministic blended stream of ``(origin, pair)`` at any scale.

    Each element is a pure function of ``(seed, index)`` and the size
    parameters — the stream is identical no matter how it is later chunked
    or sharded, the same contract the fuzz campaign's case generator
    keeps.  The size parameters scale per-pair decision cost (larger
    acyclic bodies mean more containment mappings and bigger Diophantine
    systems); sizes much beyond ``6 × 6`` start to hit the exact solver's
    row cap.
    """
    for index in range(count):
        yield _mixed_pair(
            seed,
            index,
            acyclic_atoms=acyclic_atoms,
            acyclic_variables=acyclic_variables,
            max_rays=max_rays,
            max_length=max_length,
        )


def mixed_requests(
    count: int,
    seed: int = 0,
    distinct: bool = False,
    strategy: str = "most-general",
    verify_certificates: bool = True,
    acyclic_atoms: int = 4,
    acyclic_variables: int = 5,
    max_rays: int = 3,
    max_length: int = 5,
) -> list[ContainmentRequest]:
    """*count* containment requests over the mixed families.

    With ``distinct=True`` no two requests share a containee *or* a
    containing **atom set**: the engine's plan and index fingerprints hash
    deduplicated atoms, so two queries differing only in multiplicities
    would still share compiled artefacts; pairs whose atom sets were
    already drawn are skipped and replaced by later indices.  Together
    with ``verify_certificates=False`` (certificate replay evaluates
    queries on counterexample bags, and tiny bags recur across pairs)
    distinctness removes cacheable work *between* requests, which is the
    precondition under which serial and sharded runs produce identical
    merged cache statistics — what ``bench_e14_parallel`` asserts.
    """
    requests: list[ContainmentRequest] = []
    seen: set[frozenset] = set()
    index = 0
    budget = max(count * 50, 1000)
    while len(requests) < count:
        if index >= budget:
            raise WorkloadError(
                f"could not draw {count} distinct mixed pairs within {budget} attempts; "
                "the requested scale exceeds the families' variety"
            )
        _, (containee, containing) = _mixed_pair(
            seed,
            index,
            acyclic_atoms=acyclic_atoms,
            acyclic_variables=acyclic_variables,
            max_rays=max_rays,
            max_length=max_length,
        )
        index += 1
        if distinct:
            containee_key = frozenset(containee.body_atoms())
            containing_key = frozenset(containing.body_atoms())
            if containee_key in seen or containing_key in seen:
                continue
            seen.add(containee_key)
            seen.add(containing_key)
        requests.append(
            ContainmentRequest(
                containee,
                containing,
                strategy=strategy,
                verify_certificates=verify_certificates,
            )
        )
    return requests
