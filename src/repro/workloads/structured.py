"""Structured query families: chains, stars, cycles and multiplicity scalings.

These families are the parameter sweeps of the scaling benchmarks (E6, E7):
their size is controlled by a single integer, their containment behaviour is
known analytically, and they stress different parts of the decision
procedure (number of atoms / unknowns for the containee, number of
containment mappings for the containing query).
"""

from __future__ import annotations

from repro.exceptions import WorkloadError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.terms import Variable

__all__ = [
    "chain_query",
    "projection_free_chain",
    "star_query",
    "projection_free_star",
    "cycle_query",
    "amplified_query",
    "chain_containment_pair",
    "star_containment_pair",
]


def projection_free_chain(length: int, multiplicity: int = 1, name: str = "chain") -> ConjunctiveQuery:
    """``q(x0..x_len) ← R(x0,x1), R(x1,x2), ..., R(x_{len-1}, x_len)``, all variables free."""
    if length < 1:
        raise WorkloadError("chains need at least one edge")
    variables = [Variable(f"x{i}") for i in range(length + 1)]
    body = {
        Atom("R", (variables[i], variables[i + 1])): multiplicity for i in range(length)
    }
    return ConjunctiveQuery(tuple(variables), body, name=name)


def chain_query(length: int, free_endpoints_only: bool = True, name: str = "chain") -> ConjunctiveQuery:
    """A chain query; with *free_endpoints_only* the middle variables are existential."""
    if length < 1:
        raise WorkloadError("chains need at least one edge")
    variables = [Variable(f"x{i}") for i in range(length + 1)]
    body = [Atom("R", (variables[i], variables[i + 1])) for i in range(length)]
    head = (variables[0], variables[-1]) if free_endpoints_only else tuple(variables)
    return ConjunctiveQuery(head, body, name=name)


def projection_free_star(rays: int, multiplicity: int = 1, name: str = "star") -> ConjunctiveQuery:
    """``q(c, l1..l_rays) ← R(c, l1), ..., R(c, l_rays)``, all variables free."""
    if rays < 1:
        raise WorkloadError("stars need at least one ray")
    center = Variable("c")
    leaves = [Variable(f"l{i}") for i in range(rays)]
    body = {Atom("R", (center, leaf)): multiplicity for leaf in leaves}
    return ConjunctiveQuery((center, *leaves), body, name=name)


def star_query(rays: int, name: str = "star") -> ConjunctiveQuery:
    """A star query with only the centre free (the leaves are existential)."""
    if rays < 1:
        raise WorkloadError("stars need at least one ray")
    center = Variable("c")
    body = [Atom("R", (center, Variable(f"l{i}"))) for i in range(rays)]
    return ConjunctiveQuery((center,), body, name=name)


def cycle_query(length: int, projection_free: bool = True, name: str = "cycle") -> ConjunctiveQuery:
    """``q ← R(x0,x1), ..., R(x_{len-1}, x0)``; all variables free by default."""
    if length < 2:
        raise WorkloadError("cycles need at least two edges")
    variables = [Variable(f"x{i}") for i in range(length)]
    body = [Atom("R", (variables[i], variables[(i + 1) % length])) for i in range(length)]
    head = tuple(variables) if projection_free else (variables[0],)
    return ConjunctiveQuery(head, body, name=name)


def amplified_query(query: ConjunctiveQuery, factor: int, name: str | None = None) -> ConjunctiveQuery:
    """The query with every body multiplicity multiplied by *factor*.

    Raising multiplicities on the containing side preserves bag containment
    of a query into itself amplified (each answer multiplicity is raised to
    a power ≥ 1 on instances with multiplicities ≥ 1), which gives the
    benches a family of known-positive instances.
    """
    if factor < 1:
        raise WorkloadError("the amplification factor must be at least 1")
    return ConjunctiveQuery(
        query.head,
        {atom: multiplicity * factor for atom, multiplicity in query.body.items()},
        name=name or f"{query.name}x{factor}",
    )


def chain_containment_pair(length: int, relax: int = 1) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """A projection-free chain containee and a chain containing query with existential middle.

    The containing query keeps the endpoints of the chain free (matching the
    containee's first and last variables through the head is impossible
    unless arities agree, so instead both queries share the full
    projection-free head and the containing query *adds* ``relax`` parallel
    relaxed atoms through fresh existential variables).
    """
    containee = projection_free_chain(length, name="chain1")
    extra = {}
    for index in range(relax):
        extra[Atom("R", (Variable("x0"), Variable(f"y{index}")))] = 1
    containing = ConjunctiveQuery(
        containee.head,
        {**dict(containee.body), **extra},
        name="chain2",
    )
    return containee, containing


def star_containment_pair(rays: int) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """A star containee and a containing star whose leaves are existential copies.

    The containing query maps onto the containee in many ways (every
    existential leaf may go to any canonical leaf), making the number of
    containment mappings grow like ``rays^rays`` in the worst case — the
    stress test for the polynomial construction of Definition 3.3.
    """
    containee = projection_free_star(rays, name="star1")
    center = Variable("c")
    body = {Atom("R", (center, Variable(f"z{i}"))): 1 for i in range(rays)}
    for leaf_index in range(rays):
        body[Atom("R", (center, Variable(f"l{leaf_index}")))] = 1
    containing = ConjunctiveQuery(containee.head, body, name="star2")
    return containee, containing
