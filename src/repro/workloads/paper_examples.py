"""Every worked example of the paper, as ready-made fixtures.

The objects below are used by the unit tests, the examples and the E1–E5
benchmarks; their names follow the sections of the paper they come from.
"""

from __future__ import annotations

from repro.queries.builder import QueryBuilder
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Constant

__all__ = [
    "section2_query",
    "section2_instance",
    "section2_bag",
    "section2_expected_answers",
    "section2_q1",
    "section2_q2",
    "section2_q3",
    "section3_probe_example_query",
    "section3_containee",
    "section3_containing",
    "section4_mpi_solutions",
]


def section2_query() -> ConjunctiveQuery:
    """The running query of Section 2::

        q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)
    """
    return (
        QueryBuilder("q")
        .head("x1", "x2")
        .atom("R", "x1", "y1", multiplicity=2)
        .atom("R", "x1", "y2")
        .atom("P", "y2", "y3", multiplicity=2)
        .atom("P", "x2", "y4")
        .build()
    )


def section2_instance() -> SetInstance:
    """``I = {R(c1,c2), R(c1,c3), P(c2,c4), P(c5,c4)}``."""
    c1, c2, c3, c4, c5 = (Constant(f"c{i}") for i in range(1, 6))
    return SetInstance(
        [
            Atom("R", (c1, c2)),
            Atom("R", (c1, c3)),
            Atom("P", (c2, c4)),
            Atom("P", (c5, c4)),
        ]
    )


def section2_bag() -> BagInstance:
    """``I^µ = {R^2(c1,c2), R(c1,c3), P(c2,c4), P^3(c5,c4)}``."""
    c1, c2, c3, c4, c5 = (Constant(f"c{i}") for i in range(1, 6))
    return BagInstance(
        {
            Atom("R", (c1, c2)): 2,
            Atom("R", (c1, c3)): 1,
            Atom("P", (c2, c4)): 1,
            Atom("P", (c5, c4)): 3,
        }
    )


def section2_expected_answers() -> dict[tuple[Constant, Constant], int]:
    """The bag answer reported in the paper: ``{(c1,c2)^10, (c1,c5)^30}``."""
    c1, c2, c5 = Constant("c1"), Constant("c2"), Constant("c5")
    return {(c1, c2): 10, (c1, c5): 30}


def section2_q1() -> ConjunctiveQuery:
    """``q1(x1,x2) <- R^2(x1,x2), P^3(x2,x2)`` (projection-free)."""
    return (
        QueryBuilder("q1")
        .head("x1", "x2")
        .atom("R", "x1", "x2", multiplicity=2)
        .atom("P", "x2", "x2", multiplicity=3)
        .build()
    )


def section2_q2() -> ConjunctiveQuery:
    """``q2(x1,x2) <- R^3(x1,x2), P^3(x2,x2)`` (projection-free)."""
    return (
        QueryBuilder("q2")
        .head("x1", "x2")
        .atom("R", "x1", "x2", multiplicity=3)
        .atom("P", "x2", "x2", multiplicity=3)
        .build()
    )


def section2_q3() -> ConjunctiveQuery:
    """``q3(x1,x2) <- R^2(x1,y1), R(x1,y2), P^2(y2,y3), P(x2,y4)`` — same as the running query."""
    return section2_query().with_name("q3")


def section3_probe_example_query() -> ConjunctiveQuery:
    """``q(x1,x2) <- R(x1,x2), R(c1,x2), R(x1,c2)`` — the probe-tuple example (16 probe tuples)."""
    return (
        QueryBuilder("q")
        .head("x1", "x2")
        .atom("R", "x1", "x2")
        .atom("R", "c1", "x2")
        .atom("R", "x1", "c2")
        .build()
    )


def section3_containee() -> ConjunctiveQuery:
    """``q1(x1,x2) <- R^2(x1,x2), R(c1,x2), R^3(x1,c2)`` — the bag variation used for Definition 3.2."""
    return (
        QueryBuilder("q1")
        .head("x1", "x2")
        .atom("R", "x1", "x2", multiplicity=2)
        .atom("R", "c1", "x2")
        .atom("R", "x1", "c2", multiplicity=3)
        .build()
    )


def section3_containing() -> ConjunctiveQuery:
    """``q2(x1,x2) <- R^3(x1,x2), R^2(x1,y1), R^2(y2,y1)`` — the query of Definition 3.3's example."""
    return (
        QueryBuilder("q2")
        .head("x1", "x2")
        .atom("R", "x1", "x2", multiplicity=3)
        .atom("R", "x1", "y1", multiplicity=2)
        .atom("R", "y2", "y1", multiplicity=2)
        .build()
    )


def section4_mpi_solutions() -> tuple[tuple[int, int, int], tuple[int, int, int]]:
    """The two Diophantine solutions of the Section 4 example: (1, 4, 3) and (1, 9, 3).

    These solve ``u1^7 + u1^5·u2^2 + u1^3·u3^4 < u1^2·u2·u3^3``, the MPI
    derived from :func:`section3_containee` and :func:`section3_containing`
    at the most-general probe tuple.
    """
    return (1, 4, 3), (1, 9, 3)
