"""Random conjunctive-query workloads.

The generator produces reproducible (seeded) random CQs with controllable
shape: number of relations and their arities, number of atoms, number of
variables, how many variables are existential, how many constants appear and
how large body multiplicities may get.  Two derived generators produce the
pairs used by the integration tests and the scaling benchmarks:

* :func:`random_containment_pair` — a projection-free containee together
  with a containing query obtained by *relaxing* the containee (renaming
  some of its variables apart into fresh existential variables and lowering
  multiplicities), which is biased towards pairs where containment holds;
* :func:`random_unrelated_pair` — two independently drawn queries over the
  same schema, which is biased towards non-containment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import WorkloadError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.terms import Constant, Term, Variable

__all__ = [
    "RandomQueryConfig",
    "random_schema",
    "random_query",
    "random_projection_free_query",
    "random_containment_pair",
    "random_adversarial_pair",
    "random_unrelated_pair",
]


@dataclass(frozen=True)
class RandomQueryConfig:
    """Shape parameters of the random query generator."""

    num_relations: int = 3
    max_arity: int = 2
    num_atoms: int = 4
    num_variables: int = 4
    num_constants: int = 1
    max_multiplicity: int = 2
    projection_free: bool = False
    head_size: int = 2
    name: str = "q"
    relation_prefix: str = "R"

    def __post_init__(self) -> None:
        if self.num_relations < 1 or self.num_atoms < 1 or self.num_variables < 1:
            raise WorkloadError("the generator needs at least one relation, atom and variable")
        if self.max_arity < 1 or self.max_multiplicity < 1:
            raise WorkloadError("arities and multiplicities must be at least 1")
        if self.head_size < 0 or self.head_size > self.num_variables:
            raise WorkloadError("head_size must be between 0 and num_variables")


def random_schema(config: RandomQueryConfig, rng: random.Random) -> DatabaseSchema:
    """A random schema with ``config.num_relations`` relations of random arity."""
    return DatabaseSchema(
        RelationSchema(f"{config.relation_prefix}{index}", rng.randint(1, config.max_arity))
        for index in range(config.num_relations)
    )


def _random_term(
    variables: Sequence[Variable], constants: Sequence[Constant], rng: random.Random
) -> Term:
    pool: list[Term] = list(variables) + list(constants)
    return rng.choice(pool)


def random_query(
    config: RandomQueryConfig,
    seed: int | None = None,
    schema: DatabaseSchema | None = None,
) -> ConjunctiveQuery:
    """Draw one random CQ according to *config*.

    The query is guaranteed to be safe (head variables occur in the body):
    head variables are planted into the first atoms if the random draw did
    not already use them.
    """
    rng = random.Random(seed)
    schema = schema or random_schema(config, rng)
    relations = list(schema)

    variables = [Variable(f"x{i}") for i in range(config.num_variables)]
    constants = [Constant(f"a{i}") for i in range(config.num_constants)]
    head = tuple(variables[: config.head_size])

    if config.projection_free:
        usable_variables = list(head) if head else variables[:1]
    else:
        usable_variables = variables

    atoms: dict[Atom, int] = {}
    for _ in range(config.num_atoms):
        relation = rng.choice(relations)
        terms = tuple(
            _random_term(usable_variables, constants, rng) for _ in range(relation.arity)
        )
        atom = Atom(relation.name, terms)
        atoms[atom] = atoms.get(atom, 0) + rng.randint(1, config.max_multiplicity)

    # Ensure safety: every head variable must occur somewhere in the body.
    missing = [variable for variable in head if not any(variable in atom.variables() for atom in atoms)]
    for variable in missing:
        relation = rng.choice(relations)
        terms = tuple(
            variable if position == 0 else _random_term(usable_variables, constants, rng)
            for position in range(relation.arity)
        )
        atom = Atom(relation.name, terms)
        atoms[atom] = atoms.get(atom, 0) + 1

    return ConjunctiveQuery(head, atoms, name=config.name)


def random_projection_free_query(
    config: RandomQueryConfig | None = None, seed: int | None = None
) -> ConjunctiveQuery:
    """A random projection-free CQ (every variable is a head variable)."""
    base = config or RandomQueryConfig()
    adjusted = RandomQueryConfig(
        num_relations=base.num_relations,
        max_arity=base.max_arity,
        num_atoms=base.num_atoms,
        num_variables=max(1, base.head_size),
        num_constants=base.num_constants,
        max_multiplicity=base.max_multiplicity,
        projection_free=True,
        head_size=max(1, base.head_size),
        name=base.name,
        relation_prefix=base.relation_prefix,
    )
    return random_query(adjusted, seed=seed)


def random_containment_pair(
    seed: int,
    num_atoms: int = 3,
    head_size: int = 2,
    max_multiplicity: int = 2,
    extra_relaxation: bool = True,
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """A (projection-free containee, containing) pair biased towards containment.

    The containee is drawn at random; the containing query starts from the
    same body and is then *relaxed*: body multiplicities may be lowered and,
    when *extra_relaxation* is set, some occurrences of non-head variables
    or repeated positions are renamed apart into fresh existential
    variables.  Relaxations of this kind frequently (though not always)
    preserve bag containment, giving a mixed but containment-rich workload.
    """
    rng = random.Random(seed)
    config = RandomQueryConfig(
        num_relations=2,
        max_arity=2,
        num_atoms=num_atoms,
        num_variables=head_size,
        num_constants=1,
        max_multiplicity=max_multiplicity,
        projection_free=True,
        head_size=head_size,
        name="q1",
    )
    containee = random_query(config, seed=rng.randrange(2**30))

    fresh_counter = 0
    containing_atoms: dict[Atom, int] = {}
    for atom, multiplicity in containee.body.items():
        new_terms: list[Term] = []
        for term in atom.terms:
            if (
                extra_relaxation
                and isinstance(term, Variable)
                and rng.random() < 0.25
            ):
                new_terms.append(Variable(f"z{fresh_counter}"))
                fresh_counter += 1
            else:
                new_terms.append(term)
        relaxed = Atom(atom.relation, tuple(new_terms))
        lowered = max(1, multiplicity - rng.randint(0, 1))
        containing_atoms[relaxed] = containing_atoms.get(relaxed, 0) + lowered

    # Keep the containing query safe: its head is the containee's head, so
    # every head variable must still occur.  Add the original atom back if a
    # head variable got renamed away everywhere.
    for variable in containee.head:
        if not any(variable in atom.variables() for atom in containing_atoms):
            original = next(
                atom for atom in containee.body_atoms() if variable in atom.variables()
            )
            containing_atoms[original] = containing_atoms.get(original, 0) + 1

    containing = ConjunctiveQuery(containee.head, containing_atoms, name="q2")
    return containee, containing


def random_adversarial_pair(
    seed: int,
    num_atoms: int = 3,
    head_size: int = 2,
    max_multiplicity: int = 2,
    max_perturbation: int = 2,
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """A pair *near the containment boundary*: shared core, one perturbed multiplicity.

    Both queries use the **same projection-free body** (the shared core);
    then exactly one atom has its multiplicity bumped by ``1..max_perturbation``
    on one side, chosen uniformly:

    * bumping the **containee** tilts the pair towards non-containment (its
      monomial gains a factor the polynomial lacks);
    * bumping the **containing** query tilts it towards containment (the
      identity mapping's contribution only grows).

    Either way the two bodies differ in a single multiplicity, which is the
    regime where the decision procedures have the least slack — the workload
    differential fuzzing cares about most.  The generator guarantees:
    identical atom sets, identical heads, a projection-free containee, and
    exactly one atom with differing multiplicity.
    """
    rng = random.Random(seed)
    config = RandomQueryConfig(
        num_relations=2,
        max_arity=2,
        num_atoms=num_atoms,
        num_variables=head_size,
        num_constants=1,
        max_multiplicity=max_multiplicity,
        projection_free=True,
        head_size=head_size,
        name="q1",
    )
    core = random_query(config, seed=rng.randrange(2**30))
    perturbed_atom = rng.choice(core.body_atoms())
    delta = rng.randint(1, max_perturbation)
    bumped = {
        atom: multiplicity + (delta if atom == perturbed_atom else 0)
        for atom, multiplicity in core.body.items()
    }
    if rng.random() < 0.5:
        containee = ConjunctiveQuery(core.head, bumped, name="q1")
        containing = ConjunctiveQuery(core.head, core.body, name="q2")
    else:
        containee = core
        containing = ConjunctiveQuery(core.head, bumped, name="q2")
    return containee, containing


def random_unrelated_pair(
    seed: int,
    num_atoms: int = 3,
    head_size: int = 2,
    max_multiplicity: int = 2,
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Two independently drawn queries over a shared schema (containment is rare)."""
    rng = random.Random(seed)
    schema = DatabaseSchema.from_arities({"R0": 2, "R1": 2})
    containee_config = RandomQueryConfig(
        num_relations=2,
        max_arity=2,
        num_atoms=num_atoms,
        num_variables=head_size,
        num_constants=1,
        max_multiplicity=max_multiplicity,
        projection_free=True,
        head_size=head_size,
        name="q1",
    )
    containing_config = RandomQueryConfig(
        num_relations=2,
        max_arity=2,
        num_atoms=num_atoms,
        num_variables=head_size + 2,
        num_constants=1,
        max_multiplicity=max_multiplicity,
        projection_free=False,
        head_size=head_size,
        name="q2",
    )
    containee = random_query(containee_config, seed=rng.randrange(2**30), schema=schema)
    containing = random_query(containing_config, seed=rng.randrange(2**30), schema=schema)
    containing = containing.with_head(containee.head) if set(containee.head) <= containing.variables() else containing
    return containee, containing
