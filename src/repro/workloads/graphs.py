"""Graph workloads for the 3-colourability hardness family (Theorem 5.4).

Graphs are plain edge lists; :mod:`networkx` is used for the generators of
random and structured graphs and for an independent 3-colourability check
(greedy colouring can only give an upper bound, so the exact check is a
small backtracking search — the graphs in the workloads are tiny).
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.exceptions import WorkloadError

__all__ = [
    "Edge",
    "cycle_graph",
    "complete_graph",
    "wheel_graph",
    "petersen_graph",
    "random_graph",
    "bipartite_graph",
    "is_three_colorable",
]

Edge = tuple[Hashable, Hashable]


def _edges_of(graph: nx.Graph) -> list[Edge]:
    return [(source, target) for source, target in graph.edges()]


def cycle_graph(length: int) -> list[Edge]:
    """The cycle on *length* vertices (3-colourable; 2-colourable iff even)."""
    if length < 3:
        raise WorkloadError("cycle graphs need at least three vertices")
    return _edges_of(nx.cycle_graph(length))


def complete_graph(size: int) -> list[Edge]:
    """The complete graph ``K_size`` (3-colourable iff ``size ≤ 3``)."""
    if size < 2:
        raise WorkloadError("complete graphs need at least two vertices")
    return _edges_of(nx.complete_graph(size))


def wheel_graph(size: int) -> list[Edge]:
    """The wheel on ``size`` rim vertices (3-colourable iff the rim is even)."""
    if size < 3:
        raise WorkloadError("wheel graphs need at least three rim vertices")
    return _edges_of(nx.wheel_graph(size + 1))


def petersen_graph() -> list[Edge]:
    """The Petersen graph (3-colourable)."""
    return _edges_of(nx.petersen_graph())


def bipartite_graph(left: int, right: int) -> list[Edge]:
    """The complete bipartite graph ``K_{left,right}`` (always 2-colourable)."""
    if left < 1 or right < 1:
        raise WorkloadError("both sides of a bipartite graph need at least one vertex")
    return _edges_of(nx.complete_bipartite_graph(left, right))


def random_graph(vertices: int, edge_probability: float, seed: int | None = None) -> list[Edge]:
    """An Erdős–Rényi graph ``G(vertices, edge_probability)`` without isolated self-loops."""
    if vertices < 2:
        raise WorkloadError("random graphs need at least two vertices")
    if not 0 <= edge_probability <= 1:
        raise WorkloadError("the edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(vertices, edge_probability, seed=rng.randrange(2**30))
    edges = _edges_of(graph)
    if not edges:
        # Guarantee at least one edge so the reduction is well-defined.
        edges = [(0, 1)]
    return edges


def is_three_colorable(edges: Iterable[Edge]) -> bool:
    """Exact 3-colourability check by backtracking (independent of the reduction)."""
    edge_list = list(edges)
    vertices: list[Hashable] = sorted({v for edge in edge_list for v in edge}, key=str)
    adjacency: dict[Hashable, set[Hashable]] = {vertex: set() for vertex in vertices}
    for source, target in edge_list:
        if source == target:
            return False
        adjacency[source].add(target)
        adjacency[target].add(source)

    coloring: dict[Hashable, int] = {}

    def assign(index: int) -> bool:
        if index == len(vertices):
            return True
        vertex = vertices[index]
        for color in range(3):
            if all(coloring.get(neighbor) != color for neighbor in adjacency[vertex]):
                coloring[vertex] = color
                if assign(index + 1):
                    return True
                del coloring[vertex]
        return False

    return assign(0)
