"""Database schemas: named collections of relation schemas.

A :class:`DatabaseSchema` is a finite set of :class:`RelationSchema` objects
with distinct names.  Queries and instances can be validated against a schema
(same relation names, consistent arities), which is how a production system
would catch typos in query workloads early.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import ArityMismatchError, RelationalError
from repro.relational.atoms import Atom, RelationSchema

__all__ = ["DatabaseSchema"]


class DatabaseSchema:
    """An immutable set of relation schemas, indexed by relation name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        by_name: dict[str, RelationSchema] = {}
        for relation in relations:
            if not isinstance(relation, RelationSchema):
                raise RelationalError(f"{relation!r} is not a RelationSchema")
            existing = by_name.get(relation.name)
            if existing is not None and existing.arity != relation.arity:
                raise ArityMismatchError(
                    f"relation {relation.name!r} declared with conflicting arities "
                    f"{existing.arity} and {relation.arity}"
                )
            by_name[relation.name] = relation
        self._relations: dict[str, RelationSchema] = dict(sorted(by_name.items()))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "DatabaseSchema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSchema(name, arity) for name, arity in arities.items())

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "DatabaseSchema":
        """Infer the schema used by a collection of atoms.

        Raises :class:`ArityMismatchError` if the same relation name is used
        with two different arities.
        """
        return cls(atom.schema for atom in atoms)

    def union(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """The smallest schema containing both operands (arities must agree)."""
        return DatabaseSchema(list(self) + list(other))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def arity_of(self, name: str) -> int:
        """Arity of the relation *name*; raises ``KeyError`` if unknown."""
        return self._relations[name].arity

    def relation_names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(self._relations)

    def validate_atom(self, atom: Atom) -> None:
        """Check that *atom* uses a declared relation with the right arity."""
        if atom.relation not in self._relations:
            raise RelationalError(f"relation {atom.relation!r} is not part of the schema")
        expected = self._relations[atom.relation].arity
        if atom.arity != expected:
            raise ArityMismatchError(
                f"atom {atom} has arity {atom.arity}, schema declares {expected}"
            )

    def validate_atoms(self, atoms: Iterable[Atom]) -> None:
        """Validate every atom of an iterable against the schema."""
        for atom in atoms:
            self.validate_atom(atom)

    def is_compatible_with(self, atoms: Iterable[Atom]) -> bool:
        """``True`` when every atom validates, ``False`` otherwise."""
        try:
            self.validate_atoms(atoms)
        except RelationalError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, name: object) -> bool:
        if isinstance(name, RelationSchema):
            return self._relations.get(name.name) == name
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(self._relations.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(relation) for relation in self)
        return f"DatabaseSchema({{{inner}}})"
