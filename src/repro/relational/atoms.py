"""Atoms, facts and relation schemas.

An *atom* is an expression ``R(t1, ..., tn)`` where ``R`` is a relation name
of arity ``n`` and the ``ti`` are terms.  A *fact* (a ground atom) is an atom
whose terms are all constants (language or canonical).  A *relation schema*
pairs a relation name with its arity, and a set of relation schemas forms a
:class:`repro.relational.schema.DatabaseSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import ArityMismatchError, InvalidTermError
from repro.relational.terms import (
    CanonicalConstant,
    Constant,
    Term,
    Variable,
    is_constant_like,
    is_term,
)

__all__ = ["RelationSchema", "Atom", "make_atom"]


@dataclass(frozen=True, order=True)
class RelationSchema:
    """A relation name together with its arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidTermError(f"relation name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.arity, int) or self.arity < 0:
            raise ArityMismatchError(f"arity must be a non-negative integer, got {self.arity!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}/{self.arity}"

    def __call__(self, *terms: Term) -> "Atom":
        """Build an atom over this schema: ``R = RelationSchema("R", 2); R(x, y)``."""
        return Atom(self.name, tuple(terms))


@dataclass(frozen=True, order=True)
class Atom:
    """An atom ``R(t1, ..., tn)``.

    Atoms are immutable and hashable; bodies of conjunctive queries and
    database instances are (multi)sets of atoms.
    """

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.relation, str) or not self.relation:
            raise InvalidTermError(
                f"relation name must be a non-empty string, got {self.relation!r}"
            )
        terms = tuple(self.terms)
        for term in terms:
            if not is_term(term):
                raise InvalidTermError(f"{term!r} is not a term")
        object.__setattr__(self, "terms", terms)
        object.__setattr__(self, "_hash", hash((self.relation, terms)))

    # Atoms key every engine fingerprint and index bucket; the hash is
    # computed once at construction (terms cache theirs too) instead of
    # per lookup, and excluded from pickles so worker processes recompute
    # it under their own hash seed.
    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:  # unpickled instance: state omits the cache
            value = hash((self.relation, self.terms))
            object.__setattr__(self, "_hash", value)
            return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Atom:
            return self.relation == other.relation and self.terms == other.terms  # type: ignore[union-attr]
        return NotImplemented

    def __getstate__(self) -> dict:
        return {"relation": self.relation, "terms": self.terms}

    # ------------------------------------------------------------------ #
    # Structural information
    # ------------------------------------------------------------------ #
    @property
    def arity(self) -> int:
        """Number of argument positions of the atom."""
        return len(self.terms)

    @property
    def schema(self) -> RelationSchema:
        """The relation schema this atom conforms to."""
        return RelationSchema(self.relation, self.arity)

    @property
    def is_ground(self) -> bool:
        """``True`` when every term is a constant, i.e. the atom is a fact."""
        return all(is_constant_like(term) for term in self.terms)

    def variables(self) -> frozenset[Variable]:
        """The set of variables occurring in the atom."""
        return frozenset(term for term in self.terms if isinstance(term, Variable))

    def constants(self) -> frozenset[Term]:
        """The set of constants (language or canonical) occurring in the atom."""
        return frozenset(term for term in self.terms if is_constant_like(term))

    def language_constants(self) -> frozenset[Constant]:
        """The set of language constants occurring in the atom."""
        return frozenset(term for term in self.terms if isinstance(term, Constant))

    def canonical_constants(self) -> frozenset[CanonicalConstant]:
        """The set of canonical constants occurring in the atom."""
        return frozenset(term for term in self.terms if isinstance(term, CanonicalConstant))

    # ------------------------------------------------------------------ #
    # Iteration / display
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __str__(self) -> str:
        args = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({args})"

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.terms!r})"


def make_atom(relation: str, terms: Iterable[object]) -> Atom:
    """Build an atom, coercing raw Python values into terms.

    Strings that start with ``x``, ``y``, ``z``, ``u``, ``v`` or ``w`` *and*
    are not explicitly wrapped are **not** auto-coerced into variables here —
    coercion rules of that sort belong to the parser.  This helper only wraps
    raw hashable values that are not already terms into :class:`Constant`.
    """
    coerced: list[Term] = []
    for term in terms:
        if is_term(term):
            coerced.append(term)  # type: ignore[arg-type]
        else:
            coerced.append(Constant(term))
    return Atom(relation, tuple(coerced))
