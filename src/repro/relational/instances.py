"""Set and bag database instances.

A *set instance* ``I`` is a finite set of facts (ground atoms).  A *bag
instance* ``µ`` is a bag over a set instance: a function assigning a
non-negative multiplicity to every fact of the underlying set instance.  The
paper writes bags as ``I^µ = { t^µ(t) : t ∈ I }``.

Both classes are immutable value objects.  :class:`BagInstance` supports the
sub-bag relation ``⊆``, restriction, scaling, and convenient construction
from ``{fact: multiplicity}`` mappings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import InstanceError
from repro.relational.atoms import Atom
from repro.relational.schema import DatabaseSchema
from repro.relational.terms import Term, is_constant_like

__all__ = ["SetInstance", "BagInstance"]


def _check_fact(atom: Atom) -> Atom:
    if not isinstance(atom, Atom):
        raise InstanceError(f"{atom!r} is not an atom")
    if not atom.is_ground:
        raise InstanceError(f"instances may only contain ground atoms, got {atom}")
    return atom


class SetInstance:
    """A finite set of facts, i.e. a relational database under set semantics."""

    __slots__ = ("_facts",)

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: frozenset[Atom] = frozenset(_check_fact(fact) for fact in facts)

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._facts, key=str))

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SetInstance):
            return self._facts == other._facts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._facts)

    def __repr__(self) -> str:
        inner = ", ".join(str(fact) for fact in self)
        return f"SetInstance({{{inner}}})"

    # ------------------------------------------------------------------ #
    # Relational structure
    # ------------------------------------------------------------------ #
    @property
    def facts(self) -> frozenset[Atom]:
        """The underlying frozenset of facts."""
        return self._facts

    def active_domain(self) -> frozenset[Term]:
        """``adom(I)``: every constant occurring in some fact."""
        domain: set[Term] = set()
        for fact in self._facts:
            domain.update(term for term in fact.terms if is_constant_like(term))
        return frozenset(domain)

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the facts."""
        return DatabaseSchema.from_atoms(self._facts)

    def relation(self, name: str) -> frozenset[Atom]:
        """All facts of the relation *name*."""
        return frozenset(fact for fact in self._facts if fact.relation == name)

    def union(self, other: "SetInstance") -> "SetInstance":
        """Set union of two instances."""
        return SetInstance(self._facts | other._facts)

    def restrict(self, facts: Iterable[Atom]) -> "SetInstance":
        """The sub-instance containing only the given facts (intersection)."""
        return SetInstance(self._facts & frozenset(facts))

    def issubset(self, other: "SetInstance") -> bool:
        """``True`` when every fact of ``self`` belongs to *other*."""
        return self._facts <= other._facts


class BagInstance:
    """A bag over a set instance: facts with positive integer multiplicities.

    Facts mapped to multiplicity ``0`` are dropped, so the *support* of the
    bag (:meth:`support`) is exactly the set of facts with positive
    multiplicity.  ``bag[fact]`` returns ``0`` for facts outside the support,
    matching the paper's convention that ``µ(t) = 0`` for absent tuples.
    """

    __slots__ = ("_multiplicities", "_support")

    def __init__(self, multiplicities: Mapping[Atom, int] | Iterable[tuple[Atom, int]] = ()) -> None:
        items = dict(multiplicities)
        cleaned: dict[Atom, int] = {}
        for fact, count in items.items():
            _check_fact(fact)
            if not isinstance(count, int) or isinstance(count, bool):
                raise InstanceError(f"multiplicity of {fact} must be an int, got {count!r}")
            if count < 0:
                raise InstanceError(f"multiplicity of {fact} must be non-negative, got {count}")
            if count > 0:
                cleaned[fact] = count
        self._multiplicities: dict[Atom, int] = cleaned

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, instance: SetInstance | Iterable[Atom], multiplicity: int = 1) -> "BagInstance":
        """A bag assigning the same multiplicity to every fact of *instance*."""
        return cls({fact: multiplicity for fact in instance})

    @classmethod
    def from_counts(cls, counts: Mapping[Atom, int]) -> "BagInstance":
        """Alias of the constructor, for symmetry with :meth:`uniform`."""
        return cls(counts)

    # ------------------------------------------------------------------ #
    # Mapping-like protocol
    # ------------------------------------------------------------------ #
    def __getitem__(self, fact: Atom) -> int:
        return self._multiplicities.get(fact, 0)

    def __contains__(self, fact: object) -> bool:
        return fact in self._multiplicities

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._multiplicities, key=str))

    def __len__(self) -> int:
        return len(self._multiplicities)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BagInstance):
            return self._multiplicities == other._multiplicities
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._multiplicities.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{fact}^{count}" for fact, count in self.items())
        return f"BagInstance({{{inner}}})"

    def items(self) -> Iterator[tuple[Atom, int]]:
        """Pairs ``(fact, multiplicity)`` in a deterministic order."""
        return iter(sorted(self._multiplicities.items(), key=lambda item: str(item[0])))

    # ------------------------------------------------------------------ #
    # Bag structure
    # ------------------------------------------------------------------ #
    def support(self) -> SetInstance:
        """The underlying set instance (facts with positive multiplicity).

        Built once and cached (bags are immutable): a stable ``facts``
        identity lets the engine's identity-keyed plan memo recognise
        repeated evaluations of the same bag without re-fingerprinting.
        """
        try:
            return self._support
        except AttributeError:
            support = SetInstance(self._multiplicities)
            self._support = support
            return support

    def active_domain(self) -> frozenset[Term]:
        """``adom`` of the underlying set instance."""
        return self.support().active_domain()

    def total_multiplicity(self) -> int:
        """Sum of all multiplicities (the number of tuples counted with repetition)."""
        return sum(self._multiplicities.values())

    def multiplicity(self, fact: Atom) -> int:
        """Multiplicity of *fact* (``0`` if absent)."""
        return self[fact]

    def is_subbag_of(self, other: "BagInstance") -> bool:
        """The sub-bag relation ``µ1 ⊆ µ2`` of the paper."""
        return all(count <= other[fact] for fact, count in self._multiplicities.items())

    def restrict(self, facts: Iterable[Atom]) -> "BagInstance":
        """The restriction of the bag to the given set of facts."""
        wanted = frozenset(facts)
        return BagInstance({fact: count for fact, count in self._multiplicities.items() if fact in wanted})

    def scale(self, factor: int) -> "BagInstance":
        """Multiply every multiplicity by a non-negative integer factor."""
        if factor < 0:
            raise InstanceError(f"scale factor must be non-negative, got {factor}")
        return BagInstance({fact: count * factor for fact, count in self._multiplicities.items()})

    def updated(self, fact: Atom, multiplicity: int) -> "BagInstance":
        """A copy of the bag with the multiplicity of *fact* replaced."""
        counts = dict(self._multiplicities)
        counts[_check_fact(fact)] = multiplicity
        return BagInstance(counts)

    def merge_max(self, other: "BagInstance") -> "BagInstance":
        """Pointwise maximum of two bags (the smallest common super-bag)."""
        counts = dict(self._multiplicities)
        for fact, count in other._multiplicities.items():
            counts[fact] = max(counts.get(fact, 0), count)
        return BagInstance(counts)

    def merge_sum(self, other: "BagInstance") -> "BagInstance":
        """Pointwise sum of two bags (bag union with additive multiplicities)."""
        counts = dict(self._multiplicities)
        for fact, count in other._multiplicities.items():
            counts[fact] = counts.get(fact, 0) + count
        return BagInstance(counts)
